//! The metrics registry: counters, gauges, and histograms keyed by
//! `(scope, name)`.
//!
//! Hot paths pre-resolve `(scope, name)` to a dense id once (a `BTreeMap`
//! lookup) and then record through a `Vec` index — no allocation, no hashing
//! per event. Iteration is always in `BTreeMap` key order so every exporter
//! output is deterministic.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt;

/// What a metric is about. Ordering is derived (variant order first), which
/// fixes the exporter's row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Whole-network / whole-process.
    Global,
    /// One simulated node.
    Node(u32),
    /// One predicate symbol (interned `&'static str` from the logic crate).
    Pred(&'static str),
    /// One message kind on the wire ("store", "probe", "result", …).
    Kind(&'static str),
    /// A network / software layer ("netsim", "netstack.router", …).
    Layer(&'static str),
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => f.write_str("global"),
            Scope::Node(n) => write!(f, "node:{n}"),
            Scope::Pred(p) => write!(f, "pred:{p}"),
            Scope::Kind(k) => write!(f, "kind:{k}"),
            Scope::Layer(l) => write!(f, "layer:{l}"),
        }
    }
}

/// Full metric key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub scope: Scope,
    pub name: &'static str,
}

/// Pre-resolved counter handle: increments through it are a `Vec` index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Pre-resolved gauge handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Pre-resolved histogram handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Deterministic metrics store. All read-side iteration is sorted by `Key`.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<Key, usize>,
    counters: Vec<u64>,
    gauge_index: BTreeMap<Key, usize>,
    gauges: Vec<u64>,
    hist_index: BTreeMap<Key, usize>,
    hists: Vec<Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    // ---- counters ----

    /// Get-or-create the counter `(scope, name)` and return its dense id.
    pub fn counter(&mut self, scope: Scope, name: &'static str) -> CounterId {
        let key = Key { scope, name };
        if let Some(&i) = self.counter_index.get(&key) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counters.push(0);
        self.counter_index.insert(key, i);
        CounterId(i)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    #[inline]
    pub fn inc_by(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// One-shot convenience: look up and add in one call (a `BTreeMap`
    /// access; fine off the hot path).
    pub fn bump(&mut self, scope: Scope, name: &'static str, n: u64) {
        let id = self.counter(scope, name);
        self.counters[id.0] += n;
    }

    /// Counter value, or 0 if never registered.
    pub fn count(&self, scope: Scope, name: &'static str) -> u64 {
        self.counter_index
            .get(&Key { scope, name })
            .map_or(0, |&i| self.counters[i])
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.counter_index
            .iter()
            .map(move |(k, &i)| (*k, self.counters[i]))
    }

    // ---- gauges ----

    pub fn gauge(&mut self, scope: Scope, name: &'static str) -> GaugeId {
        let key = Key { scope, name };
        if let Some(&i) = self.gauge_index.get(&key) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauges.push(0);
        self.gauge_index.insert(key, i);
        GaugeId(i)
    }

    #[inline]
    pub fn gauge_set_id(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0] = v;
    }

    pub fn gauge_set(&mut self, scope: Scope, name: &'static str, v: u64) {
        let id = self.gauge(scope, name);
        self.gauges[id.0] = v;
    }

    /// Peak semantics: keep the larger of the current and new value.
    pub fn gauge_max(&mut self, scope: Scope, name: &'static str, v: u64) {
        let id = self.gauge(scope, name);
        if v > self.gauges[id.0] {
            self.gauges[id.0] = v;
        }
    }

    pub fn gauge_value(&self, scope: Scope, name: &'static str) -> u64 {
        self.gauge_index
            .get(&Key { scope, name })
            .map_or(0, |&i| self.gauges[i])
    }

    pub fn gauges(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.gauge_index
            .iter()
            .map(move |(k, &i)| (*k, self.gauges[i]))
    }

    // ---- histograms ----

    /// Get-or-create histogram `(scope, name)` with the given bounds. The
    /// first registration fixes the bounds; later calls must agree
    /// (debug-asserted).
    pub fn histogram(
        &mut self,
        scope: Scope,
        name: &'static str,
        bounds: &'static [u64],
    ) -> HistId {
        let key = Key { scope, name };
        if let Some(&i) = self.hist_index.get(&key) {
            debug_assert_eq!(self.hists[i].bounds(), bounds, "histogram bounds drift");
            return HistId(i);
        }
        let i = self.hists.len();
        self.hists.push(Histogram::new(bounds));
        self.hist_index.insert(key, i);
        HistId(i)
    }

    #[inline]
    pub fn observe_id(&mut self, id: HistId, v: u64) {
        self.hists[id.0].observe(v);
    }

    pub fn observe(&mut self, scope: Scope, name: &'static str, bounds: &'static [u64], v: u64) {
        let id = self.histogram(scope, name, bounds);
        self.hists[id.0].observe(v);
    }

    pub fn hist(&self, scope: Scope, name: &'static str) -> Option<&Histogram> {
        self.hist_index
            .get(&Key { scope, name })
            .map(|&i| &self.hists[i])
    }

    pub fn hists(&self) -> impl Iterator<Item = (Key, &Histogram)> + '_ {
        self.hist_index
            .iter()
            .map(move |(k, &i)| (*k, &self.hists[i]))
    }

    /// Merge every histogram named `name` across all scopes into one
    /// network-wide histogram. `None` if no scope recorded it.
    pub fn merged_hist(&self, name: &str) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for (key, &i) in &self.hist_index {
            if key.name != name {
                continue;
            }
            match &mut merged {
                None => merged = Some(self.hists[i].clone()),
                Some(m) => m
                    .merge(&self.hists[i])
                    .expect("same-name histograms share bounds"),
            }
        }
        merged
    }

    /// Distinct histogram names, sorted.
    pub fn hist_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.hist_index.keys().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// max (peak semantics), histograms merge exactly.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (key, v) in other.counters() {
            self.bump(key.scope, key.name, v);
        }
        for (key, v) in other.gauges() {
            self.gauge_max(key.scope, key.name, v);
        }
        for (key, h) in other.hists() {
            let id = self.histogram(key.scope, key.name, h.bounds());
            self.hists[id.0]
                .merge(h)
                .expect("same-key histograms share bounds");
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counter_index.is_empty() && self.gauge_index.is_empty() && self.hist_index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_ordering_and_display() {
        assert!(Scope::Global < Scope::Node(0));
        assert!(Scope::Node(u32::MAX) < Scope::Pred("a"));
        assert!(Scope::Pred("z") < Scope::Kind("a"));
        assert_eq!(Scope::Node(3).to_string(), "node:3");
        assert_eq!(Scope::Pred("path").to_string(), "pred:path");
        assert_eq!(Scope::Layer("netsim").to_string(), "layer:netsim");
    }

    #[test]
    fn counter_ids_are_stable_and_fast_path_works() {
        let mut r = MetricsRegistry::new();
        let a = r.counter(Scope::Node(1), "tx");
        let b = r.counter(Scope::Node(2), "tx");
        let a2 = r.counter(Scope::Node(1), "tx");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        r.inc(a);
        r.inc_by(a, 4);
        r.inc(b);
        assert_eq!(r.count(Scope::Node(1), "tx"), 5);
        assert_eq!(r.counter_value(b), 1);
        assert_eq!(r.count(Scope::Node(3), "tx"), 0);
    }

    #[test]
    fn gauge_max_keeps_peak() {
        let mut r = MetricsRegistry::new();
        r.gauge_max(Scope::Node(0), "peak", 7);
        r.gauge_max(Scope::Node(0), "peak", 3);
        r.gauge_max(Scope::Node(0), "peak", 9);
        assert_eq!(r.gauge_value(Scope::Node(0), "peak"), 9);
        r.gauge_set(Scope::Node(0), "peak", 2);
        assert_eq!(r.gauge_value(Scope::Node(0), "peak"), 2);
    }

    #[test]
    fn merged_hist_rolls_up_scopes() {
        const B: &[u64] = &[10, 100];
        let mut r = MetricsRegistry::new();
        r.observe(Scope::Node(0), "lat", B, 5);
        r.observe(Scope::Node(1), "lat", B, 50);
        r.observe(Scope::Node(1), "lat", B, 500);
        r.observe(Scope::Node(2), "other", B, 1);
        let m = r.merged_hist("lat").unwrap();
        assert_eq!(m.count(), 3);
        assert_eq!(m.bucket_counts(), &[1, 1]);
        assert_eq!(m.overflow(), 1);
        assert!(r.merged_hist("missing").is_none());
        assert_eq!(r.hist_names(), vec!["lat", "other"]);
    }

    #[test]
    fn merge_from_combines_registries() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.bump(Scope::Global, "c", 2);
        b.bump(Scope::Global, "c", 3);
        a.gauge_max(Scope::Global, "g", 10);
        b.gauge_max(Scope::Global, "g", 4);
        b.observe(Scope::Node(1), "h", &[8], 3);
        a.merge_from(&b);
        assert_eq!(a.count(Scope::Global, "c"), 5);
        assert_eq!(a.gauge_value(Scope::Global, "g"), 10);
        assert_eq!(a.hist(Scope::Node(1), "h").unwrap().count(), 1);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut r = MetricsRegistry::new();
        r.bump(Scope::Pred("z"), "n", 1);
        r.bump(Scope::Global, "n", 1);
        r.bump(Scope::Node(5), "n", 1);
        let keys: Vec<Scope> = r.counters().map(|(k, _)| k.scope).collect();
        assert_eq!(keys, vec![Scope::Global, Scope::Node(5), Scope::Pred("z")]);
    }
}
