//! Built-in predicates and functions.
//!
//! The paper allows "built-in predicates or functions … system defined or
//! defined by the user in procedural code" (Sec. II-B). Built-ins execute
//! locally at a node and never affect communication, which is why the
//! distributed evaluator can treat them uniformly (Sec. IV-C).
//!
//! *Functions* map ground argument terms to a ground term (arithmetic,
//! `dist`); unregistered function symbols are uninterpreted constructors
//! (lists, `loc(x, y)`, …). *Predicates* map ground argument terms to a
//! boolean (`close`, `is_parallel`).

use crate::ast::CmpOp;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error from evaluating a built-in (division by zero, type mismatch, …).
#[derive(Clone, Debug, PartialEq)]
pub struct BuiltinError {
    pub message: String,
}

impl BuiltinError {
    pub fn new(msg: impl Into<String>) -> BuiltinError {
        BuiltinError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for BuiltinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "builtin error: {}", self.message)
    }
}

impl std::error::Error for BuiltinError {}

pub type FuncImpl = Arc<dyn Fn(&[Term]) -> Result<Term, BuiltinError> + Send + Sync>;
pub type PredImpl = Arc<dyn Fn(&[Term]) -> Result<bool, BuiltinError> + Send + Sync>;

/// Registry of procedural built-ins. Cloning is cheap (shared `Arc`s).
#[derive(Clone, Default)]
pub struct BuiltinRegistry {
    funcs: HashMap<Symbol, FuncImpl>,
    preds: HashMap<Symbol, PredImpl>,
}

impl fmt::Debug for BuiltinRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltinRegistry")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .field("preds", &self.preds.keys().collect::<Vec<_>>())
            .finish()
    }
}

fn num2(args: &[Term], name: &str) -> Result<(f64, f64, bool), BuiltinError> {
    if args.len() != 2 {
        return Err(BuiltinError::new(format!("{name} expects 2 arguments")));
    }
    let both_int = matches!((&args[0], &args[1]), (Term::Int(_), Term::Int(_)));
    match (args[0].as_f64(), args[1].as_f64()) {
        (Some(a), Some(b)) => Ok((a, b, both_int)),
        _ => Err(BuiltinError::new(format!(
            "{name} expects numeric arguments, got ({}, {})",
            args[0], args[1]
        ))),
    }
}

fn arith(name: &'static str, f: fn(f64, f64) -> f64, g: fn(i64, i64) -> Option<i64>) -> FuncImpl {
    Arc::new(move |args: &[Term]| {
        let (a, b, both_int) = num2(args, name)?;
        if both_int {
            let (x, y) = (args[0].as_i64().unwrap(), args[1].as_i64().unwrap());
            match g(x, y) {
                Some(v) => Ok(Term::Int(v)),
                None => Err(BuiltinError::new(format!("{name}({x}, {y}) failed"))),
            }
        } else {
            Ok(Term::float(f(a, b)))
        }
    })
}

/// Extract `(x, y)` from a `loc(x, y)` term or any 2-ary numeric application.
fn as_point(t: &Term) -> Option<(f64, f64)> {
    if let Term::App(_, args) = t {
        if args.len() == 2 {
            if let (Some(x), Some(y)) = (args[0].as_f64(), args[1].as_f64()) {
                return Some((x, y));
            }
        }
    }
    None
}

impl BuiltinRegistry {
    /// Registry with the system built-ins:
    ///
    /// functions — `add sub mul div mod neg abs min2 max2 dist`
    /// predicates — (none; applications register their own, e.g. `close`).
    pub fn standard() -> BuiltinRegistry {
        let mut r = BuiltinRegistry::default();
        r.register_func("add", arith("add", |a, b| a + b, |a, b| a.checked_add(b)));
        r.register_func("sub", arith("sub", |a, b| a - b, |a, b| a.checked_sub(b)));
        r.register_func("mul", arith("mul", |a, b| a * b, |a, b| a.checked_mul(b)));
        r.register_func(
            "div",
            arith(
                "div",
                |a, b| a / b,
                |a, b| if b == 0 { None } else { a.checked_div(b) },
            ),
        );
        r.register_func(
            "mod",
            arith(
                "mod",
                |a, b| a % b,
                |a, b| if b == 0 { None } else { a.checked_rem(b) },
            ),
        );
        r.register_func(
            "neg",
            Arc::new(|args: &[Term]| match args {
                [Term::Int(i)] => Ok(Term::Int(-i)),
                [Term::Float(f)] => Ok(Term::float(-f.get())),
                _ => Err(BuiltinError::new("neg expects one numeric argument")),
            }),
        );
        r.register_func(
            "abs",
            Arc::new(|args: &[Term]| match args {
                [Term::Int(i)] => Ok(Term::Int(i.abs())),
                [Term::Float(f)] => Ok(Term::float(f.get().abs())),
                _ => Err(BuiltinError::new("abs expects one numeric argument")),
            }),
        );
        r.register_func(
            "min2",
            Arc::new(|args: &[Term]| {
                let (a, b, both_int) = num2(args, "min2")?;
                if both_int {
                    Ok(Term::Int(
                        args[0].as_i64().unwrap().min(args[1].as_i64().unwrap()),
                    ))
                } else {
                    Ok(Term::float(a.min(b)))
                }
            }),
        );
        r.register_func(
            "max2",
            Arc::new(|args: &[Term]| {
                let (a, b, both_int) = num2(args, "max2")?;
                if both_int {
                    Ok(Term::Int(
                        args[0].as_i64().unwrap().max(args[1].as_i64().unwrap()),
                    ))
                } else {
                    Ok(Term::float(a.max(b)))
                }
            }),
        );
        // dist(L1, L2): Euclidean distance between loc(x, y) points, or
        // |a - b| for plain numbers.
        r.register_func(
            "dist",
            Arc::new(|args: &[Term]| {
                if args.len() != 2 {
                    return Err(BuiltinError::new("dist expects 2 arguments"));
                }
                if let (Some((x1, y1)), Some((x2, y2))) = (as_point(&args[0]), as_point(&args[1])) {
                    return Ok(Term::float(((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()));
                }
                if let (Some(a), Some(b)) = (args[0].as_f64(), args[1].as_f64()) {
                    return Ok(Term::float((a - b).abs()));
                }
                Err(BuiltinError::new(format!(
                    "dist expects points or numbers, got ({}, {})",
                    args[0], args[1]
                )))
            }),
        );
        r
    }

    pub fn register_func(&mut self, name: &str, f: FuncImpl) {
        self.funcs.insert(Symbol::intern(name), f);
    }

    pub fn register_pred(&mut self, name: &str, p: PredImpl) {
        self.preds.insert(Symbol::intern(name), p);
    }

    pub fn is_func(&self, s: Symbol) -> bool {
        self.funcs.contains_key(&s)
    }

    pub fn is_pred(&self, s: Symbol) -> bool {
        self.preds.contains_key(&s)
    }

    /// Call a registered interpreted function directly on evaluated ground
    /// arguments; `None` if `s` is not a registered function. Used by the
    /// flat evaluator's boxed fallback (see [`crate::flat`]).
    pub fn call_func(&self, s: Symbol, args: &[Term]) -> Option<Result<Term, BuiltinError>> {
        self.funcs.get(&s).map(|f| f(args))
    }

    /// Evaluate a registered predicate on ground arguments.
    pub fn call_pred(&self, s: Symbol, args: &[Term]) -> Result<bool, BuiltinError> {
        match self.preds.get(&s) {
            Some(p) => p(args),
            None => Err(BuiltinError::new(format!("unknown builtin predicate {s}"))),
        }
    }

    /// Evaluate interpreted function symbols bottom-up in a ground term.
    /// Uninterpreted applications (constructors like `$cons`, `loc`) are left
    /// intact with evaluated arguments.
    pub fn eval_term(&self, t: &Term) -> Result<Term, BuiltinError> {
        match t {
            Term::App(f, args) => {
                let evaled: Vec<Term> = args
                    .iter()
                    .map(|a| self.eval_term(a))
                    .collect::<Result<_, _>>()?;
                match self.funcs.get(f) {
                    Some(func) => func(&evaled),
                    None => Ok(Term::App(*f, evaled.into())),
                }
            }
            Term::Var(v) => Err(BuiltinError::new(format!(
                "cannot evaluate unbound variable {v}"
            ))),
            _ => Ok(t.clone()),
        }
    }

    /// Evaluate a comparison between two ground terms. Numeric comparisons
    /// widen integers to floats; everything else falls back to the total
    /// term order (`Eq`/`Ne` are structural).
    pub fn compare(&self, op: CmpOp, lhs: &Term, rhs: &Term) -> Result<bool, BuiltinError> {
        let l = self.eval_term(lhs)?;
        let r = self.eval_term(rhs)?;
        let ord = match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Greater),
            _ => l.cmp(&r),
        };
        Ok(match op {
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        })
    }
}

/// Application-level built-ins used by the paper's running examples
/// (Example 2: `close`, `is_parallel`). Reports are `r(x, y, t)` terms;
/// trajectories are lists of reports.
pub mod stdlib {
    use super::*;
    use crate::term::{cons_sym, Term};

    fn list_items(t: &Term) -> Option<Vec<Term>> {
        t.as_list().map(|v| v.into_iter().cloned().collect())
    }

    /// Register the list library:
    ///
    /// functions — `first(L)`, `last(L)`, `len(L)`, `reverse(L)`,
    /// `append(L1, L2)`, `nth(L, I)`;
    /// predicates — `member(X, L)`.
    pub fn register_lists(reg: &mut BuiltinRegistry) {
        reg.register_func(
            "first",
            Arc::new(|args: &[Term]| match args {
                [Term::App(f, parts)] if *f == cons_sym() && parts.len() == 2 => {
                    Ok(parts[0].clone())
                }
                _ => Err(BuiltinError::new("first expects a non-empty list")),
            }),
        );
        reg.register_func(
            "last",
            Arc::new(|args: &[Term]| {
                let items = args
                    .first()
                    .and_then(list_items)
                    .filter(|v| !v.is_empty())
                    .ok_or_else(|| BuiltinError::new("last expects a non-empty list"))?;
                Ok(items.last().expect("nonempty").clone())
            }),
        );
        reg.register_func(
            "len",
            Arc::new(|args: &[Term]| {
                let items = args
                    .first()
                    .and_then(list_items)
                    .ok_or_else(|| BuiltinError::new("len expects a list"))?;
                Ok(Term::Int(items.len() as i64))
            }),
        );
        reg.register_func(
            "reverse",
            Arc::new(|args: &[Term]| {
                let mut items = args
                    .first()
                    .and_then(list_items)
                    .ok_or_else(|| BuiltinError::new("reverse expects a list"))?;
                items.reverse();
                Ok(Term::list(items, None))
            }),
        );
        reg.register_func(
            "append",
            Arc::new(|args: &[Term]| {
                if args.len() != 2 {
                    return Err(BuiltinError::new("append expects two lists"));
                }
                let mut a = list_items(&args[0])
                    .ok_or_else(|| BuiltinError::new("append expects two lists"))?;
                let b = list_items(&args[1])
                    .ok_or_else(|| BuiltinError::new("append expects two lists"))?;
                a.extend(b);
                Ok(Term::list(a, None))
            }),
        );
        reg.register_func(
            "nth",
            Arc::new(|args: &[Term]| {
                let (list, idx) = match args {
                    [l, Term::Int(i)] => (l, *i),
                    _ => return Err(BuiltinError::new("nth expects (list, index)")),
                };
                let items =
                    list_items(list).ok_or_else(|| BuiltinError::new("nth expects a list"))?;
                usize::try_from(idx)
                    .ok()
                    .and_then(|i| items.get(i).cloned())
                    .ok_or_else(|| BuiltinError::new("nth index out of range"))
            }),
        );
        reg.register_pred(
            "member",
            Arc::new(|args: &[Term]| match args {
                [x, l] => {
                    let items = list_items(l)
                        .ok_or_else(|| BuiltinError::new("member expects (x, list)"))?;
                    Ok(items.contains(x))
                }
                _ => Err(BuiltinError::new("member expects (x, list)")),
            }),
        );
    }

    fn report_xyz(t: &Term) -> Option<(f64, f64, f64)> {
        if let Term::App(_, args) = t {
            if args.len() == 3 {
                if let (Some(x), Some(y), Some(tt)) =
                    (args[0].as_f64(), args[1].as_f64(), args[2].as_f64())
                {
                    return Some((x, y, tt));
                }
            }
        }
        None
    }

    /// Register `close(R1, R2, Dmax, Tmax)` and `is_parallel(L1, L2, Tol)`.
    pub fn register_tracking(reg: &mut BuiltinRegistry) {
        reg.register_pred(
            "close",
            Arc::new(|args: &[Term]| {
                if args.len() != 4 {
                    return Err(BuiltinError::new("close expects (R1, R2, Dmax, Tmax)"));
                }
                let (r1, r2) = (
                    report_xyz(&args[0]).ok_or_else(|| BuiltinError::new("bad report"))?,
                    report_xyz(&args[1]).ok_or_else(|| BuiltinError::new("bad report"))?,
                );
                let dmax = args[2]
                    .as_f64()
                    .ok_or_else(|| BuiltinError::new("bad Dmax"))?;
                let tmax = args[3]
                    .as_f64()
                    .ok_or_else(|| BuiltinError::new("bad Tmax"))?;
                let d = ((r1.0 - r2.0).powi(2) + (r1.1 - r2.1).powi(2)).sqrt();
                let dt = r2.2 - r1.2;
                Ok(d <= dmax && dt > 0.0 && dt <= tmax)
            }),
        );
        reg.register_pred(
            "is_parallel",
            Arc::new(|args: &[Term]| {
                if args.len() != 3 {
                    return Err(BuiltinError::new("is_parallel expects (L1, L2, Tol)"));
                }
                let tol = args[2]
                    .as_f64()
                    .ok_or_else(|| BuiltinError::new("bad Tol"))?;
                let dir = |l: &Term| -> Option<(f64, f64)> {
                    let items = l.as_list()?;
                    if items.len() < 2 {
                        return None;
                    }
                    let a = report_xyz(items.first()?)?;
                    let b = report_xyz(items.last()?)?;
                    let (dx, dy) = (b.0 - a.0, b.1 - a.1);
                    let n = (dx * dx + dy * dy).sqrt();
                    if n == 0.0 {
                        None
                    } else {
                        Some((dx / n, dy / n))
                    }
                };
                match (dir(&args[0]), dir(&args[1])) {
                    (Some((x1, y1)), Some((x2, y2))) => {
                        let cross = (x1 * y2 - y1 * x2).abs();
                        Ok(cross <= tol)
                    }
                    _ => Ok(false),
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    #[test]
    fn arithmetic_int() {
        let r = BuiltinRegistry::standard();
        let t = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::Int(7));
        let t = parse_term("7 / 2").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::Int(3));
        let t = parse_term("mod(7, 2)").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::Int(1));
    }

    #[test]
    fn arithmetic_mixed_promotes_to_float() {
        let r = BuiltinRegistry::standard();
        let t = parse_term("1 + 2.5").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::float(3.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let r = BuiltinRegistry::standard();
        assert!(r.eval_term(&parse_term("1 / 0").unwrap()).is_err());
        assert!(r.eval_term(&parse_term("mod(1, 0)").unwrap()).is_err());
    }

    #[test]
    fn overflow_checked() {
        let r = BuiltinRegistry::standard();
        let big = Term::app("add", vec![Term::Int(i64::MAX), Term::Int(1)]);
        assert!(r.eval_term(&big).is_err());
    }

    #[test]
    fn constructors_left_uninterpreted() {
        let r = BuiltinRegistry::standard();
        let t = parse_term("loc(1 + 1, 3)").unwrap();
        assert_eq!(
            r.eval_term(&t).unwrap(),
            Term::app("loc", vec![Term::Int(2), Term::Int(3)])
        );
    }

    #[test]
    fn dist_on_points_and_numbers() {
        let r = BuiltinRegistry::standard();
        let t = parse_term("dist(loc(0, 0), loc(3, 4))").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::float(5.0));
        let t = parse_term("dist(10, 7)").unwrap();
        assert_eq!(r.eval_term(&t).unwrap(), Term::float(3.0));
    }

    #[test]
    fn comparisons() {
        let r = BuiltinRegistry::standard();
        assert!(r
            .compare(CmpOp::Le, &Term::Int(1), &Term::float(1.0))
            .unwrap());
        assert!(r
            .compare(CmpOp::Eq, &Term::Int(1), &Term::float(1.0))
            .unwrap());
        assert!(r.compare(CmpOp::Lt, &Term::Int(1), &Term::Int(2)).unwrap());
        assert!(!r.compare(CmpOp::Gt, &Term::Int(1), &Term::Int(2)).unwrap());
        // Structural comparison on non-numeric terms.
        assert!(r
            .compare(CmpOp::Ne, &Term::atom("a"), &Term::atom("b"))
            .unwrap());
    }

    #[test]
    fn comparison_evaluates_expressions() {
        let r = BuiltinRegistry::standard();
        let lhs = parse_term("2 + 2").unwrap();
        assert!(r.compare(CmpOp::Eq, &lhs, &Term::Int(4)).unwrap());
    }

    #[test]
    fn unbound_variable_is_error() {
        let r = BuiltinRegistry::standard();
        assert!(r.eval_term(&Term::var("X")).is_err());
    }

    #[test]
    fn custom_predicate_roundtrip() {
        let mut r = BuiltinRegistry::standard();
        r.register_pred(
            "even",
            Arc::new(|args: &[Term]| match args {
                [Term::Int(i)] => Ok(i % 2 == 0),
                _ => Err(BuiltinError::new("even expects an int")),
            }),
        );
        assert!(r.is_pred(Symbol::intern("even")));
        assert!(r
            .call_pred(Symbol::intern("even"), &[Term::Int(4)])
            .unwrap());
        assert!(!r
            .call_pred(Symbol::intern("even"), &[Term::Int(3)])
            .unwrap());
    }

    #[test]
    fn list_builtins() {
        let mut r = BuiltinRegistry::standard();
        stdlib::register_lists(&mut r);
        let l = parse_term("[1, 2, 3]").unwrap();
        let eval = |src: &str| r.eval_term(&parse_term(src).unwrap()).unwrap();
        assert_eq!(eval("first([1, 2, 3])"), Term::Int(1));
        assert_eq!(eval("last([1, 2, 3])"), Term::Int(3));
        assert_eq!(eval("len([1, 2, 3])"), Term::Int(3));
        assert_eq!(eval("len([])"), Term::Int(0));
        assert_eq!(eval("reverse([1, 2, 3])"), parse_term("[3, 2, 1]").unwrap());
        assert_eq!(
            eval("append([1], [2, 3])"),
            parse_term("[1, 2, 3]").unwrap()
        );
        assert_eq!(eval("nth([1, 2, 3], 1)"), Term::Int(2));
        assert!(r.eval_term(&parse_term("nth([1], 5)").unwrap()).is_err());
        assert!(r.eval_term(&parse_term("first([])").unwrap()).is_err());
        let member = Symbol::intern("member");
        assert!(r.call_pred(member, &[Term::Int(2), l.clone()]).unwrap());
        assert!(!r.call_pred(member, &[Term::Int(9), l]).unwrap());
    }

    #[test]
    fn list_builtins_in_rules() {
        use crate::parser::parse_rule;
        let mut r = BuiltinRegistry::standard();
        stdlib::register_lists(&mut r);
        // `member` used as a body predicate resolves to a builtin.
        let rule = parse_rule("q(X) :- p(X, L), member(X, L).").unwrap();
        let resolved = crate::safety::resolve_builtins(&rule, &r);
        assert!(matches!(resolved.body[1], crate::ast::Literal::Builtin(_)));
    }

    #[test]
    fn tracking_builtins() {
        let mut r = BuiltinRegistry::standard();
        stdlib::register_tracking(&mut r);
        let r1 = parse_term("r(0, 0, 0)").unwrap();
        let r2 = parse_term("r(1, 0, 1)").unwrap();
        let far = parse_term("r(100, 0, 1)").unwrap();
        let close = Symbol::intern("close");
        assert!(r
            .call_pred(close, &[r1.clone(), r2, Term::Int(5), Term::Int(2)])
            .unwrap());
        assert!(!r
            .call_pred(close, &[r1, far, Term::Int(5), Term::Int(2)])
            .unwrap());

        let l1 = parse_term("[r(0,0,0), r(1,0,1)]").unwrap();
        let l2 = parse_term("[r(0,5,0), r(1,5,1)]").unwrap();
        let l3 = parse_term("[r(0,0,0), r(0,1,1)]").unwrap();
        let is_par = Symbol::intern("is_parallel");
        assert!(r
            .call_pred(is_par, &[l1.clone(), l2, Term::float(0.01)])
            .unwrap());
        assert!(!r.call_pred(is_par, &[l1, l3, Term::float(0.01)]).unwrap());
    }
}
