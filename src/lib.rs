//! # sensorlog
//!
//! A deductive framework for programming sensor networks — a faithful Rust
//! reproduction of *"Deductive Framework for Programming Sensor Networks"*
//! (Gupta, Zhu & Xu, ICDE 2009). See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`logic`] — the rule language: first-order terms with function
//!   symbols, parser, safety, stratification, XY-stratification, magic sets;
//! * [`eval`] — the centralized bottom-up engine: semi-naive fixpoint,
//!   XY-staged evaluation, and set-of-derivations / counting / DRed
//!   incremental maintenance;
//! * [`netsim`] — the deterministic discrete-event sensor-network
//!   simulator (the TOSSIM substitute);
//! * [`netstack`] — routing, geographic hashing, gathering trees, TAG
//!   aggregation, and the procedural flood baseline;
//! * [`core`] — the distributed asynchronous deductive engine: the
//!   (Generalized) Perpendicular Approach with storage/join phases, derived
//!   stream hashing, and distributed set-of-derivations maintenance;
//! * [`telemetry`] — workspace-wide observability: deterministic metrics
//!   registry, span-based phase profiler, and JSONL/Prometheus/table
//!   exporters;
//! * [`provenance`] — the derivation provenance plane: the cross-node
//!   causal DAG, `why` / `why-not` / critical-path queries, and the
//!   proof-checking invariant behind `sensorlog explain`.
//!
//! ## Hello, sensor network
//!
//! ```
//! use sensorlog::prelude::*;
//!
//! // Example 1 of the paper: uncovered-enemy-vehicle alerts.
//! let program = r#"
//!     .output uncov.
//!     cov(L, T) :- veh("enemy", L, T), veh("friendly", F, T),
//!                  dist(L, F) <= 5.
//!     uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
//! "#;
//!
//! // Centralized: parse, analyze, evaluate.
//! let engine = Engine::from_source(program, BuiltinRegistry::standard()).unwrap();
//! let mut edb = Database::new();
//! edb.load_facts(r#"
//!     veh("enemy", 10, 1).
//!     veh("friendly", 12, 1).
//!     veh("enemy", 90, 1).
//! "#).unwrap();
//! let out = engine.run(&edb).unwrap();
//! assert_eq!(out.len_of(Symbol::intern("uncov")), 1); // only the one at 90
//! ```

pub use sensorlog_core as core;
pub use sensorlog_eval as eval;
pub use sensorlog_logic as logic;
pub use sensorlog_netsim as netsim;
pub use sensorlog_netstack as netstack;
pub use sensorlog_provenance as provenance;
pub use sensorlog_telemetry as telemetry;

/// Everything a typical application needs.
pub mod prelude {
    pub use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
    pub use sensorlog_core::{oracle, workload, PassMode, Provenance, RtConfig, Strategy};
    pub use sensorlog_eval::{Database, Engine, EvalConfig, IncrementalEngine, Update, UpdateKind};
    pub use sensorlog_logic::builtin::BuiltinRegistry;
    pub use sensorlog_logic::{
        analyze, parse_fact, parse_program, parse_rule, Analysis, ProgramClass, Symbol, Term, Tuple,
    };
    pub use sensorlog_netsim::{NodeId, Sched, SchedStats, SimConfig, Simulator, Topology};
    pub use sensorlog_provenance::{check_provenance, explain_atom, Explain, Explanation, ProvDag};
    pub use sensorlog_telemetry::{Scope, Snapshot, Telemetry};
}
