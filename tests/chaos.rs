//! End-to-end chaos: crash–recovery, liveness retraction, and
//! convergence-to-oracle under scripted and random fault schedules.
//!
//! The contract under test (ISSUE 7 tentpole): once every crash has healed
//! (restart or permanent death), every partition has lifted, and the
//! network has quiesced, the surviving nodes' derived relations equal the
//! centralized oracle's fixpoint over the surviving EDB. Recovery replays
//! base facts from each node's durable checkpoint + journal tail;
//! neighbors detect death by lease expiry and retract the dead node's
//! derivations through the incremental delete path; source-driven refresh
//! heals whatever the faults tore out of the middle of the network.

use proptest::prelude::*;
use sensorlog::core::invariants;
use sensorlog::core::runtime::FaultPlaneCfg;
use sensorlog::core::workload::UniformStreams;
use sensorlog::prelude::*;
use sensorlog_netsim::{FaultSchedule, RandomFaults};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Negation-free, window-free join over the `UniformStreams` schema
/// `pred(node_id, value, key)` (the fault model's supported fragment; see
/// DESIGN.md "Fault model & recovery").
const JOIN: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

/// Fault-plane deployment on a 4×4 grid. Chaos runs pin `clock_skew_max`
/// to 0: liveness versions are local times, and Theorem 3's τc bound is
/// orthogonal to what this plane tests.
fn chaos_deployment(seed: u64, sched: Sched, active_until: u64) -> Deployment {
    let cfg = DeployConfig {
        rt: RtConfig {
            faults: Some(FaultPlaneCfg {
                active_until,
                ..FaultPlaneCfg::default()
            }),
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed,
            sched,
            ..SimConfig::default()
        },
        // Pure observer: chaos runs double as the provenance plane's
        // crash-coverage fixture (see `check_provenance` call sites).
        provenance: Provenance::enabled(),
        ..DeployConfig::default()
    };
    Deployment::new(
        JOIN,
        BuiltinRegistry::standard(),
        Topology::square_grid(4),
        cfg,
    )
    .unwrap()
}

fn churn_events(topo: &Topology, seed: u64) -> Vec<WorkloadEvent> {
    UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 4_000,
        duration: 12_000,
        delete_fraction: 0.3,
        delete_lag: 5_000,
        groups: 6,
        seed,
    }
    .events(topo)
}

// The tentpole acceptance property: random fault schedules (crashes with
// restarts, link flaps) always converge to the oracle over the surviving
// EDB once healed. 8 cases ≈ 8 independent chaos scenarios.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_fault_schedules_converge(seed in 0u64..1_000, crashes in 1usize..=3, flaps in 0usize..=2) {
        let topo = Topology::square_grid(4);
        let schedule = FaultSchedule::random(seed, &topo, RandomFaults {
            crashes,
            link_flaps: flaps,
            start: 1_000,
            heal_by: 14_000,
        });
        let mut d = chaos_deployment(seed, Sched::Heap, 26_000);
        d.set_fault_schedule(schedule);
        d.schedule_all(churn_events(&topo, seed));
        d.run(120_000);
        prop_assert!(d.sim.is_quiescent(), "chaos run must quiesce");
        let conv = invariants::check_convergence(&d, &[sym("q")]);
        prop_assert!(conv.ok(), "seed {seed}: {conv}");
        let structural = invariants::check_structural(&d);
        prop_assert!(structural.ok(), "seed {seed}: {structural}");
        let conservation = invariants::check_message_conservation(&d);
        prop_assert!(conservation.ok(), "seed {seed}: {conservation}");
        // Every surviving derived tuple must carry a well-founded proof in
        // the provenance DAG even after crashes, restarts, and link flaps.
        let prov = check_provenance(&d, &[sym("q")]);
        prop_assert!(prov.ok(), "seed {seed}: provenance violations {:?}", prov.violations);
    }
}

/// Satellite 3 (end-to-end flavor): a node restarted from its durable
/// checkpoint + journal tail ends the run with byte-identical source state
/// (pred, tuple, id — ids included) to the same run without the crash.
#[test]
fn restarted_source_state_matches_never_crashed_run() {
    let events = |node: u32| {
        let mk = |at, v: i64, kind| WorkloadEvent {
            at,
            node: NodeId(node),
            pred: sym("r1"),
            tuple: Tuple::new(vec![Term::Int(node as i64), Term::Int(v), Term::Int(7)]),
            kind,
        };
        vec![
            mk(100, 1, UpdateKind::Insert),
            mk(300, 2, UpdateKind::Insert),
            mk(400, 3, UpdateKind::Insert),
            // Post-restart activity: a delete of a pre-crash fact (needs
            // the recovered my_facts) and a fresh insert (needs the
            // recovered seq high-water so ids never collide).
            mk(8_000, 2, UpdateKind::Delete),
            mk(9_000, 4, UpdateKind::Insert),
        ]
    };
    let run = |crash: bool| {
        let mut d = chaos_deployment(3, Sched::Heap, 20_000);
        if crash {
            // Crash window 1000–1500 contains no workload events at the
            // node: the never-crashed run sees the identical event stream.
            d.set_fault_schedule(
                FaultSchedule::new()
                    .crash(1_000, NodeId(5))
                    .restart(1_500, NodeId(5)),
            );
        }
        d.schedule_all(events(5));
        d.run(90_000);
        assert!(d.sim.is_quiescent());
        d
    };
    let crashed = run(true);
    let baseline = run(false);
    let a = crashed.node(NodeId(5)).my_fact_records();
    let b = baseline.node(NodeId(5)).my_fact_records();
    assert!(!b.is_empty(), "baseline node must hold facts");
    assert_eq!(a, b, "recovered state diverged from the never-crashed run");
    // And the healed network still matches the oracle.
    let conv = invariants::check_convergence(&crashed, &[sym("q")]);
    assert!(conv.ok(), "{conv}");
}

/// A permanently dead node's facts are retracted network-wide: liveness
/// retraction (lease expiry → death flood → owner rescan → holddown →
/// incremental delete) is the paper's Theorem 3 delete path driven by
/// failure detection instead of an explicit delete event.
#[test]
fn dead_nodes_facts_are_retracted_by_liveness() {
    let mut d = chaos_deployment(9, Sched::Heap, 20_000);
    // Node 6 inserts r1(6, 3); node 9 inserts r2(9, 3): q(6, 9) derives.
    // Node 6 then dies and never comes back — q(6, 9) must die with it.
    let mk = |at, node: u32, pred: &str, v: i64| WorkloadEvent {
        at,
        node: NodeId(node),
        pred: sym(pred),
        tuple: Tuple::new(vec![Term::Int(node as i64), Term::Int(v), Term::Int(3)]),
        kind: UpdateKind::Insert,
    };
    d.set_fault_schedule(FaultSchedule::new().crash(9_000, NodeId(6)));
    d.schedule_all(vec![mk(100, 6, "r1", 6), mk(200, 9, "r2", 9)]);
    d.run(90_000);
    assert!(d.sim.is_quiescent());
    let q = d.results(sym("q"));
    assert!(
        q.is_empty(),
        "derivations supported only by the dead node must be retracted, got {q:?}"
    );
    let conv = invariants::check_convergence(&d, &[sym("q")]);
    assert!(conv.ok(), "{conv}");
    // The retraction shows up in provenance too: no tuple the network no
    // longer holds may be reported, and nothing held lacks a proof.
    let prov = check_provenance(&d, &[sym("q")]);
    assert!(prov.ok(), "provenance violations {:?}", prov.violations);
}

/// A healed partition reconverges: while the network is split the two
/// halves cannot exchange storage walks or probes; refresh after link_up
/// rebuilds whatever the partition dropped.
#[test]
fn partition_heals_to_oracle() {
    let topo = Topology::square_grid(4);
    // Cut the four vertical links between rows 1 and 2: a clean bisection.
    let mut schedule = FaultSchedule::new();
    for x in 0..4u32 {
        let a = topo.node_at(x, 1).unwrap();
        let b = topo.node_at(x, 2).unwrap();
        schedule = schedule.link_down(500, a, b).link_up(9_000, a, b);
    }
    let mut d = chaos_deployment(17, Sched::Heap, 24_000);
    d.set_fault_schedule(schedule);
    d.schedule_all(churn_events(&topo, 17));
    d.run(120_000);
    assert!(d.sim.is_quiescent());
    let conv = invariants::check_convergence(&d, &[sym("q")]);
    assert!(conv.ok(), "{conv}");
    // The partition must actually have bitten something.
    let reasons = d.metrics().lost_by_reason();
    assert!(
        reasons.iter().sum::<u64>() > 0,
        "a 8.5-second bisection should drop traffic"
    );
}

/// Satellite 6: high churn (every tuple deleted shortly after insertion)
/// under crash–restart still settles and converges — the tightened
/// holddown clamp keeps retraction latency bounded instead of letting the
/// chaos-inflated lag tail stretch holddowns toward τj.
#[test]
fn high_churn_with_crashes_settles_and_converges() {
    let topo = Topology::square_grid(4);
    let mut d = chaos_deployment(23, Sched::Heap, 26_000);
    d.set_fault_schedule(
        FaultSchedule::new()
            .crash(2_500, NodeId(10))
            .restart(4_000, NodeId(10))
            .crash(6_000, NodeId(3))
            .restart(7_500, NodeId(3)),
    );
    d.schedule_all(
        UniformStreams {
            preds: vec![sym("r1"), sym("r2")],
            interval: 2_000,
            duration: 10_000,
            delete_fraction: 0.8,
            delete_lag: 1_500,
            groups: 4,
            seed: 23,
        }
        .events(&topo),
    );
    d.run(120_000);
    assert!(d.sim.is_quiescent());
    let structural = invariants::check_structural(&d);
    assert!(structural.ok(), "{structural}");
    let conv = invariants::check_convergence(&d, &[sym("q")]);
    assert!(conv.ok(), "{conv}");
}

/// The same scripted chaos run is byte-identical across all three
/// scheduler backends (acceptance criterion: one journal hash, three
/// schedulers). The schedule deliberately places faults off the shard
/// lookahead grid.
#[test]
fn chaos_journal_identical_across_backends() {
    let topo = Topology::square_grid(4);
    let schedule = || {
        FaultSchedule::new()
            .crash(1_337, NodeId(5))
            .restart(2_911, NodeId(5))
            .link_down(703, NodeId(1), NodeId(2))
            .link_up(4_441, NodeId(1), NodeId(2))
    };
    let run = |sched: Sched| {
        let mut d = chaos_deployment(42, sched, 20_000);
        let journal = d.attach_journal();
        d.set_fault_schedule(schedule());
        d.schedule_all(churn_events(&topo, 42));
        d.run(120_000);
        assert!(d.sim.is_quiescent());
        // Guard against vacuous convergence: the run must derive something.
        assert!(!d.results(sym("q")).is_empty(), "chaos run derived nothing");
        let conv = invariants::check_convergence(&d, &[sym("q")]);
        assert!(conv.ok(), "{conv}");
        journal.take()
    };
    let heap = run(Sched::Heap);
    let wheel = run(Sched::Wheel);
    let shard = run(Sched::Shard { workers: 2 });
    assert!(
        heap.records.iter().any(|r| {
            let s = format!("{r:?}");
            s.contains("NodeFail") || s.contains("LinkDown")
        }),
        "journal must record the injected faults"
    );
    if let Some(i) = heap.first_divergence(&wheel) {
        panic!(
            "heap/wheel diverge at record {i}:\n  heap:  {:?}\n  wheel: {:?}",
            heap.records.get(i),
            wheel.records.get(i)
        );
    }
    if let Some(i) = heap.first_divergence(&shard) {
        panic!(
            "heap/shard diverge at record {i}:\n  heap:  {:?}\n  shard: {:?}",
            heap.records.get(i),
            shard.records.get(i)
        );
    }
    assert_eq!(heap.content_hash(), wheel.content_hash());
    assert_eq!(heap.content_hash(), shard.content_hash());
}

// Durable-store equivalence (satellite 3, mechanism level): for any op
// sequence and any checkpoint cadence, recovery returns exactly the facts
// a never-crashed reference map holds, with the original ids, and a seq
// high-water above every id ever minted.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn durable_recovery_equals_reference(
        ops in proptest::collection::vec((0u8..8, 0u64..50), 1..60),
        checkpoint_every in 1usize..12,
    ) {
        use sensorlog::core::durable::DurableStore;
        use sensorlog::core::tupleid::TupleId;
        use std::collections::HashMap;
        let pred = sym("s");
        let mut store = DurableStore::new(checkpoint_every);
        let mut reference: HashMap<i64, TupleId> = HashMap::new();
        let mut seq = 0u32;
        for (i, &(slot, ts)) in ops.iter().enumerate() {
            let v = slot as i64;
            let tuple = Tuple::new(vec![Term::Int(v)]);
            match reference.get(&v) {
                None => {
                    let id = TupleId { node: NodeId(2), ts: ts + i as u64, seq };
                    seq += 1;
                    store.log_insert(pred, tuple, id);
                    reference.insert(v, id);
                }
                Some(&id) => {
                    store.log_delete(pred, tuple, id, ts + i as u64 + 1);
                    reference.remove(&v);
                }
            }
        }
        let r = store.recover();
        let mut expect: Vec<(i64, TupleId)> =
            reference.into_iter().collect();
        expect.sort();
        let got: Vec<(i64, TupleId)> = r.facts.iter().map(|(_, t, id)| {
            match t.get(0) { Term::Int(v) => (v, *id), _ => unreachable!() }
        }).collect();
        prop_assert_eq!(got, expect, "recovered live set diverged");
        prop_assert!(r.next_seq >= seq, "seq high-water must cover all minted ids");
    }
}
