//! # sensorlog-eval
//!
//! Centralized bottom-up evaluation of sensorlog deductive programs —
//! the reference engine of the framework (and the "central server" that the
//! Centroid baseline ships every tuple to).
//!
//! * [`relation`] — tuples with timestamps/tombstones, indexed relations,
//!   databases;
//! * [`eval_body`] — the local join machinery: body solutions, delta
//!   pinning, self-join staircase filters, Theorem-3 visibility;
//! * [`aggregate`] — head aggregates over all-solutions;
//! * [`seminaive`] — batch engine: semi-naive fixpoint, stratified negation,
//!   XY-staged evaluation (the correctness oracle);
//! * [`incremental`] — continuous maintenance under inserts/deletes with the
//!   paper's **set-of-derivations** approach (Sec. IV), plus the
//!   [`counting`] and [`rederive`] alternatives it compares against;
//! * [`lineage`] — opt-in per-firing lineage capture with compact interned
//!   atoms (the provenance plane's local layer);
//! * [`planner`] — static probe planning: the bound-position signatures
//!   each body literal probes with, driving persistent index registration;
//! * [`window`] — sliding-window expiry.

pub mod aggregate;
pub mod counting;
pub mod error;
pub mod eval_body;
pub mod incremental;
pub mod lineage;
pub mod planner;
pub mod rederive;
pub mod relation;
pub mod seminaive;
pub mod window;

pub use error::EvalError;
pub use eval_body::{BodyEval, Solution, TupleFilter, Visibility};
pub use incremental::{IncrementalEngine, Update, UpdateKind};
pub use lineage::{AtomId, LineageLog, LineageRecord, EDB_RULE};
pub use planner::{plan_probes, program_signatures};
pub use relation::{Database, IndexStatsSnapshot, Relation, TupleMeta};
pub use seminaive::{effective_windows, Engine, EvalConfig};
