//! Whole-program analysis: validation + classification.
//!
//! Ties together builtin resolution, safety, stratification and
//! XY-stratification into a single [`analyze`] entry point whose output
//! ([`Analysis`]) both the centralized and the distributed engines consume.

use crate::ast::{Literal, Program};
use crate::builtin::BuiltinRegistry;
use crate::depgraph::DepGraph;
use crate::safety::{self, SafetyError};
use crate::span::Span;
use crate::stratify::{self, Stratification, StratifyError};
use crate::symbol::Symbol;
use crate::xy::{self, XyError, XyInfo};
use std::collections::BTreeMap;
use std::fmt;

/// How a program combines recursion and negation, deciding which evaluation
/// scheme applies (Secs. III-B, IV-C).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramClass {
    /// No recursion at all; negation fine (Sec. IV-B / IV-C).
    NonRecursive,
    /// Recursive but stratified (no recursion through negation);
    /// includes negation-free recursive programs (Sec. III-B).
    Stratified,
    /// Recursion through negation, certified XY-stratified (Sec. IV-C).
    XYStratified,
}

/// Validated program + analysis results.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The program with builtin predicates resolved.
    pub program: Program,
    pub class: ProgramClass,
    /// Stratification used for evaluation. For XY programs, the strata come
    /// from the dependency graph with the certified SCCs' internal negative
    /// edges ignored (each XY component evaluates as one unit).
    pub strat: Stratification,
    /// Certified XY components (empty unless `class == XYStratified`).
    pub xy: Vec<XyInfo>,
}

impl Analysis {
    /// Stage position for `pred` if it belongs to an XY component.
    pub fn xy_stage_pos(&self, pred: Symbol) -> Option<usize> {
        self.xy
            .iter()
            .find_map(|info| info.stage_pos.get(&pred).copied())
    }
}

/// Why analysis failed.
#[derive(Clone, Debug)]
pub enum AnalyzeError {
    Safety(SafetyError),
    /// Not stratified and not XY-stratified either. Such programs may still
    /// be *locally non-recursive* at runtime \[6\]; the centralized engine
    /// offers an opt-in evaluation mode with a runtime derivation-cycle
    /// check, but the distributed compiler rejects them.
    NotXYStratifiable {
        stratify: StratifyError,
        xy: XyError,
    },
    /// A negated subgoal's predicate is a builtin predicate — negation of
    /// procedural builtins is not supported (write the complement builtin).
    NegatedBuiltin {
        rule_id: usize,
        pred: Symbol,
        span: Span,
    },
    /// The same predicate is used with two different arities.
    ArityMismatch {
        pred: Symbol,
        first: usize,
        second: usize,
        rule_id: usize,
        span: Span,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Safety(e) => write!(f, "{e}"),
            AnalyzeError::NotXYStratifiable { stratify, xy } => {
                write!(f, "{stratify}; and the XY-stratification check failed: {xy}")
            }
            AnalyzeError::NegatedBuiltin {
                rule_id,
                pred,
                span,
            } => write!(
                f,
                "rule #{rule_id} at {span}: negated builtin predicate `{pred}` is not supported"
            ),
            AnalyzeError::ArityMismatch {
                pred,
                first,
                second,
                rule_id,
                span,
            } => write!(
                f,
                "rule #{rule_id} at {span}: predicate `{pred}` used with arity {second} but previously with arity {first}"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<SafetyError> for AnalyzeError {
    fn from(e: SafetyError) -> Self {
        AnalyzeError::Safety(e)
    }
}

/// Validate and classify `prog` against `reg`.
pub fn analyze(prog: &Program, reg: &BuiltinRegistry) -> Result<Analysis, AnalyzeError> {
    // 1. Resolve builtin predicates, reject negated builtins.
    let mut program = prog.clone();
    program.rules = prog
        .rules
        .iter()
        .map(|r| safety::resolve_builtins(r, reg))
        .collect();
    for r in &program.rules {
        for (i, lit) in r.body.iter().enumerate() {
            if let Literal::Neg(a) = lit {
                if reg.is_pred(a.pred) {
                    return Err(AnalyzeError::NegatedBuiltin {
                        rule_id: r.id,
                        pred: a.pred,
                        span: r.spans.lit(i),
                    });
                }
            }
        }
    }

    // 2. Arity consistency: the same predicate must keep one arity
    // everywhere (a mismatch silently joins nothing otherwise).
    {
        let mut arity: BTreeMap<Symbol, usize> = BTreeMap::new();
        let mut check =
            |pred: Symbol, n: usize, rule_id: usize, span: Span| -> Result<(), AnalyzeError> {
                match arity.get(&pred) {
                    Some(&a) if a != n => Err(AnalyzeError::ArityMismatch {
                        pred,
                        first: a,
                        second: n,
                        rule_id,
                        span,
                    }),
                    _ => {
                        arity.insert(pred, n);
                        Ok(())
                    }
                }
            };
        for r in &program.rules {
            let head_arity = r.head.args.len() + usize::from(r.agg.is_some());
            check(r.head.pred, head_arity, r.id, r.spans.head)?;
            for (i, lit) in r.body.iter().enumerate() {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    check(a.pred, a.args.len(), r.id, r.spans.lit(i))?;
                }
            }
        }
    }

    // 3. Safety.
    safety::check_program(&program)?;

    // 4. Stratify; on failure attempt XY-stratification.
    let g = DepGraph::build(&program);
    match stratify::stratify_graph(&g) {
        Ok(strat) => {
            let recursive = program.idb_preds().iter().any(|&p| g.is_recursive(p));
            let class = if recursive {
                ProgramClass::Stratified
            } else {
                ProgramClass::NonRecursive
            };
            Ok(Analysis {
                program,
                class,
                strat,
                xy: Vec::new(),
            })
        }
        Err(serr) => {
            // Try XY on every SCC with internal negation.
            let infos = match xy::check_program(&program) {
                Ok(infos) => infos,
                Err(xerr) => {
                    return Err(AnalyzeError::NotXYStratifiable {
                        stratify: serr,
                        xy: xerr,
                    })
                }
            };
            // Stratify a relaxed graph: negative edges inside certified
            // XY components are downgraded to positive.
            let mut relaxed = g.clone();
            let mut member_of: BTreeMap<Symbol, usize> = BTreeMap::new();
            for (i, info) in infos.iter().enumerate() {
                for &p in &info.scc {
                    member_of.insert(p, i);
                }
            }
            for (head, edges) in relaxed.edges.iter_mut() {
                for (body, pol, _) in edges.iter_mut() {
                    if *pol == crate::depgraph::Polarity::Negative
                        && member_of.contains_key(head)
                        && member_of.get(head) == member_of.get(body)
                    {
                        *pol = crate::depgraph::Polarity::Positive;
                    }
                }
            }
            let strat = stratify::stratify_graph(&relaxed).map_err(|e| {
                AnalyzeError::NotXYStratifiable {
                    stratify: e,
                    xy: XyError::NoStageAssignment {
                        scc: Vec::new(),
                        detail: "relaxed graph still unstratifiable".into(),
                    },
                }
            })?;
            Ok(Analysis {
                program,
                class: ProgramClass::XYStratified,
                strat,
                xy: infos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use std::sync::Arc;

    fn std_reg() -> BuiltinRegistry {
        BuiltinRegistry::standard()
    }

    #[test]
    fn classifies_nonrecursive() {
        let p = parse_program(
            r#"
            cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T), dist(L1, L2) <= 50.
            uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
            "#,
        )
        .unwrap();
        let a = analyze(&p, &std_reg()).unwrap();
        assert_eq!(a.class, ProgramClass::NonRecursive);
        assert_eq!(a.strat.level_of(Symbol::intern("uncov")), 1);
    }

    #[test]
    fn classifies_stratified_recursive() {
        let p = parse_program(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            miss(X) :- node(X), not t(a, X).
            "#,
        )
        .unwrap();
        let a = analyze(&p, &std_reg()).unwrap();
        assert_eq!(a.class, ProgramClass::Stratified);
    }

    #[test]
    fn classifies_xy() {
        let p = parse_program(
            r#"
            h(a, a, 0).
            h(a, X, 1) :- g(a, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
            "#,
        )
        .unwrap();
        let a = analyze(&p, &std_reg()).unwrap();
        assert_eq!(a.class, ProgramClass::XYStratified);
        assert_eq!(a.xy_stage_pos(Symbol::intern("h")), Some(2));
        assert_eq!(a.xy_stage_pos(Symbol::intern("hp")), Some(1));
        // h and hp share a stratum in the relaxed graph.
        assert_eq!(
            a.strat.level_of(Symbol::intern("h")),
            a.strat.level_of(Symbol::intern("hp"))
        );
    }

    #[test]
    fn rejects_win_move() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let err = analyze(&p, &std_reg()).unwrap_err();
        assert!(matches!(err, AnalyzeError::NotXYStratifiable { .. }));
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let p = parse_program(
            r#"
            q(X) :- p(X).
            r(X) :- p(X, Y).
            "#,
        )
        .unwrap();
        let err = analyze(&p, &std_reg()).unwrap_err();
        assert!(matches!(err, AnalyzeError::ArityMismatch { .. }));
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn head_agg_counts_toward_arity() {
        // best/2 in the head (group + aggregate) must match best/2 bodies.
        let p = parse_program(
            r#"
            best(G, min<V>) :- m(G, V).
            q(G) :- best(G, V).
            "#,
        )
        .unwrap();
        assert!(analyze(&p, &std_reg()).is_ok());
    }

    #[test]
    fn rejects_unsafe() {
        let p = parse_program("q(X, Z) :- p(X).").unwrap();
        assert!(matches!(
            analyze(&p, &std_reg()),
            Err(AnalyzeError::Safety(_))
        ));
    }

    #[test]
    fn rejects_negated_builtin() {
        let mut reg = std_reg();
        reg.register_pred("close", Arc::new(|_| Ok(true)));
        let p = parse_program("q(X) :- p(X), not close(X, X).").unwrap();
        assert!(matches!(
            analyze(&p, &reg),
            Err(AnalyzeError::NegatedBuiltin { .. })
        ));
    }

    #[test]
    fn builtin_preds_resolved_in_output() {
        let mut reg = std_reg();
        reg.register_pred("close", Arc::new(|_| Ok(true)));
        let p = parse_program("q(X) :- p(X), close(X, X).").unwrap();
        let a = analyze(&p, &reg).unwrap();
        assert!(matches!(a.program.rules[0].body[1], Literal::Builtin(_)));
    }
}
