//! Workload generators for the experiments (deterministic given a seed).

use crate::deploy::WorkloadEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{NodeId, SimTime, Topology};

/// Uniform stream generation: every node generates tuples of each stream
/// at a fixed rate, with a monotonically increasing reading value (the
/// classic "periodic sensing" workload of Sec. III-A's analysis: "uniform
/// generation rates").
pub struct UniformStreams {
    pub preds: Vec<Symbol>,
    /// Mean interval between readings per node per stream (ms).
    pub interval: SimTime,
    /// Total duration (ms).
    pub duration: SimTime,
    /// Fraction of generated tuples later deleted (Fig. 10's update mix).
    pub delete_fraction: f64,
    /// Delay between a tuple's insert and its delete (ms).
    pub delete_lag: SimTime,
    /// Number of join-key groups: the third tuple argument cycles through
    /// `0..groups`, so tuples across nodes and streams join selectively
    /// (`0` degrades to the raw generation time — effectively no joins).
    pub groups: u32,
    pub seed: u64,
}

impl UniformStreams {
    /// Tuple schema: `pred(node_id, value, key)`.
    pub fn events(&self, topo: &Topology) -> Vec<WorkloadEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut value = 0i64;
        for node in topo.nodes() {
            for &pred in &self.preds {
                let mut t = rng.gen_range(1..=self.interval);
                while t < self.duration {
                    value += 1;
                    let key = if self.groups == 0 {
                        t as i64
                    } else {
                        // Uniform random key: avoids modular aliasing with
                        // the node/stream interleaving order.
                        rng.gen_range(0..self.groups) as i64
                    };
                    let tuple = Tuple::new(vec![
                        Term::Int(node.0 as i64),
                        Term::Int(value),
                        Term::Int(key),
                    ]);
                    out.push(WorkloadEvent {
                        at: t,
                        node,
                        pred,
                        tuple: tuple.clone(),
                        kind: UpdateKind::Insert,
                    });
                    if rng.gen::<f64>() < self.delete_fraction {
                        out.push(WorkloadEvent {
                            at: t + self.delete_lag,
                            node,
                            pred,
                            tuple,
                            kind: UpdateKind::Delete,
                        });
                    }
                    t += self.interval;
                }
            }
        }
        out.sort_by_key(|e| e.at);
        out
    }
}

/// Battlefield workload (Example 1): enemy and friendly vehicle sightings
/// `veh(kind, loc, t)` where `loc` is the observing node's id and vehicles
/// wander between adjacent nodes. Friendly positions are deleted when the
/// vehicle moves (tracked cover), enemies are windowed sightings.
pub struct VehicleWorkload {
    pub n_enemy: usize,
    pub n_friendly: usize,
    /// Sighting interval (ms).
    pub interval: SimTime,
    pub duration: SimTime,
    pub seed: u64,
}

impl VehicleWorkload {
    pub fn events(&self, topo: &Topology) -> Vec<WorkloadEvent> {
        let veh = Symbol::intern("veh");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut vehicles: Vec<(NodeId, &str, Option<Tuple>)> = Vec::new();
        for _ in 0..self.n_enemy {
            vehicles.push((NodeId(rng.gen_range(0..topo.len() as u32)), "enemy", None));
        }
        for _ in 0..self.n_friendly {
            vehicles.push((
                NodeId(rng.gen_range(0..topo.len() as u32)),
                "friendly",
                None,
            ));
        }
        // Two vehicles at the same node and instant are one sighting:
        // multiset-dedup so inserts fire on 0→1 and deletes on 1→0 only.
        let mut live: std::collections::HashMap<Tuple, (u32, NodeId)> =
            std::collections::HashMap::new();
        let mut t = self.interval;
        while t < self.duration {
            for v in vehicles.iter_mut() {
                // Retraction of the previous friendly position.
                if v.1 == "friendly" {
                    if let Some(prev) = v.2.take() {
                        if let Some(entry) = live.get_mut(&prev) {
                            entry.0 -= 1;
                            if entry.0 == 0 {
                                let at_node = entry.1;
                                live.remove(&prev);
                                out.push(WorkloadEvent {
                                    at: t,
                                    node: at_node,
                                    pred: veh,
                                    tuple: prev,
                                    kind: UpdateKind::Delete,
                                });
                            }
                        }
                    }
                }
                // Random walk to a neighbor.
                let neigh = topo.neighbors(v.0);
                if !neigh.is_empty() && rng.gen::<f64>() < 0.5 {
                    v.0 = neigh[rng.gen_range(0..neigh.len())];
                }
                let tuple = Tuple::new(vec![
                    Term::str(v.1),
                    Term::Int(v.0 .0 as i64),
                    Term::Int(t as i64),
                ]);
                let entry = live.entry(tuple.clone()).or_insert((0, v.0));
                entry.0 += 1;
                if entry.0 == 1 {
                    out.push(WorkloadEvent {
                        at: t,
                        node: v.0,
                        pred: veh,
                        tuple: tuple.clone(),
                        kind: UpdateKind::Insert,
                    });
                }
                if v.1 == "friendly" {
                    v.2 = Some(tuple);
                }
            }
            t += self.interval;
        }
        out.sort_by_key(|e| e.at);
        out
    }
}

/// Graph workload for the shortest-path-tree programs (Example 3): the
/// network's own links become `g(x, y)` facts, injected at the incident
/// node (each node knows its neighbors).
pub fn graph_edges(topo: &Topology, at: SimTime, spacing: SimTime) -> Vec<WorkloadEvent> {
    let g = Symbol::intern("g");
    let mut out = Vec::new();
    let mut t = at;
    for node in topo.nodes() {
        for &n in topo.neighbors(node) {
            out.push(WorkloadEvent {
                at: t,
                node,
                pred: g,
                tuple: Tuple::new(vec![Term::Int(node.0 as i64), Term::Int(n.0 as i64)]),
                kind: UpdateKind::Insert,
            });
            t += spacing;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_deterministic_and_sorted() {
        let topo = Topology::square_grid(3);
        let w = UniformStreams {
            preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
            interval: 1_000,
            duration: 5_000,
            delete_fraction: 0.0,
            delete_lag: 0,
            groups: 0,
            seed: 4,
        };
        let a = w.events(&topo);
        let b = w.events(&topo);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // ~5 readings per node per stream (jittered start).
        assert!(a.len() >= 9 * 2 * 4 && a.len() <= 9 * 2 * 5);
    }

    #[test]
    fn delete_fraction_generates_deletes() {
        let topo = Topology::square_grid(3);
        let w = UniformStreams {
            preds: vec![Symbol::intern("r")],
            interval: 500,
            duration: 10_000,
            delete_fraction: 0.5,
            delete_lag: 700,
            groups: 0,
            seed: 1,
        };
        let evs = w.events(&topo);
        let dels = evs.iter().filter(|e| e.kind == UpdateKind::Delete).count();
        let ins = evs.iter().filter(|e| e.kind == UpdateKind::Insert).count();
        assert!(dels > 0);
        let frac = dels as f64 / ins as f64;
        assert!(frac > 0.3 && frac < 0.7, "fraction {frac}");
        // Every delete is preceded by its insert.
        for d in evs.iter().filter(|e| e.kind == UpdateKind::Delete) {
            assert!(evs
                .iter()
                .any(|i| i.kind == UpdateKind::Insert && i.tuple == d.tuple && i.at < d.at));
        }
    }

    #[test]
    fn vehicle_workload_well_formed() {
        let topo = Topology::square_grid(4);
        let w = VehicleWorkload {
            n_enemy: 2,
            n_friendly: 1,
            interval: 1_000,
            duration: 4_000,
            seed: 3,
        };
        let evs = w.events(&topo);
        assert!(!evs.is_empty());
        // Friendly deletes reference previously inserted tuples.
        for d in evs.iter().filter(|e| e.kind == UpdateKind::Delete) {
            assert!(evs
                .iter()
                .any(|i| i.kind == UpdateKind::Insert && i.tuple == d.tuple && i.at < d.at));
        }
    }

    #[test]
    fn graph_edges_cover_links() {
        let topo = Topology::square_grid(3);
        let evs = graph_edges(&topo, 10, 5);
        // Directed edges: 2 per undirected link; 3x3 grid has 12 links.
        assert_eq!(evs.len(), 24);
        assert!(evs.iter().all(|e| e.kind == UpdateKind::Insert));
    }
}
