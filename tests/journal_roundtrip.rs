//! Round-trip and error-path coverage for the two JSONL log dialects of
//! the observability planes: the netsim journal (`Journal::from_jsonl`)
//! and the provenance record log (`sensorlog_core::prov`).

use proptest::prelude::*;
use proptest::strategy::Strategy;
use sensorlog::core::prov::{from_jsonl, to_jsonl};
use sensorlog::core::{DerivationKey, ProvRecord, TupleId};
use sensorlog::prelude::*;
use sensorlog_netsim::{Journal, TraceEvent, TraceRecord};

// ---------------------------------------------------------------------
// Journal::from_jsonl error paths
// ---------------------------------------------------------------------

fn small_journal() -> Journal {
    Journal {
        seed: 7,
        records: vec![
            TraceRecord {
                seq: 0,
                at: 0,
                event: TraceEvent::Start { node: NodeId(0) },
            },
            TraceRecord {
                seq: 1,
                at: 10,
                event: TraceEvent::Send {
                    from: NodeId(0),
                    to: NodeId(1),
                    kind: "store",
                    bytes: 30,
                    attempt: 0,
                },
            },
            TraceRecord {
                seq: 2,
                at: 14,
                event: TraceEvent::Deliver {
                    from: NodeId(0),
                    to: NodeId(1),
                    kind: "store",
                    bytes: 30,
                },
            },
        ],
    }
}

#[test]
fn journal_jsonl_round_trip_is_exact() {
    let j = small_journal();
    let restored = Journal::from_jsonl(&j.to_jsonl()).unwrap();
    assert_eq!(restored.seed, j.seed);
    assert_eq!(restored.records, j.records);
}

#[test]
fn journal_from_jsonl_rejects_truncated_line() {
    let text = small_journal().to_jsonl();
    // Cut the final line mid-object: the record loses its closing fields.
    let cut = &text[..text.len() - 20];
    let err = Journal::from_jsonl(cut).expect_err("truncated line must not parse");
    assert!(err.line > 1, "error should point at a record line: {err:?}");
}

#[test]
fn journal_from_jsonl_rejects_unknown_record_kind() {
    let mut text = String::from("{\"type\":\"journal\",\"seed\":1,\"records\":1}\n");
    text.push_str("{\"type\":\"rec\",\"seq\":0,\"at\":0,\"ev\":\"teleport\",\"node\":0}\n");
    let err = Journal::from_jsonl(&text).expect_err("unknown ev kind must not parse");
    assert_eq!(err.line, 2, "error is on the record line: {err:?}");
}

#[test]
fn journal_from_jsonl_rejects_missing_header_and_fields() {
    assert!(Journal::from_jsonl("").is_err(), "empty input");
    assert!(
        Journal::from_jsonl("{\"type\":\"rec\",\"seq\":0}").is_err(),
        "record without header"
    );
    let mut text = String::from("{\"type\":\"journal\",\"seed\":1,\"records\":1}\n");
    text.push_str("{\"type\":\"rec\",\"seq\":0,\"at\":0,\"ev\":\"send\",\"from\":0}\n");
    assert!(
        Journal::from_jsonl(&text).is_err(),
        "send without to/kind/bytes"
    );
}

// ---------------------------------------------------------------------
// Journal::first_divergence
// ---------------------------------------------------------------------

#[test]
fn first_divergence_finds_the_earliest_mismatch() {
    let a = small_journal();
    let mut b = small_journal();
    assert_eq!(a.first_divergence(&b), None, "identical journals agree");

    // Divergence at index zero.
    b.records[0].at = 999;
    assert_eq!(a.first_divergence(&b), Some(0));

    // A strict prefix diverges at the shorter length.
    let mut c = small_journal();
    c.records.pop();
    assert_eq!(a.first_divergence(&c), Some(2));
    assert_eq!(c.first_divergence(&a), Some(2), "symmetric");
}

// ---------------------------------------------------------------------
// Provenance record JSONL round-trip (proptest)
// ---------------------------------------------------------------------

fn arb_id() -> impl Strategy<Value = TupleId> {
    (0u32..40, 0u64..100_000, 0u32..8).prop_map(|(node, ts, seq)| TupleId {
        node: NodeId(node),
        ts,
        seq,
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(-1000i64..1000, 1..4)
        .prop_map(|vals| Tuple::new(vals.into_iter().map(Term::Int).collect::<Vec<_>>()))
}

fn arb_pred() -> impl Strategy<Value = Symbol> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| Symbol::intern(&s))
}

fn arb_kind() -> impl Strategy<Value = UpdateKind> {
    prop_oneof![
        (0u8..1).prop_map(|_| UpdateKind::Insert),
        (0u8..1).prop_map(|_| UpdateKind::Delete),
    ]
}

fn arb_record() -> impl Strategy<Value = ProvRecord> {
    let edb = (arb_pred(), arb_tuple(), arb_id(), arb_kind(), 0u64..100_000).prop_map(
        |(pred, tuple, id, kind, tau)| ProvRecord::Edb {
            node: id.node,
            pred,
            tuple,
            id,
            kind,
            tau,
        },
    );
    let deriv = (
        arb_pred(),
        arb_tuple(),
        (0usize..6, prop::collection::vec(arb_id(), 1..4)),
        prop_oneof![(0u8..1).prop_map(|_| 1i8), (0u8..1).prop_map(|_| -1i8)],
        (0u64..100_000, arb_id(), 0u32..30),
    )
        .prop_map(|(pred, tuple, (rule, ids), sign, (tau, origin, owner))| {
            let inputs = ids
                .into_iter()
                .enumerate()
                .map(|(i, id)| (i as u16, id))
                .collect();
            ProvRecord::Deriv {
                owner: NodeId(owner),
                pred,
                tuple,
                key: DerivationKey::new(rule, inputs),
                sign,
                tau,
                origin,
                at: tau + 5,
            }
        });
    let mint = (arb_pred(), arb_tuple(), arb_id(), arb_kind(), 0u64..100_000).prop_map(
        |(pred, tuple, id, kind, at)| ProvRecord::Mint {
            owner: id.node,
            pred,
            tuple,
            id,
            kind,
            at,
        },
    );
    let hop = (
        0u32..40,
        0u32..40,
        0u32..40,
        0usize..4,
        arb_id(),
        0u64..100_000,
    )
        .prop_map(|(from, to, dest, kind, origin, at)| ProvRecord::Hop {
            from: NodeId(from),
            to: NodeId(to),
            dest: NodeId(dest),
            kind: ["store", "probe", "result", "centroid"][kind],
            origin,
            at,
        });
    prop_oneof![edb, deriv, mint, hop]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any mix of the four record kinds survives the JSONL round trip
    /// exactly — including derivation keys with multiple inputs.
    #[test]
    fn prov_records_round_trip_jsonl(records in prop::collection::vec(arb_record(), 0..20)) {
        let text = to_jsonl(&records);
        let restored = from_jsonl(&text)
            .unwrap_or_else(|e| panic!("reparse failed at line {}: {}\n{text}", e.line, e.msg));
        prop_assert_eq!(restored, records);
    }
}

#[test]
fn prov_from_jsonl_errors_name_the_line() {
    let records = vec![ProvRecord::Hop {
        from: NodeId(0),
        to: NodeId(1),
        dest: NodeId(2),
        kind: "store",
        origin: TupleId {
            node: NodeId(0),
            ts: 1,
            seq: 0,
        },
        at: 5,
    }];
    let mut text = to_jsonl(&records);
    text.push_str("{\"type\":\"prov\",\"rec\":\"warp\"}\n");
    let err = from_jsonl(&text).expect_err("unknown prov record kind");
    assert_eq!(err.line, 2);
}
