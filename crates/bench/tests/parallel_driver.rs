//! The parallel bench driver must be observationally identical to the
//! serial one: each case is an independent deterministic single-threaded
//! simulation, and `run_cases_with` merges results in spec order — so a
//! table built from a 4-thread run renders byte-identical to the 1-thread
//! reference.

use sensorlog_bench::common::{run_cases_with, CaseSpec};
use sensorlog_bench::Table;
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn small_sweep() -> Vec<CaseSpec> {
    let mut specs = Vec::new();
    for (i, &(m, loss)) in [(4u32, 0.0f64), (4, 0.1), (5, 0.0), (5, 0.1)]
        .iter()
        .enumerate()
    {
        let topo = Topology::square_grid(m);
        let events = UniformStreams {
            preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
            interval: 8_000,
            duration: 16_000,
            delete_fraction: 0.0,
            delete_lag: 0,
            groups: 16,
            seed: 5 + i as u64,
        }
        .events(&topo);
        specs.push(CaseSpec {
            src: JOIN2.to_string(),
            topo,
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            pass_mode: PassMode::OnePass,
            sim: SimConfig {
                loss_prob: loss,
                seed: 17,
                ..SimConfig::default()
            },
            spatial_radius: None,
            events,
            output: Symbol::intern("q"),
            horizon: 30_000_000,
        });
    }
    specs
}

fn render(points: &[sensorlog_bench::common::RunPoint]) -> String {
    let mut t = Table::new(
        "par",
        "parallel-driver equivalence probe",
        &["tx", "bytes", "maxload", "compl", "events", "depth"],
    );
    for p in points {
        t.row(vec![
            p.total_tx.to_string(),
            p.total_bytes.to_string(),
            p.max_node_load.to_string(),
            format!("{:.4}", p.completeness),
            p.trace.delivers.to_string(),
            p.max_queue_depth.to_string(),
        ]);
    }
    t.to_string()
}

#[test]
fn parallel_table_is_byte_identical_to_serial() {
    let specs = small_sweep();
    let serial = render(&run_cases_with(&specs, 1));
    let parallel = render(&run_cases_with(&specs, 4));
    assert_eq!(
        serial, parallel,
        "worker-thread scheduling leaked into experiment results"
    );
}

#[test]
fn single_spec_roundtrip() {
    let specs = small_sweep();
    let one = run_cases_with(&specs[..1], 8);
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].total_tx, specs[0].run().total_tx);
}
