//! Runtime cross-validation of the static analyzer's memory bounds
//! (`sensorlog check` / `logic::diag`, paper Sec. V): on a 200-node
//! lossy logicH deployment, every per-node per-predicate peak stored-tuple
//! count must stay under the statically derived envelope, and the total
//! message count must stay under the communication envelope. The analyzer
//! and the runtime implement the paper's memory accounting independently —
//! agreement here is evidence both are right, a violation means one of
//! them drifted.

use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::invariants;
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::logic::diag::{memory_bounds, BoundParams};
use sensorlog::prelude::*;
use std::collections::BTreeMap;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

fn run_200_node() -> Deployment {
    let topo = Topology::grid(20, 10); // 200 nodes
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.1,
            seed: 17,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(2_000_000);
    d
}

#[test]
fn static_bounds_dominate_200_node_run() {
    let d = run_200_node();

    // The invariant itself: no node exceeded 2 × T(p) for any predicate,
    // and total transmissions stayed under the communication envelope.
    let report = invariants::check_static_bounds(&d);
    assert!(report.ok(), "{report}");

    // Recompute the model the invariant used and check it is *meaningful*:
    // every predicate of the program has a finite, non-trivial bound.
    let params = BoundParams {
        nodes: d.sim.topology().len() as u64,
        default_events: 0,
        events: d.injected_events().clone(),
    };
    let bounds = memory_bounds(&d.prog.analysis);
    let eg = *d
        .injected_events()
        .get(&Symbol::intern("g"))
        .expect("g edges were injected");
    assert!(eg > 100, "workload generated only {eg} edges");
    let stages = params.nodes + 1;
    let t = |name: &str| -> u64 {
        bounds[&Symbol::intern(name)]
            .eval(&params)
            .unwrap_or_else(|| panic!("{name} must have a finite bound"))
    };
    // T(g) = E(g); T(h) = S·(1 + 2·E(g)); T(hp) = S·E(g) — the XY stage
    // count times the per-stage derivations anchored on the edge stream.
    assert_eq!(t("g"), eg);
    assert_eq!(t("h"), stages * (1 + 2 * eg));
    assert_eq!(t("hp"), stages * eg);

    // Observed network-wide per-predicate peaks, and the domination margin:
    // on this workload real nodes hold orders of magnitude less than the
    // (sound but loose) static ceiling.
    let mut observed: BTreeMap<Symbol, usize> = BTreeMap::new();
    for id in d.sim.topology().nodes() {
        for (&pred, &peak) in &d.sim.node(id).peak_pred_stored {
            let e = observed.entry(pred).or_insert(0);
            *e = (*e).max(peak);
        }
    }
    // The lossy run must at least materialize the edge stream and the
    // spanning-tree head; hp's deep 3-way join may or may not complete
    // under 10% loss, so its cap is checked only when it stored anything.
    for name in ["g", "h"] {
        assert!(
            observed.contains_key(&Symbol::intern(name)),
            "no stored tuples observed for {name}"
        );
    }
    for (&pred, &peak) in &observed {
        assert!(peak > 0, "{pred} recorded a zero peak");
        let cap = 2 * t(pred.as_str());
        assert!(
            (peak as u64) <= cap,
            "{pred}: observed peak {peak} exceeds static cap {cap}"
        );
    }

    // Communication envelope: the run's total transmissions sit far below
    // the static per-update routing envelope.
    let envelope: u64 = bounds
        .values()
        .map(|b| b.eval(&params).expect("all finite") * 2)
        .sum::<u64>()
        * 8
        * params.nodes;
    let tx = d.metrics().total_tx();
    assert!(
        tx < envelope,
        "total tx {tx} exceeds static envelope {envelope}"
    );
}

/// The same cross-validation exposed as telemetry: the snapshot's
/// `diag.bound.violations` gauge is zero and per-predicate peaks appear as
/// `peak_stored` gauges.
#[test]
fn snapshot_reports_zero_bound_violations() {
    let d = run_200_node();
    let snap = d.telemetry_snapshot();
    assert_eq!(snap.gauge("global", "diag.bound.violations"), 0);
    for name in ["pred:g", "pred:h"] {
        assert!(
            snap.gauge(name, "peak_stored") > 0,
            "no peak_stored gauge for {name}"
        );
    }
}
