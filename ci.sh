#!/usr/bin/env bash
# Repo CI gate: formatting, lints, full test suite.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build
#
# Mirrors what reviewers run by hand; keep it boring and fast. All steps
# are offline (vendored deps only).

set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

if [[ "$fast" -eq 0 ]]; then
    echo "== cargo build --release (workspace, timed) =="
    build_start=$SECONDS
    cargo build --release -q --workspace
    echo "release build took $((SECONDS - build_start))s"

    # Static analyzer gate: every example program must pass `sensorlog
    # check` with zero errors and zero warnings (bounds derivable, no
    # cartesian joins, no dead rules, windows declared) — including the
    # cost lints (`comm.widen`, `cost.holddown-implicit`) introduced by
    # the frontier-width pass.
    echo "== sensorlog check (examples, deny warnings incl. cost lints) =="
    for f in examples/programs/*.dl; do
        cargo run -q --release --bin sensorlog -- check "$f" --deny-warnings
    done

    # Rewrite gate: `sensorlog fix --dry-run` must find nothing left to
    # apply on any committed example — machine-applicable suggestions are
    # either already folded into the sources or the lint above would have
    # fired. Exit code 2 means pending fixes; 1 means non-convergence.
    echo "== sensorlog fix --dry-run (examples, must be clean) =="
    for f in examples/programs/*.dl; do
        cargo run -q --release --bin sensorlog -- fix "$f" --dry-run
    done

    # Frontier-bound tightness smoke: the 5x5 sweep must keep every
    # finite bound sound (>= live tuples, >= per-node peak), no looser
    # than the legacy S·Σ bound, and within 10x of the live count (the
    # bin exits non-zero on any gate breach). The pinned worst-case
    # tightness ratios anchor the quick artifact across processes; the
    # committed BENCH_diag.json is the full-budget run.
    echo "== diag smoke (--quick, tightness ratios pinned) =="
    diag_out=$(mktemp /tmp/bench_diag.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin diag -- --quick --out "$diag_out"
    python3 -m json.tool "$diag_out" > /dev/null
    grep -q '"pred": "h", "legacy": 4186, "frontier": 161, "live": 41, "peak_node": 21, "tightness": 3' "$diag_out" || {
        echo "diag smoke: logicH-5x5 h tightness drifted from the pin"; exit 1; }
    grep -q '"pred": "hp", "legacy": 2080, "frontier": 240, "live": 24, "peak_node": 10, "tightness": 10' "$diag_out" || {
        echo "diag smoke: logicH-5x5 hp tightness drifted from the pin"; exit 1; }
    grep -q '"mirror": {"legacy": "unbounded", "frontier": 4800}' "$diag_out" || {
        echo "diag smoke: windowed mirror recursion no longer gets its finite frontier bound"; exit 1; }
    rm -f "$diag_out"

    # Telemetry pipeline end-to-end + snapshot-schema golden check; writes
    # BENCH_smoke.json (gitignored) as the inspectable artifact.
    echo "== bench smoke (--quick) =="
    cargo run -q --release -p sensorlog-bench --bin smoke -- --quick

    # Scheduler/index microbench on a tiny budget: must exit 0 and emit
    # parseable JSON. The committed BENCH_sched.json is the full-budget
    # artifact; the smoke run writes to a scratch path and is discarded.
    echo "== sched microbench smoke (--quick) =="
    sched_out=$(mktemp /tmp/bench_sched.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin sched -- --quick --out "$sched_out"
    python3 -m json.tool "$sched_out" > /dev/null
    rm -f "$sched_out"

    # Region-sharded scheduler smoke: a 2-worker quick run whose journal
    # must match the single-wheel oracle hash computed in the same process
    # (the bin exits non-zero on any divergence), plus the pinned quick
    # trace hash as a cross-process regression anchor.
    echo "== shard scaling smoke (--quick, 2-worker journal pinned) =="
    shard_out=$(mktemp /tmp/bench_shard.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin shard -- --quick --out "$shard_out"
    python3 -m json.tool "$shard_out" > /dev/null
    grep -q '"hash": "454242ed8c28a208"' "$shard_out" || {
        echo "shard smoke: quick trace hash drifted (journal no longer matches the pin)"; exit 1; }
    rm -f "$shard_out"

    # Fault-plane chaos smoke: a scripted crash/partition scenario under
    # heap, wheel, and 2-worker shard whose journals must agree in-process
    # (the bin exits non-zero on divergence or on any convergence-to-oracle
    # violation), plus the pinned cross-backend journal hash as the
    # cross-process regression anchor. The same scenario produces the
    # committed BENCH_chaos.json, which pins the identical hash.
    echo "== chaos smoke (--quick, fault-plane journal pinned) =="
    chaos_out=$(mktemp /tmp/bench_chaos.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin chaos -- --quick --out "$chaos_out"
    python3 -m json.tool "$chaos_out" > /dev/null
    grep -q '"hash": "bc026db128c91410"' "$chaos_out" || {
        echo "chaos smoke: quick journal hash drifted (fault-plane trace no longer matches the pin)"; exit 1; }
    rm -f "$chaos_out"

    # Provenance overhead smoke: a 50-node logicH run, provenance off vs
    # on. The bin exits non-zero unless the two journals are identical
    # (pure-observer contract) and a sampled derived tuple proves
    # end-to-end; the pinned hash anchors the disabled-provenance trace
    # across processes.
    echo "== provenance smoke (--quick, pure-observer journal pinned) =="
    prov_out=$(mktemp /tmp/bench_prov.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin prov -- --quick --out "$prov_out"
    python3 -m json.tool "$prov_out" > /dev/null
    grep -q '"hash": "3c1ec08c6289dba4"' "$prov_out" || {
        echo "prov smoke: quick journal hash drifted (provenance plane perturbed the trace, or the sim changed)"; exit 1; }
    rm -f "$prov_out"

    # Intern smoke: the flat-tuple representation must be invisible in the
    # trace (deployment journal matches the pre-refactor pin) and the
    # fixpoint loop must run resolve-free — `intern.hot.resolves` counts
    # any id -> Term materialization outside an `intern::boundary` scope,
    # and the bin exits non-zero if either gate fails. The greps re-check
    # the emitted JSON so a silent bin regression can't pass.
    echo "== intern smoke (--quick, journal pinned + resolve gate) =="
    intern_out=$(mktemp /tmp/bench_intern.XXXXXX.json)
    cargo run -q --release -p sensorlog-bench --bin intern -- --quick --out "$intern_out"
    python3 -m json.tool "$intern_out" > /dev/null
    grep -q '"hash": "3c1ec08c6289dba4"' "$intern_out" || {
        echo "intern smoke: journal hash drifted (flat representation is visible in the trace)"; exit 1; }
    grep -q '"engine_hot": 0' "$intern_out" || {
        echo "intern smoke: hot-path resolves in the engine fixpoint loop"; exit 1; }
    grep -q '"deploy_hot": 0' "$intern_out" || {
        echo "intern smoke: hot-path resolves in the deployment loop"; exit 1; }
    rm -f "$intern_out"

    # `sensorlog explain` end-to-end: a recursive 3-link chain whose proof
    # tree must span the grid and name the EDB leaf, with the latency-
    # critical chain attached.
    echo "== sensorlog explain smoke (recursive cross-node proof) =="
    explain_out=$(cargo run -q --release --bin sensorlog -- explain \
        examples/explain/reach.dl --grid 4 \
        --events examples/explain/chain_events.txt --why 'reach(1, 4)')
    for needle in 'reach(1, 4)' 'edge(1, 2)' 'critical path' 'sim-ms'; do
        grep -qF "$needle" <<<"$explain_out" || {
            echo "explain smoke: missing \`$needle\` in output:"; echo "$explain_out"; exit 1; }
    done
fi

echo "CI OK"
