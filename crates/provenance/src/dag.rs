//! The materialized cross-node provenance DAG and its query surface.
//!
//! [`ProvDag::build`] folds a deployment's raw [`ProvRecord`] log into
//! per-atom state, mirroring the owner-side bookkeeping of the runtime:
//! derivation-key counts are clamped to `[-1, 1]` exactly as
//! `handle_deriv_delta` clamps them, EDB liveness follows the last
//! insert/delete transition, and tuple-id bindings come from `Edb` and
//! `Mint` records. Liveness of derived atoms is then computed as a
//! well-founded fixpoint (an atom is live iff some positive derivation key
//! has all inputs bound to live atoms), which yields a *rank* per atom —
//! the round it entered the fixpoint. Proofs recurse strictly down ranks,
//! so they are acyclic by construction even when the record log contains
//! cyclic rule firings (e.g. transitive closure re-deriving a premise).

use sensorlog_core::{DerivationKey, ProvRecord, TupleId};
use sensorlog_eval::eval_body::sem_match_args;
use sensorlog_eval::UpdateKind;
use sensorlog_logic::boundness::order_literals;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::intern;
use sensorlog_logic::unify::Subst;
use sensorlog_logic::{Atom, CmpOp, Literal, Program, Rule, Symbol, Term, Tuple};
use sensorlog_netsim::{Journal, NodeId, SimTime, TraceEvent};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// Atoms are identified by (predicate, ground tuple) across the network.
type AtomKey = (Symbol, Tuple);

/// One routed hop of a message causally charged to a tuple id.
#[derive(Clone, Debug)]
pub struct HopInfo {
    pub from: NodeId,
    pub to: NodeId,
    /// Final destination of the routed envelope.
    pub dest: NodeId,
    /// Wire kind: `store`, `probe`, `result`, `centroid`.
    pub kind: &'static str,
    /// Sender-local sim time of the first transmission attempt.
    pub sent_at: SimTime,
    /// Delivery time per the netsim journal (when enriched and delivered).
    pub delivered_at: Option<SimTime>,
    /// Transmission attempts per the journal (0 = journal not attached).
    pub attempts: u32,
    /// Journal says every attempt was dropped.
    pub lost: bool,
}

/// Live/dead state of a fact binding (EDB entry or minted derived tuple).
#[derive(Clone, Copy, Debug)]
struct FactState {
    id: TupleId,
    alive: bool,
    at: SimTime,
    /// Was ever alive — distinguishes "retracted" from "tombstone only".
    ever: bool,
}

/// Owner-side state of one derivation key for an atom.
#[derive(Clone, Debug)]
struct KeyEntry {
    key: DerivationKey,
    count: i64,
    /// Event timestamp (τ) of the last positive delta.
    tau: SimTime,
    /// Originating update of the last positive delta.
    origin: Option<TupleId>,
    /// Owner-local arrival time of the last positive delta.
    booked_at: SimTime,
    ever_pos: bool,
}

#[derive(Clone, Debug, Default)]
struct AtomState {
    keys: Vec<KeyEntry>,
    edb: Option<FactState>,
    mint: Option<FactState>,
}

impl AtomState {
    fn was_live(&self) -> bool {
        self.edb.is_some_and(|f| f.ever)
            || self.mint.is_some_and(|f| f.ever)
            || self.keys.iter().any(|k| k.ever_pos)
    }
}

/// The global causal DAG of one deployment run.
pub struct ProvDag {
    atoms: HashMap<AtomKey, AtomState>,
    /// Every tuple ever mentioned, per predicate (deterministic order).
    by_pred: HashMap<Symbol, BTreeSet<Tuple>>,
    /// TupleId → the atom it names (from `Edb` and `Mint` records).
    bindings: HashMap<TupleId, AtomKey>,
    /// Per originating tuple id, the routed hops charged to it.
    hops: HashMap<TupleId, Vec<HopInfo>>,
    /// (origin, index into `hops[origin]`) in record order — used to align
    /// hops with the journal's send/deliver stream.
    hop_seq: Vec<(TupleId, usize)>,
    /// Fixpoint round at which each live atom became derivable. EDB = 0.
    rank: HashMap<AtomKey, u32>,
    /// Number of raw records ingested.
    pub n_records: usize,
}

impl ProvDag {
    /// Fold a record log into the DAG and compute the liveness fixpoint.
    pub fn build(records: &[ProvRecord]) -> ProvDag {
        let mut dag = ProvDag {
            atoms: HashMap::new(),
            by_pred: HashMap::new(),
            bindings: HashMap::new(),
            hops: HashMap::new(),
            hop_seq: Vec::new(),
            rank: HashMap::new(),
            n_records: records.len(),
        };
        for rec in records {
            dag.ingest(rec);
        }
        dag.compute_ranks();
        dag
    }

    /// Build and then enrich hop edges with delivery info from the netsim
    /// journal (see [`ProvDag::attach_journal`]).
    pub fn build_with_journal(records: &[ProvRecord], journal: &Journal) -> ProvDag {
        let mut dag = ProvDag::build(records);
        dag.attach_journal(journal);
        dag
    }

    fn ingest(&mut self, rec: &ProvRecord) {
        match rec {
            ProvRecord::Edb {
                pred,
                tuple,
                id,
                kind,
                tau,
                ..
            } => {
                let atom = (*pred, tuple.clone());
                self.bindings.insert(*id, atom.clone());
                self.by_pred.entry(*pred).or_default().insert(tuple.clone());
                let st = self.atoms.entry(atom).or_default();
                let alive = matches!(kind, UpdateKind::Insert);
                let prev = st.edb;
                st.edb = Some(FactState {
                    // A delete keeps the insert's id so proofs reference
                    // the generation, not the tombstone.
                    id: if alive {
                        *id
                    } else {
                        prev.map_or(*id, |p| p.id)
                    },
                    alive,
                    at: *tau,
                    ever: alive || prev.is_some_and(|p| p.ever),
                });
            }
            ProvRecord::Deriv {
                pred,
                tuple,
                key,
                sign,
                tau,
                origin,
                at,
                ..
            } => {
                let atom = (*pred, tuple.clone());
                self.by_pred.entry(*pred).or_default().insert(tuple.clone());
                let st = self.atoms.entry(atom).or_default();
                let entry = match st.keys.iter_mut().find(|e| e.key == *key) {
                    Some(e) => e,
                    None => {
                        st.keys.push(KeyEntry {
                            key: key.clone(),
                            count: 0,
                            tau: 0,
                            origin: None,
                            booked_at: 0,
                            ever_pos: false,
                        });
                        st.keys.last_mut().unwrap()
                    }
                };
                // Mirror the owner's clamp: refresh re-announces can
                // legitimately re-deliver the same key.
                entry.count = (entry.count + i64::from(*sign)).clamp(-1, 1);
                if *sign > 0 {
                    entry.tau = *tau;
                    entry.origin = Some(*origin);
                    entry.booked_at = *at;
                    entry.ever_pos = true;
                }
            }
            ProvRecord::Mint {
                pred,
                tuple,
                id,
                kind,
                at,
                ..
            } => {
                let atom = (*pred, tuple.clone());
                self.bindings.insert(*id, atom.clone());
                self.by_pred.entry(*pred).or_default().insert(tuple.clone());
                let st = self.atoms.entry(atom).or_default();
                let alive = matches!(kind, UpdateKind::Insert);
                let prev = st.mint;
                st.mint = Some(FactState {
                    id: *id,
                    alive,
                    at: *at,
                    ever: alive || prev.is_some_and(|p| p.ever),
                });
            }
            ProvRecord::Hop {
                from,
                to,
                dest,
                kind,
                origin,
                at,
            } => {
                let list = self.hops.entry(*origin).or_default();
                list.push(HopInfo {
                    from: *from,
                    to: *to,
                    dest: *dest,
                    kind,
                    sent_at: *at,
                    delivered_at: None,
                    attempts: 0,
                    lost: false,
                });
                self.hop_seq.push((*origin, list.len() - 1));
            }
        }
    }

    /// Well-founded liveness: round 0 admits live EDB atoms; each later
    /// round admits atoms with a positive derivation key whose every input
    /// id is bound to an already-admitted atom.
    fn compute_ranks(&mut self) {
        for (atom, st) in &self.atoms {
            if st.edb.is_some_and(|f| f.alive) {
                self.rank.insert(atom.clone(), 0);
            }
        }
        let mut round = 1u32;
        loop {
            let mut admitted = Vec::new();
            for (atom, st) in &self.atoms {
                if self.rank.contains_key(atom) {
                    continue;
                }
                let supported = st.keys.iter().any(|e| {
                    e.count > 0
                        && e.key.inputs.iter().all(|(_, id)| {
                            self.bindings
                                .get(id)
                                .is_some_and(|a| self.rank.contains_key(a))
                        })
                });
                if supported {
                    admitted.push(atom.clone());
                }
            }
            if admitted.is_empty() {
                break;
            }
            for atom in admitted {
                self.rank.insert(atom, round);
            }
            round += 1;
        }
    }

    /// Enrich hop edges with delivery times, ARQ attempt counts, and loss
    /// flags from the netsim journal. Best-effort: hops and journal sends
    /// are paired FIFO per `(from, to, kind)` channel, which is exact for
    /// the routed (non-broadcast) traffic the provenance plane records.
    pub fn attach_journal(&mut self, journal: &Journal) {
        fn tracked(kind: &str) -> bool {
            matches!(kind, "store" | "probe" | "result" | "centroid")
        }
        struct Logical {
            attempts: u32,
            delivered_at: Option<SimTime>,
        }
        let mut sends: HashMap<(NodeId, NodeId, &'static str), Vec<Logical>> = HashMap::new();
        for r in &journal.records {
            match &r.event {
                TraceEvent::Send {
                    from,
                    to,
                    kind,
                    attempt,
                    ..
                } if tracked(kind) => {
                    let q = sends.entry((*from, *to, *kind)).or_default();
                    if *attempt == 0 {
                        q.push(Logical {
                            attempts: 1,
                            delivered_at: None,
                        });
                    } else if let Some(l) = q.iter_mut().rev().find(|l| l.delivered_at.is_none()) {
                        l.attempts += 1;
                    }
                }
                TraceEvent::Deliver { from, to, kind, .. } if tracked(kind) => {
                    if let Some(l) = sends
                        .get_mut(&(*from, *to, *kind))
                        .and_then(|q| q.iter_mut().find(|l| l.delivered_at.is_none()))
                    {
                        l.delivered_at = Some(r.at);
                    }
                }
                _ => {}
            }
        }
        let mut cursor: HashMap<(NodeId, NodeId, &'static str), usize> = HashMap::new();
        for &(origin, idx) in &self.hop_seq {
            let h = &mut self.hops.get_mut(&origin).unwrap()[idx];
            let chan = (h.from, h.to, h.kind);
            let c = cursor.entry(chan).or_insert(0);
            if let Some(l) = sends.get(&chan).and_then(|q| q.get(*c)) {
                h.attempts = l.attempts;
                h.delivered_at = l.delivered_at;
                h.lost = l.delivered_at.is_none();
            }
            *c += 1;
        }
    }

    /// Is this atom live (supported by the well-founded fixpoint)?
    pub fn atom_live(&self, pred: Symbol, tuple: &Tuple) -> bool {
        self.rank.contains_key(&(pred, tuple.clone()))
    }

    /// Live tuples of a predicate, in deterministic (BTree) order.
    pub fn live_tuples(&self, pred: Symbol) -> Vec<&Tuple> {
        self.by_pred
            .get(&pred)
            .map(|set| {
                set.iter()
                    .filter(|t| self.rank.contains_key(&(pred, (*t).clone())))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Tuples of a predicate that were live at some point but are dead now.
    fn retracted_tuples(&self, pred: Symbol) -> Vec<&Tuple> {
        self.by_pred
            .get(&pred)
            .map(|set| {
                set.iter()
                    .filter(|t| {
                        let atom = (pred, (*t).clone());
                        !self.rank.contains_key(&atom)
                            && self.atoms.get(&atom).is_some_and(|s| s.was_live())
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Routed hops charged to a tuple id (empty if none were recorded).
    pub fn hops_of(&self, id: TupleId) -> &[HopInfo] {
        self.hops.get(&id).map_or(&[], |v| v.as_slice())
    }

    /// Full derivation tree of a live atom; `None` if the atom is not live
    /// in the DAG. Shared sub-proofs are memoized, and recursion descends
    /// strictly down fixpoint ranks, so the result is finite and acyclic.
    pub fn why(&self, pred: Symbol, tuple: &Tuple) -> Option<ProofNode> {
        let atom = (pred, tuple.clone());
        self.rank.get(&atom)?;
        let mut memo: HashMap<AtomKey, ProofNode> = HashMap::new();
        Some(self.prove(&atom, &mut memo))
    }

    fn prove(&self, atom: &AtomKey, memo: &mut HashMap<AtomKey, ProofNode>) -> ProofNode {
        if let Some(p) = memo.get(atom) {
            return p.clone();
        }
        let my_rank = self.rank[atom];
        let st = &self.atoms[atom];
        let node = if my_rank == 0 {
            let f = st.edb.expect("rank-0 atom has a live EDB record");
            ProofNode {
                pred: atom.0,
                tuple: atom.1.clone(),
                id: Some(f.id),
                rule_id: None,
                owner: Some(f.id.node),
                finish_at: f.id.ts,
                booked_at: None,
                premises: Vec::new(),
            }
        } else {
            // Pick the supporting key closest to the leaves (then lowest
            // rule id) for a deterministic, minimal-depth proof.
            let mut best: Option<(&KeyEntry, u32)> = None;
            for e in &st.keys {
                if e.count <= 0 {
                    continue;
                }
                let mut max_rank = 0u32;
                let mut ok = true;
                for (_, id) in &e.key.inputs {
                    match self.bindings.get(id).and_then(|a| self.rank.get(a)) {
                        Some(&r) if r < my_rank => max_rank = max_rank.max(r),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && best.is_none_or(|(b, br)| (max_rank, e.key.rule_id) < (br, b.key.rule_id))
                {
                    best = Some((e, max_rank));
                }
            }
            let (entry, _) = best.expect("ranked derived atom has a supporting key");
            let (id, owner, finish_at) = match st.mint {
                Some(f) => (Some(f.id), Some(f.id.node), f.at),
                None => (None, None, entry.booked_at),
            };
            let premises = entry
                .key
                .inputs
                .iter()
                .map(|&(lit_idx, input_id)| {
                    let premise_atom = self.bindings[&input_id].clone();
                    let premise = self.prove(&premise_atom, memo);
                    ProofEdge {
                        lit_idx,
                        input_id,
                        triggering: entry.origin == Some(input_id),
                        latency: entry.booked_at.saturating_sub(premise.finish_at),
                        hops: self.hops_of(input_id).to_vec(),
                        premise,
                    }
                })
                .collect();
            ProofNode {
                pred: atom.0,
                tuple: atom.1.clone(),
                id,
                rule_id: Some(entry.key.rule_id),
                owner,
                finish_at,
                booked_at: Some(entry.booked_at),
                premises,
            }
        };
        memo.insert(atom.clone(), node.clone());
        node
    }

    /// Why is this atom *not* live? Replays each candidate rule against the
    /// DAG's live atoms (head-unified via semantic matching, body in the
    /// planner's boundness order) and reports the first subgoal that cannot
    /// be satisfied — or detects that the rule *would* fire, meaning a
    /// delta was lost rather than the logic failing.
    pub fn why_not(
        &self,
        program: &Program,
        reg: &BuiltinRegistry,
        pred: Symbol,
        tuple: &Tuple,
    ) -> WhyNot {
        if self.atom_live(pred, tuple) {
            return WhyNot::Present;
        }
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| r.head.pred == pred)
            .collect();
        if rules.is_empty() {
            return WhyNot::NoRule;
        }
        let mut attempts = Vec::new();
        let mut any_head = false;
        for rule in rules {
            let mut s0 = Subst::new();
            if !sem_match_args(
                reg,
                &rule.head.args,
                &intern::boundary(|| tuple.terms()),
                &mut s0,
            ) {
                continue;
            }
            any_head = true;
            match self.walk_rule(rule, reg, s0) {
                Ok(()) => return WhyNot::Derivable { rule_id: rule.id },
                Err(f) => attempts.push(f),
            }
        }
        if !any_head {
            return WhyNot::HeadMismatch;
        }
        WhyNot::Failed(attempts)
    }

    /// Beam-walk one rule body over the live DAG. `Ok(())` means some
    /// binding satisfies every subgoal; `Err` carries the first failure.
    fn walk_rule(&self, rule: &Rule, reg: &BuiltinRegistry, s0: Subst) -> Result<(), FailedRule> {
        // Cap the binding frontier so pathological joins stay cheap; a
        // truncated beam can only under-report `Derivable`, never invent a
        // spurious failure position for satisfiable prefixes.
        const BEAM: usize = 256;
        let order = order_literals(&rule.body, None);
        let mut beam = vec![s0];
        for &li in &order {
            let lit = &rule.body[li];
            let mut next: Vec<Subst> = Vec::new();
            match lit {
                Literal::Pos(a) => {
                    'outer: for s in &beam {
                        for t in self.live_tuples(a.pred) {
                            let mut s2 = s.clone();
                            if sem_match_args(
                                reg,
                                &a.args,
                                &intern::boundary(|| t.terms()),
                                &mut s2,
                            ) {
                                next.push(s2);
                                if next.len() >= BEAM {
                                    break 'outer;
                                }
                            }
                        }
                    }
                    if next.is_empty() {
                        let retracted = beam.iter().any(|s| {
                            self.retracted_tuples(a.pred).into_iter().any(|t| {
                                let mut s2 = s.clone();
                                sem_match_args(
                                    reg,
                                    &a.args,
                                    &intern::boundary(|| t.terms()),
                                    &mut s2,
                                )
                            })
                        });
                        return Err(self.fail(rule, li, lit, false, retracted, &beam[0]));
                    }
                }
                Literal::Neg(a) => {
                    for s in &beam {
                        let blocked = self.live_tuples(a.pred).into_iter().any(|t| {
                            let mut s2 = s.clone();
                            sem_match_args(reg, &a.args, &intern::boundary(|| t.terms()), &mut s2)
                        });
                        if !blocked {
                            next.push(s.clone());
                        }
                    }
                    if next.is_empty() {
                        return Err(self.fail(rule, li, lit, true, false, &beam[0]));
                    }
                }
                Literal::Cmp(op, l, r) => {
                    for s in &beam {
                        let lg = s.apply(l);
                        let rg = s.apply(r);
                        match (lg.is_ground(), rg.is_ground()) {
                            (true, true) if reg.compare(*op, &lg, &rg).unwrap_or(false) => {
                                next.push(s.clone());
                            }
                            // Mirror the engine: `Eq` with one unbound side
                            // acts as an assignment.
                            (false, true) if *op == CmpOp::Eq => {
                                if let Term::Var(v) = lg {
                                    if let Ok(val) = reg.eval_term(&rg) {
                                        let mut s2 = s.clone();
                                        s2.bind(v, val);
                                        next.push(s2);
                                    }
                                }
                            }
                            (true, false) if *op == CmpOp::Eq => {
                                if let Term::Var(v) = rg {
                                    if let Ok(val) = reg.eval_term(&lg) {
                                        let mut s2 = s.clone();
                                        s2.bind(v, val);
                                        next.push(s2);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    if next.is_empty() {
                        return Err(self.fail(rule, li, lit, false, false, &beam[0]));
                    }
                }
                Literal::Builtin(a) => {
                    for s in &beam {
                        let args: Option<Vec<Term>> = a
                            .args
                            .iter()
                            .map(|t| {
                                let g = s.apply(t);
                                if g.is_ground() {
                                    reg.eval_term(&g).ok()
                                } else {
                                    None
                                }
                            })
                            .collect();
                        if let Some(args) = args {
                            if reg.call_pred(a.pred, &args).unwrap_or(false) {
                                next.push(s.clone());
                            }
                        }
                    }
                    if next.is_empty() {
                        return Err(self.fail(rule, li, lit, false, false, &beam[0]));
                    }
                }
            }
            next.truncate(BEAM);
            beam = next;
        }
        Ok(())
    }

    fn fail(
        &self,
        rule: &Rule,
        lit_idx: usize,
        lit: &Literal,
        negated: bool,
        retracted: bool,
        witness: &Subst,
    ) -> FailedRule {
        let mut bound: Vec<(Symbol, Term)> = witness
            .iter()
            .map(|(v, t)| (*v, witness.apply(t)))
            .collect();
        bound.sort_by_key(|(v, _)| v.as_str().to_string());
        FailedRule {
            rule_id: rule.id,
            lit_idx,
            literal: render_literal(lit, witness),
            negated,
            retracted,
            witness: bound,
        }
    }
}

fn render_atom(a: &Atom, s: &Subst) -> String {
    let args: Vec<String> = a.args.iter().map(|t| s.apply(t).to_string()).collect();
    format!("{}({})", a.pred, args.join(", "))
}

fn render_literal(lit: &Literal, s: &Subst) -> String {
    match lit {
        Literal::Pos(a) | Literal::Builtin(a) => render_atom(a, s),
        Literal::Neg(a) => format!("not {}", render_atom(a, s)),
        Literal::Cmp(op, l, r) => {
            format!("{} {} {}", s.apply(l), op.symbol_str(), s.apply(r))
        }
    }
}

/// One node of a derivation tree returned by [`ProvDag::why`].
#[derive(Clone, Debug)]
pub struct ProofNode {
    pub pred: Symbol,
    pub tuple: Tuple,
    /// Network identity (EDB id or minted derived id). `None` only for a
    /// derived tuple whose mint record is missing (booked but never
    /// propagated — does not happen in quiesced runs).
    pub id: Option<TupleId>,
    /// Deriving rule; `None` marks an EDB leaf.
    pub rule_id: Option<usize>,
    /// The node that owns (minted) or generated this tuple.
    pub owner: Option<NodeId>,
    /// When the tuple became available network-wide: EDB generation time,
    /// or the owner's post-holddown mint time.
    pub finish_at: SimTime,
    /// When the chosen derivation delta landed at the owner.
    pub booked_at: Option<SimTime>,
    pub premises: Vec<ProofEdge>,
}

/// One premise edge of a derivation.
#[derive(Clone, Debug)]
pub struct ProofEdge {
    /// Body literal index this premise satisfied.
    pub lit_idx: u16,
    pub input_id: TupleId,
    /// This premise's update triggered the probe that emitted the delta.
    pub triggering: bool,
    /// Sim time from the premise finishing to the delta booking at the
    /// owner — storage, join, and result routing combined.
    pub latency: SimTime,
    /// Routed messages causally charged to the premise tuple.
    pub hops: Vec<HopInfo>,
    pub premise: ProofNode,
}

/// One step of the latency-critical chain (leaf first).
#[derive(Clone, Debug)]
pub struct CriticalStep {
    pub pred: Symbol,
    pub tuple: Tuple,
    pub id: Option<TupleId>,
    pub rule_id: Option<usize>,
    pub finish_at: SimTime,
    /// Latency from the critical premise finishing to this step's delta
    /// booking (0 at the leaf).
    pub wait: SimTime,
}

/// Extract the chain of premises that bounded the root's end-to-end
/// latency: at each node, follow the premise that finished last.
pub fn critical_path(proof: &ProofNode) -> Vec<CriticalStep> {
    let mut steps = Vec::new();
    let mut cur = proof;
    loop {
        let mut step = CriticalStep {
            pred: cur.pred,
            tuple: cur.tuple.clone(),
            id: cur.id,
            rule_id: cur.rule_id,
            finish_at: cur.finish_at,
            wait: 0,
        };
        match cur
            .premises
            .iter()
            .max_by_key(|e| (e.premise.finish_at, e.input_id))
        {
            Some(e) => {
                step.wait = e.latency;
                steps.push(step);
                cur = &e.premise;
            }
            None => {
                steps.push(step);
                break;
            }
        }
    }
    steps.reverse();
    steps
}

/// Outcome of [`ProvDag::why_not`].
#[derive(Clone, Debug)]
pub enum WhyNot {
    /// The atom *is* live — use [`ProvDag::why`] instead.
    Present,
    /// No rule derives this predicate (it is EDB-only).
    NoRule,
    /// Rules exist but none's head unifies with the tuple.
    HeadMismatch,
    /// Every head-unifying rule fails; one report per rule.
    Failed(Vec<FailedRule>),
    /// A rule's body is fully satisfied by live atoms, yet the tuple is
    /// absent: the derivation delta was lost (owner dead, message dropped
    /// past ARQ, or retracted by liveness) rather than logically blocked.
    Derivable { rule_id: usize },
}

/// The first failing subgoal of one candidate rule.
#[derive(Clone, Debug)]
pub struct FailedRule {
    pub rule_id: usize,
    /// Original body index of the failing literal.
    pub lit_idx: usize,
    /// The literal rendered under the failing partial binding.
    pub literal: String,
    /// Failure is a negation blocked by a live atom.
    pub negated: bool,
    /// A previously-live premise that would have matched was retracted.
    pub retracted: bool,
    /// Partial variable binding at the failure point.
    pub witness: Vec<(Symbol, Term)>,
}

/// Render a derivation tree as an indented text tree with per-edge hop
/// counts and latency attribution.
pub fn render_text(proof: &ProofNode) -> String {
    let mut out = String::new();
    render_node(proof, "", "", &mut out);
    out
}

fn describe(node: &ProofNode) -> String {
    let id = node
        .id
        .map(|i| format!("  [{i}]"))
        .unwrap_or_else(|| "  [unminted]".to_string());
    let src = match (node.rule_id, node.owner) {
        (None, Some(n)) => format!("edb @ {n}, t={}", node.finish_at),
        (Some(r), Some(n)) => format!("rule {r} @ {n}, minted t={}", node.finish_at),
        (Some(r), None) => format!("rule {r}, booked t={}", node.finish_at),
        (None, None) => String::new(),
    };
    format!("{}{}{id}  {src}", node.pred, node.tuple)
}

fn render_node(node: &ProofNode, line_prefix: &str, child_prefix: &str, out: &mut String) {
    let _ = writeln!(out, "{line_prefix}{}", describe(node));
    let n = node.premises.len();
    for (i, edge) in node.premises.iter().enumerate() {
        let last = i + 1 == n;
        let (branch, next) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        let delivered = edge
            .hops
            .iter()
            .filter(|h| h.delivered_at.is_some())
            .count();
        let hop_note = if edge.hops.is_empty() {
            "local".to_string()
        } else if delivered > 0 {
            format!("{} hops ({} delivered)", edge.hops.len(), delivered)
        } else {
            format!("{} hops", edge.hops.len())
        };
        let trig = if edge.triggering { ", trigger" } else { "" };
        let _ = writeln!(
            out,
            "{child_prefix}{branch}(lit {}{trig}, {hop_note}, +{} sim-ms)",
            edge.lit_idx, edge.latency
        );
        let cont = format!("{child_prefix}{next}");
        render_node(&edge.premise, &cont, &cont, out);
    }
}

/// Render a derivation tree as a GraphViz DOT digraph (edges point from
/// premises up to the tuples they derive).
pub fn render_dot(proof: &ProofNode) -> String {
    let mut out = String::from(
        "digraph provenance {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeSet<String> = BTreeSet::new();
    collect_dot(proof, &mut nodes, &mut edges);
    for n in &nodes {
        out.push_str(n);
    }
    for e in &edges {
        out.push_str(e);
    }
    out.push_str("}\n");
    out
}

fn dot_key(node: &ProofNode) -> String {
    match node.id {
        Some(id) => id.to_string(),
        None => format!("{}{}", node.pred, node.tuple),
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn collect_dot(node: &ProofNode, nodes: &mut BTreeSet<String>, edges: &mut BTreeSet<String>) {
    let key = dot_key(node);
    let kind = match node.rule_id {
        None => "edb".to_string(),
        Some(r) => format!("rule {r}"),
    };
    nodes.insert(format!(
        "  \"{}\" [label=\"{}\\n{} t={}\"];\n",
        dot_escape(&key),
        dot_escape(&format!("{}{}", node.pred, node.tuple)),
        kind,
        node.finish_at
    ));
    for edge in &node.premises {
        let mut label = format!("lit {} / +{}ms", edge.lit_idx, edge.latency);
        if !edge.hops.is_empty() {
            let _ = write!(label, " / {} hops", edge.hops.len());
        }
        if edge.hops.iter().any(|h| h.lost) {
            label.push_str(" / lossy");
        }
        edges.insert(format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            dot_escape(&dot_key(&edge.premise)),
            dot_escape(&key),
            dot_escape(&label)
        ));
        collect_dot(&edge.premise, nodes, edges);
    }
}

/// Render a [`WhyNot`] verdict as human-readable text.
pub fn render_why_not(pred: Symbol, tuple: &Tuple, wn: &WhyNot) -> String {
    let head = format!("{pred}{tuple}");
    match wn {
        WhyNot::Present => format!("{head} IS derived — see `why`.\n"),
        WhyNot::NoRule => format!(
            "{head} is not derivable: no rule has head predicate `{pred}` \
             (EDB-only predicate, and no matching base fact is live).\n"
        ),
        WhyNot::HeadMismatch => format!(
            "{head} is not derivable: rules for `{pred}` exist, but no rule \
             head unifies with this tuple.\n"
        ),
        WhyNot::Derivable { rule_id } => format!(
            "{head} is absent but rule {rule_id}'s body is fully satisfied \
             by live facts: the derivation delta was lost in the network \
             (dead owner, drops past ARQ, or liveness retraction), not \
             blocked by the logic.\n"
        ),
        WhyNot::Failed(attempts) => {
            let mut out = format!("{head} is not derivable:\n");
            for f in attempts {
                let reason = if f.negated {
                    "blocked: a live fact matches the negated subgoal"
                } else if f.retracted {
                    "no live match (a previously live match was retracted)"
                } else {
                    "no live match"
                };
                let _ = writeln!(
                    out,
                    "  rule {}: first failing subgoal `{}` (body position {}) — {}",
                    f.rule_id, f.literal, f.lit_idx, reason
                );
                if !f.witness.is_empty() {
                    let binds: Vec<String> =
                        f.witness.iter().map(|(v, t)| format!("{v}={t}")).collect();
                    let _ = writeln!(out, "    with {}", binds.join(", "));
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parse_program;

    fn id(node: u32, ts: SimTime, seq: u32) -> TupleId {
        TupleId {
            node: NodeId(node),
            ts,
            seq,
        }
    }

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Term::Int(v)).collect::<Vec<_>>())
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn edb(pred: &str, vals: &[i64], fid: TupleId) -> ProvRecord {
        ProvRecord::Edb {
            node: fid.node,
            pred: sym(pred),
            tuple: tup(vals),
            id: fid,
            kind: UpdateKind::Insert,
            tau: fid.ts,
        }
    }

    /// r1(1,7) @ n0 and r2(2,7) @ n1 join into q(1,2) owned by n2.
    fn join_records() -> Vec<ProvRecord> {
        let a = id(0, 10, 0);
        let b = id(1, 20, 0);
        let q = id(2, 900, 0);
        vec![
            edb("r1", &[1, 7], a),
            edb("r2", &[2, 7], b),
            ProvRecord::Hop {
                from: NodeId(0),
                to: NodeId(3),
                dest: NodeId(4),
                kind: "store",
                origin: a,
                at: 15,
            },
            ProvRecord::Deriv {
                owner: NodeId(2),
                pred: sym("q"),
                tuple: tup(&[1, 2]),
                key: DerivationKey::new(0, vec![(0, a), (1, b)]),
                sign: 1,
                tau: 20,
                origin: b,
                at: 700,
            },
            ProvRecord::Mint {
                owner: NodeId(2),
                pred: sym("q"),
                tuple: tup(&[1, 2]),
                id: q,
                kind: UpdateKind::Insert,
                at: 900,
            },
        ]
    }

    #[test]
    fn why_builds_the_join_tree_with_latency() {
        let dag = ProvDag::build(&join_records());
        let proof = dag.why(sym("q"), &tup(&[1, 2])).expect("q(1,2) is live");
        assert_eq!(proof.rule_id, Some(0));
        assert_eq!(proof.id, Some(id(2, 900, 0)));
        assert_eq!(proof.finish_at, 900);
        assert_eq!(proof.premises.len(), 2);
        // Premise r1(1,7): finished at t=10, booked at t=700 → 690ms.
        let e0 = &proof.premises[0];
        assert_eq!(e0.premise.pred, sym("r1"));
        assert_eq!(e0.latency, 690);
        assert_eq!(e0.hops.len(), 1);
        assert!(!e0.triggering);
        // Premise r2(2,7) was the triggering update.
        let e1 = &proof.premises[1];
        assert!(e1.triggering);
        assert!(e1.premise.premises.is_empty(), "EDB leaf");
        // Renders mention both leaves.
        let text = render_text(&proof);
        assert!(text.contains("r1(1, 7)"), "tree text:\n{text}");
        assert!(text.contains("trigger"), "tree text:\n{text}");
        let dot = render_dot(&proof);
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("n2@900#0"), "dot:\n{dot}");
    }

    #[test]
    fn critical_path_follows_the_slowest_premise() {
        let dag = ProvDag::build(&join_records());
        let proof = dag.why(sym("q"), &tup(&[1, 2])).unwrap();
        let path = critical_path(&proof);
        assert_eq!(path.len(), 2);
        // r2 finished last (t=20) → it bounds the latency.
        assert_eq!(path[0].pred, sym("r2"));
        assert_eq!(path[0].wait, 0);
        assert_eq!(path[1].pred, sym("q"));
        assert_eq!(path[1].wait, 680);
    }

    #[test]
    fn clamped_counts_retract_exactly_once() {
        let mut recs = join_records();
        let key = DerivationKey::new(0, vec![(0, id(0, 10, 0)), (1, id(1, 20, 0))]);
        // Refresh re-announces the same derivation: clamp keeps count at 1.
        recs.push(ProvRecord::Deriv {
            owner: NodeId(2),
            pred: sym("q"),
            tuple: tup(&[1, 2]),
            key: key.clone(),
            sign: 1,
            tau: 20,
            origin: id(1, 20, 0),
            at: 1200,
        });
        let dag = ProvDag::build(&recs);
        assert!(dag.atom_live(sym("q"), &tup(&[1, 2])));
        // One matching delete kills it despite the duplicate insert.
        recs.push(ProvRecord::Deriv {
            owner: NodeId(2),
            pred: sym("q"),
            tuple: tup(&[1, 2]),
            key,
            sign: -1,
            tau: 30,
            origin: id(1, 30, 1),
            at: 1400,
        });
        let dag = ProvDag::build(&recs);
        assert!(!dag.atom_live(sym("q"), &tup(&[1, 2])));
        assert!(dag.why(sym("q"), &tup(&[1, 2])).is_none());
    }

    #[test]
    fn why_not_reports_first_missing_premise_and_retraction() {
        let prog = parse_program(
            r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#,
        )
        .unwrap();
        let reg = BuiltinRegistry::standard();
        // Only r1(1,7) exists: q(1,2) fails at the r2 subgoal.
        let dag = ProvDag::build(&[edb("r1", &[1, 7], id(0, 10, 0))]);
        match dag.why_not(&prog, &reg, sym("q"), &tup(&[1, 2])) {
            WhyNot::Failed(attempts) => {
                assert_eq!(attempts.len(), 1);
                let f = &attempts[0];
                assert_eq!(f.lit_idx, 1, "fails at r2, original body position 1");
                assert!(f.literal.contains("r2"), "literal: {}", f.literal);
                assert!(!f.retracted);
                assert!(f
                    .witness
                    .iter()
                    .any(|(v, t)| v.as_str() == "T" && *t == Term::Int(7)));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // With r2(2,7) inserted then deleted, the failure is a retraction.
        let mut recs = vec![
            edb("r1", &[1, 7], id(0, 10, 0)),
            edb("r2", &[2, 7], id(1, 20, 0)),
        ];
        recs.push(ProvRecord::Edb {
            node: NodeId(1),
            pred: sym("r2"),
            tuple: tup(&[2, 7]),
            id: id(1, 20, 0),
            kind: UpdateKind::Delete,
            tau: 50,
        });
        let dag = ProvDag::build(&recs);
        match dag.why_not(&prog, &reg, sym("q"), &tup(&[1, 2])) {
            WhyNot::Failed(attempts) => {
                assert!(attempts[0].retracted, "r2(2,7) was retracted");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let rendered = render_why_not(
            sym("q"),
            &tup(&[1, 2]),
            &dag.why_not(&prog, &reg, sym("q"), &tup(&[1, 2])),
        );
        assert!(rendered.contains("retracted"), "{rendered}");
    }

    #[test]
    fn why_not_detects_lost_delta_as_derivable() {
        let prog = parse_program(
            r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#,
        )
        .unwrap();
        let reg = BuiltinRegistry::standard();
        // Both premises live, but no Deriv/Mint ever reached the owner.
        let dag = ProvDag::build(&[
            edb("r1", &[1, 7], id(0, 10, 0)),
            edb("r2", &[2, 7], id(1, 20, 0)),
        ]);
        match dag.why_not(&prog, &reg, sym("q"), &tup(&[1, 2])) {
            WhyNot::Derivable { rule_id } => assert_eq!(rule_id, 0),
            other => panic!("expected Derivable, got {other:?}"),
        }
        // A tuple no head can produce under semantic matching… q(X,Y) has
        // variable head args, so instead check the EDB-only predicate path.
        match dag.why_not(&prog, &reg, sym("r1"), &tup(&[9, 9])) {
            WhyNot::NoRule => {}
            other => panic!("expected NoRule, got {other:?}"),
        }
    }

    #[test]
    fn recursive_records_stay_well_founded() {
        // path(1,2) derived from edge(1,2); a cyclic second key
        // path(1,2) ← path(1,2) (self-support) must not make it live on
        // its own, nor break proof construction when both exist.
        let e = id(0, 10, 0);
        let p = id(2, 500, 0);
        let recs = vec![
            edb("edge", &[1, 2], e),
            ProvRecord::Deriv {
                owner: NodeId(2),
                pred: sym("path"),
                tuple: tup(&[1, 2]),
                key: DerivationKey::new(0, vec![(0, e)]),
                sign: 1,
                tau: 10,
                origin: e,
                at: 400,
            },
            ProvRecord::Mint {
                owner: NodeId(2),
                pred: sym("path"),
                tuple: tup(&[1, 2]),
                id: p,
                kind: UpdateKind::Insert,
                at: 500,
            },
            // Degenerate self-supporting key (as a cyclic program could
            // produce after re-derivation).
            ProvRecord::Deriv {
                owner: NodeId(2),
                pred: sym("path"),
                tuple: tup(&[1, 2]),
                key: DerivationKey::new(1, vec![(0, p)]),
                sign: 1,
                tau: 10,
                origin: p,
                at: 600,
            },
        ];
        let dag = ProvDag::build(&recs);
        let proof = dag.why(sym("path"), &tup(&[1, 2])).expect("live");
        // The proof must use the well-founded key (rule 0 via the edge).
        assert_eq!(proof.rule_id, Some(0));
        assert_eq!(proof.premises.len(), 1);
        assert_eq!(proof.premises[0].premise.pred, sym("edge"));
    }
}
