//! Relations and databases.
//!
//! A [`Relation`] is a set of ground tuples with per-tuple metadata
//! (generation timestamp, optional deletion timestamp — Definition 2 / the
//! tombstone discipline of Sec. IV-B). Relations maintain lazy hash indexes
//! keyed by bound-column subsets so body evaluation avoids full scans.

use parking_lot::RwLock;
use sensorlog_logic::{Symbol, Term, Tuple};
use std::collections::{BTreeMap, HashMap};

/// Per-tuple metadata.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct TupleMeta {
    /// Generation timestamp (simulated ms; 0 for batch evaluation).
    pub gen_ts: u64,
    /// Tombstone: local timestamp of deletion, if deleted (Sec. IV-B keeps
    /// deleted replicas around with their deletion-timestamp recorded).
    pub del_ts: Option<u64>,
}

impl TupleMeta {
    pub fn at(gen_ts: u64) -> TupleMeta {
        TupleMeta {
            gen_ts,
            del_ts: None,
        }
    }

    /// Visibility under the timestamp discipline of Theorem 3: a probe with
    /// update-timestamp `tau` over a window of `window` ms sees tuples with
    /// `gen_ts ≤ tau`, `gen_ts > tau − window`, and no deletion-timestamp
    /// `< tau`.
    pub fn visible_at(&self, tau: u64, window: Option<u64>) -> bool {
        if self.gen_ts > tau {
            return false;
        }
        if let Some(w) = window {
            if self.gen_ts + w <= tau {
                return false;
            }
        }
        match self.del_ts {
            Some(d) => d >= tau,
            None => true,
        }
    }
}

type Index = HashMap<Vec<Term>, Vec<Tuple>>;

/// A set of ground tuples with metadata and lazy column indexes.
///
/// Tuples are kept in a `BTreeMap` so iteration order is the canonical tuple
/// order, identical across processes. This matters in the distributed
/// runtime: iteration order here feeds join-probe solution order and hence
/// message emission order; with a hash map the order would vary with the
/// per-process hasher seed and replays would diverge under message loss.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: BTreeMap<Tuple, TupleMeta>,
    /// Lazily-built indexes: column positions → (key values → tuples).
    /// Kept consistent on insert/remove. `RwLock` because index building
    /// happens during `&self` lookups.
    indexes: RwLock<HashMap<Vec<usize>, Index>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are a cache: don't copy them.
        Relation {
            tuples: self.tuples.clone(),
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

impl Relation {
    pub fn new() -> Relation {
        Relation::default()
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    pub fn meta(&self, t: &Tuple) -> Option<&TupleMeta> {
        self.tuples.get(t)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &TupleMeta)> {
        self.tuples.iter()
    }

    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.keys()
    }

    /// Insert a tuple; returns true if it was new. Re-inserting an existing
    /// tuple keeps the *earlier* generation timestamp ("later duplicates …
    /// are not considered as generations", Sec. III-B) but clears any
    /// tombstone.
    pub fn insert(&mut self, t: Tuple, meta: TupleMeta) -> bool {
        match self.tuples.entry(t.clone()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().del_ts = None;
                false
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(meta);
                let mut idx = self.indexes.write();
                for (cols, map) in idx.iter_mut() {
                    let key = key_of(&t, cols);
                    map.entry(key).or_default().push(t.clone());
                }
                true
            }
        }
    }

    /// Physically remove a tuple; returns true if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.tuples.remove(t).is_some() {
            let mut idx = self.indexes.write();
            for (cols, map) in idx.iter_mut() {
                let key = key_of(t, cols);
                if let Some(v) = map.get_mut(&key) {
                    v.retain(|x| x != t);
                    if v.is_empty() {
                        map.remove(&key);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Record a tombstone without removing the tuple (distributed replicas:
    /// "we do not remove the replicated copies … but only record its
    /// deletion-timestamp", Sec. IV-B).
    pub fn mark_deleted(&mut self, t: &Tuple, del_ts: u64) -> bool {
        match self.tuples.get_mut(t) {
            Some(m) => {
                m.del_ts = Some(m.del_ts.map_or(del_ts, |d| d.min(del_ts)));
                true
            }
            None => false,
        }
    }

    /// Tuples whose argument values at `cols` equal `key`, via the lazy
    /// index. `cols` must be sorted and non-empty.
    pub fn select(&self, cols: &[usize], key: &[Term], out: &mut Vec<Tuple>) {
        debug_assert!(!cols.is_empty());
        {
            let idx = self.indexes.read();
            if let Some(map) = idx.get(cols) {
                if let Some(v) = map.get(key) {
                    out.extend(v.iter().cloned());
                }
                return;
            }
        }
        // Build the index.
        let mut map: Index = HashMap::new();
        for t in self.tuples.keys() {
            if cols.iter().all(|&c| c < t.arity()) {
                map.entry(key_of(t, cols)).or_default().push(t.clone());
            }
        }
        if let Some(v) = map.get(key) {
            out.extend(v.iter().cloned());
        }
        self.indexes.write().insert(cols.to_vec(), map);
    }

    /// Drop expired tuples: `gen_ts + window ≤ now`. Returns the expired
    /// tuples ("independently expiring a tuple after sufficient time",
    /// Sec. II-B).
    pub fn expire(&mut self, window: u64, now: u64) -> Vec<Tuple> {
        let expired: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|(_, m)| m.gen_ts + window <= now)
            .map(|(t, _)| t.clone())
            .collect();
        for t in &expired {
            self.remove(t);
        }
        expired
    }
}

fn key_of(t: &Tuple, cols: &[usize]) -> Vec<Term> {
    cols.iter().map(|&c| t.get(c).clone()).collect()
}

/// A named collection of relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    rels: BTreeMap<Symbol, Relation>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    pub fn relation(&self, p: Symbol) -> Option<&Relation> {
        self.rels.get(&p)
    }

    pub fn relation_mut(&mut self, p: Symbol) -> &mut Relation {
        self.rels.entry(p).or_default()
    }

    pub fn preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    pub fn insert(&mut self, p: Symbol, t: Tuple) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::default())
    }

    pub fn insert_at(&mut self, p: Symbol, t: Tuple, gen_ts: u64) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::at(gen_ts))
    }

    pub fn remove(&mut self, p: Symbol, t: &Tuple) -> bool {
        self.relation_mut(p).remove(t)
    }

    pub fn contains(&self, p: Symbol, t: &Tuple) -> bool {
        self.rels.get(&p).is_some_and(|r| r.contains(t))
    }

    pub fn len_of(&self, p: Symbol) -> usize {
        self.rels.get(&p).map_or(0, Relation::len)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Sorted tuples of a relation — deterministic views for tests/output.
    pub fn sorted(&self, p: Symbol) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .rels
            .get(&p)
            .map(|r| r.tuples().cloned().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Load facts from a text block of `pred(args).` facts (multiple per
    /// line fine; blank lines and `%` comments allowed).
    pub fn load_facts(&mut self, src: &str) -> Result<usize, sensorlog_logic::ParseError> {
        let facts = sensorlog_logic::parse_facts(src)?;
        let n = facts.len();
        for (p, args) in facts {
            self.insert(p, Tuple::new(args));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    fn tup(v: Vec<i64>) -> Tuple {
        Tuple::new(v.into_iter().map(Term::Int).collect())
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new();
        assert!(r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(!r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(r.contains(&tup(vec![1, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&tup(vec![1, 2])));
        assert!(!r.remove(&tup(vec![1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_insert_keeps_earlier_timestamp() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert_eq!(r.meta(&tup(vec![1])).unwrap().gen_ts, 10);
    }

    #[test]
    fn reinsert_clears_tombstone() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.mark_deleted(&tup(vec![1]), 15);
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_some());
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_none());
    }

    #[test]
    fn index_select_and_consistency() {
        let mut r = Relation::new();
        for i in 0..10 {
            r.insert(tup(vec![i % 3, i]), TupleMeta::default());
        }
        let mut out = Vec::new();
        r.select(&[0], &[Term::Int(1)], &mut out);
        let expect = (0..10).filter(|i| i % 3 == 1).count();
        assert_eq!(out.len(), expect);
        // Mutations keep the built index consistent.
        r.insert(tup(vec![1, 100]), TupleMeta::default());
        r.remove(&tup(vec![1, 1]));
        out.clear();
        r.select(&[0], &[Term::Int(1)], &mut out);
        assert_eq!(out.len(), expect); // +1 insert, -1 remove
        for t in &out {
            assert_eq!(t.get(0), &Term::Int(1));
        }
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2, 3]), TupleMeta::default());
        r.insert(tup(vec![1, 2, 4]), TupleMeta::default());
        r.insert(tup(vec![1, 5, 3]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0, 1], &[Term::Int(1), Term::Int(2)], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn visibility_window() {
        let m = TupleMeta::at(100);
        assert!(m.visible_at(100, None));
        assert!(m.visible_at(150, Some(100)));
        assert!(!m.visible_at(200, Some(100))); // 100 + 100 <= 200
        assert!(!m.visible_at(50, None)); // not yet generated
        let mut m = TupleMeta::at(100);
        m.del_ts = Some(120);
        assert!(m.visible_at(110, None));
        assert!(m.visible_at(120, None)); // deleted *at* tau still visible
        assert!(!m.visible_at(121, None));
    }

    #[test]
    fn expiry() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(0));
        r.insert(tup(vec![2]), TupleMeta::at(50));
        let gone = r.expire(100, 100);
        assert_eq!(gone, vec![tup(vec![1])]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn database_load_facts() {
        let mut db = Database::new();
        let n = db
            .load_facts(
                r#"
                % edges
                e(1, 2).
                e(2, 3).
                "#,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.len_of(sym("e")), 2);
        assert!(db.contains(sym("e"), &tup(vec![1, 2])));
        let sorted = db.sorted(sym("e"));
        assert!(sorted[0] < sorted[1]);
    }

    #[test]
    fn clone_drops_index_cache_but_keeps_tuples() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0], &[Term::Int(1)], &mut out);
        let c = r.clone();
        assert_eq!(c.len(), 1);
        let mut out2 = Vec::new();
        c.select(&[0], &[Term::Int(1)], &mut out2);
        assert_eq!(out2.len(), 1);
    }
}
