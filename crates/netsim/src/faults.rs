//! Deterministic fault-injection plane.
//!
//! A [`FaultSchedule`] is a seeded, sorted script of [`FaultEvent`]s —
//! node crashes and restarts, link partitions, per-link loss overrides,
//! and duplication/reordering windows — applied by the simulator at exact
//! event ticks under every scheduler backend (Heap/Wheel/Shard). Each
//! applied fault is journaled as a [`TraceEvent`](crate::TraceEvent), so
//! a chaotic run is exactly as replayable as a clean one: same seed, same
//! schedule, byte-identical journal.
//!
//! [`LinkState`] is the mutable network condition the schedule drives:
//! which links are down, which carry a loss override, and whether a
//! duplication or reordering window is open. The simulator owns one and
//! the send path consults it read-only; faults mutate it only at drain /
//! window boundaries, so shard workers never observe a torn update.

use crate::sim::SimTime;
use crate::topology::{NodeId, Topology};
use std::collections::HashMap;
use std::collections::HashSet;

/// One kind of injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash a node: it stops processing events and loses all volatile
    /// state. Idempotent on an already-dead node.
    Crash(NodeId),
    /// Restart a crashed node with a fresh application instance (full
    /// volatile state loss; durable state is the application's problem).
    /// No-op on a live node.
    Restart(NodeId),
    /// Take the bidirectional link `a<->b` down.
    LinkDown(NodeId, NodeId),
    /// Bring the bidirectional link `a<->b` back up.
    LinkUp(NodeId, NodeId),
    /// Override the loss probability of `a<->b` to `ppm / 1e6`
    /// (both directions). `ppm == u32::MAX` clears the override.
    SetLinkLoss(NodeId, NodeId, u32),
    /// Open a duplication window: until `until`, each delivered message
    /// is duplicated with probability `ppm / 1e6`.
    DupWindow { until: SimTime, ppm: u32 },
    /// Open a reordering window: until `until`, each delivery gets extra
    /// uniform jitter in `[0, jitter)`, letting later sends overtake
    /// earlier ones.
    ReorderWindow { until: SimTime, jitter: SimTime },
}

/// A fault and the simulated time at which it strikes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// A seeded, scriptable fault schedule. Build one with the fluent
/// methods or generate a random-but-reproducible one with
/// [`FaultSchedule::random`]; attach it via
/// `Simulator::set_fault_schedule` / `Deployment::set_fault_schedule`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    pub fn crash(mut self, at: SimTime, node: NodeId) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Crash(node),
        });
        self
    }

    pub fn restart(mut self, at: SimTime, node: NodeId) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::Restart(node),
        });
        self
    }

    pub fn link_down(mut self, at: SimTime, a: NodeId, b: NodeId) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkDown(a, b),
        });
        self
    }

    pub fn link_up(mut self, at: SimTime, a: NodeId, b: NodeId) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkUp(a, b),
        });
        self
    }

    pub fn set_link_loss(mut self, at: SimTime, a: NodeId, b: NodeId, ppm: u32) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::SetLinkLoss(a, b, ppm),
        });
        self
    }

    pub fn dup_window(mut self, at: SimTime, until: SimTime, ppm: u32) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DupWindow { until, ppm },
        });
        self
    }

    pub fn reorder_window(mut self, at: SimTime, until: SimTime, jitter: SimTime) -> FaultSchedule {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ReorderWindow { until, jitter },
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Time of the last scheduled fault — the instant the network has
    /// "healed" (no further injected disturbance). 0 for an empty
    /// schedule.
    pub fn heal_time(&self) -> SimTime {
        self.events.iter().map(|e| e.at).max().unwrap_or(0)
    }

    /// True when every crashed node is restarted again by the end of the
    /// schedule and every downed link is brought back up — i.e. the
    /// schedule heals completely.
    pub fn heals(&self) -> bool {
        let mut down_nodes: HashSet<NodeId> = HashSet::new();
        let mut down_links: HashSet<(u32, u32)> = HashSet::new();
        for ev in self.sorted().events {
            match ev.kind {
                FaultKind::Crash(n) => {
                    down_nodes.insert(n);
                }
                FaultKind::Restart(n) => {
                    down_nodes.remove(&n);
                }
                FaultKind::LinkDown(a, b) => {
                    down_links.insert(link_key(a, b));
                }
                FaultKind::LinkUp(a, b) => {
                    down_links.remove(&link_key(a, b));
                }
                _ => {}
            }
        }
        down_nodes.is_empty() && down_links.is_empty()
    }

    /// Stable sort by time (schedule order breaks ties, so a crash
    /// scripted before a restart at the same tick applies first).
    pub fn sorted(&self) -> FaultSchedule {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// A random but fully seed-determined healing schedule over `topo`:
    /// `crashes` crash→restart pairs and `link_flaps` down→up pairs on
    /// real radio links, all within `[start, heal_by)` with every
    /// recovery scheduled before `heal_by`. Never crashes node 0 (the
    /// usual sink/centroid anchor) and never crashes two nodes at
    /// overlapping times, so the surviving network keeps a meaningful
    /// workload.
    pub fn random(seed: u64, topo: &Topology, opts: RandomFaults) -> FaultSchedule {
        let mut rng = SplitMix(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut s = FaultSchedule::new();
        let span = opts.heal_by.saturating_sub(opts.start).max(2);
        let n = topo.len() as u64;
        let mut crashed: HashSet<NodeId> = HashSet::new();
        for _ in 0..opts.crashes {
            // Pick a victim other than node 0, not already scheduled.
            let mut victim = NodeId(0);
            for _ in 0..32 {
                let v = NodeId((1 + rng.next(n.saturating_sub(1).max(1))) as u32);
                if v.0 < n as u32 && !crashed.contains(&v) {
                    victim = v;
                    break;
                }
            }
            if victim == NodeId(0) {
                continue;
            }
            crashed.insert(victim);
            let down_at = opts.start + rng.next(span / 2).max(1);
            let up_at = down_at + 1 + rng.next((opts.heal_by.saturating_sub(down_at)).max(2) - 1);
            s = s
                .crash(down_at, victim)
                .restart(up_at.min(opts.heal_by), victim);
        }
        for _ in 0..opts.link_flaps {
            let a = NodeId(rng.next(n) as u32);
            let nbrs = topo.neighbors(a);
            if nbrs.is_empty() {
                continue;
            }
            let b = nbrs[rng.next(nbrs.len() as u64) as usize];
            let down_at = opts.start + rng.next(span / 2).max(1);
            let up_at = down_at + 1 + rng.next((opts.heal_by.saturating_sub(down_at)).max(2) - 1);
            s = s
                .link_down(down_at, a, b)
                .link_up(up_at.min(opts.heal_by), a, b);
        }
        s.sorted()
    }
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Clone, Copy, Debug)]
pub struct RandomFaults {
    /// Number of crash→restart pairs.
    pub crashes: usize,
    /// Number of link down→up pairs (on actual radio links).
    pub link_flaps: usize,
    /// Earliest fault time.
    pub start: SimTime,
    /// All recoveries land at or before this time.
    pub heal_by: SimTime,
}

impl Default for RandomFaults {
    fn default() -> RandomFaults {
        RandomFaults {
            crashes: 1,
            link_flaps: 1,
            start: 1_000,
            heal_by: 30_000,
        }
    }
}

fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Current link-level network condition, driven by the fault schedule
/// and consulted (read-only) by the send path. Inert by default: an
/// untouched `LinkState` adds zero RNG draws and zero behavior change.
#[derive(Clone, Debug, Default)]
pub struct LinkState {
    down: HashSet<(u32, u32)>,
    loss_ppm: HashMap<(u32, u32), u32>,
    dup_until: SimTime,
    dup_ppm: u32,
    reorder_until: SimTime,
    reorder_jitter: SimTime,
}

impl LinkState {
    pub fn set_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        if down {
            self.down.insert(link_key(a, b));
        } else {
            self.down.remove(&link_key(a, b));
        }
    }

    pub fn is_down(&self, a: NodeId, b: NodeId) -> bool {
        !self.down.is_empty() && self.down.contains(&link_key(a, b))
    }

    pub fn set_loss(&mut self, a: NodeId, b: NodeId, ppm: u32) {
        if ppm == u32::MAX {
            self.loss_ppm.remove(&link_key(a, b));
        } else {
            self.loss_ppm.insert(link_key(a, b), ppm);
        }
    }

    pub fn loss_override(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if self.loss_ppm.is_empty() {
            return None;
        }
        self.loss_ppm
            .get(&link_key(a, b))
            .map(|&ppm| ppm as f64 / 1_000_000.0)
    }

    pub fn open_dup_window(&mut self, until: SimTime, ppm: u32) {
        self.dup_until = until;
        self.dup_ppm = ppm;
    }

    /// Duplication probability if a window is open at `now`.
    pub fn dup_prob(&self, now: SimTime) -> Option<f64> {
        (now < self.dup_until && self.dup_ppm > 0).then(|| self.dup_ppm as f64 / 1_000_000.0)
    }

    pub fn open_reorder_window(&mut self, until: SimTime, jitter: SimTime) {
        self.reorder_until = until;
        self.reorder_jitter = jitter;
    }

    /// Extra-jitter bound if a reordering window is open at `now`.
    pub fn reorder_jitter(&self, now: SimTime) -> Option<SimTime> {
        (now < self.reorder_until && self.reorder_jitter > 0).then_some(self.reorder_jitter)
    }

    /// True when the state imposes no condition at all (the fault-free
    /// fast path).
    pub fn is_inert(&self, now: SimTime) -> bool {
        self.down.is_empty()
            && self.loss_ppm.is_empty()
            && self.dup_prob(now).is_none()
            && self.reorder_jitter(now).is_none()
    }
}

/// Tiny splitmix64 for schedule generation only — the simulator's own
/// per-node streams are never touched by fault scripting.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; 0 when `bound == 0`.
    fn next(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_and_reports_heal_time() {
        let s = FaultSchedule::new()
            .restart(500, NodeId(3))
            .crash(100, NodeId(3))
            .link_down(200, NodeId(0), NodeId(1))
            .link_up(400, NodeId(1), NodeId(0));
        let sorted = s.sorted();
        let times: Vec<_> = sorted.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![100, 200, 400, 500]);
        assert_eq!(s.heal_time(), 500);
        assert!(s.heals());
        assert!(!FaultSchedule::new().crash(10, NodeId(1)).heals());
    }

    #[test]
    fn random_schedules_are_deterministic_and_heal() {
        let topo = Topology::square_grid(4);
        let opts = RandomFaults {
            crashes: 2,
            link_flaps: 2,
            start: 1_000,
            heal_by: 20_000,
        };
        let a = FaultSchedule::random(42, &topo, opts);
        let b = FaultSchedule::random(42, &topo, opts);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert!(a.heals(), "random schedules must heal: {a:?}");
        assert!(a.heal_time() <= 20_000);
        let c = FaultSchedule::random(43, &topo, opts);
        assert_ne!(a, c, "different seeds should differ");
        // Node 0 is never crashed.
        for ev in a.events() {
            if let FaultKind::Crash(n) = ev.kind {
                assert_ne!(n, NodeId(0));
            }
        }
        // Link flaps ride real radio links.
        for ev in a.events() {
            if let FaultKind::LinkDown(x, y) = ev.kind {
                assert!(topo.are_neighbors(x, y));
            }
        }
    }

    #[test]
    fn link_state_round_trips() {
        let mut ls = LinkState::default();
        assert!(ls.is_inert(0));
        ls.set_down(NodeId(1), NodeId(2), true);
        assert!(ls.is_down(NodeId(2), NodeId(1)), "links are bidirectional");
        ls.set_down(NodeId(2), NodeId(1), false);
        assert!(!ls.is_down(NodeId(1), NodeId(2)));

        ls.set_loss(NodeId(0), NodeId(1), 250_000);
        let p = ls.loss_override(NodeId(1), NodeId(0)).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
        ls.set_loss(NodeId(0), NodeId(1), u32::MAX);
        assert!(ls.loss_override(NodeId(0), NodeId(1)).is_none());

        ls.open_dup_window(100, 500_000);
        assert!(ls.dup_prob(99).is_some());
        assert!(ls.dup_prob(100).is_none());
        ls.open_reorder_window(50, 7);
        assert_eq!(ls.reorder_jitter(10), Some(7));
        assert_eq!(ls.reorder_jitter(50), None);
        assert!(!ls.is_inert(10));
        assert!(ls.is_inert(100), "expired windows leave the state inert");
    }
}
