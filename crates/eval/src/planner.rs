//! Static probe planning: which index signature each body literal probes.
//!
//! [`order_body`] fixes the literal evaluation order; this module replays
//! that order *statically*, tracking which variables are bound at each
//! step, and derives for every positive literal the set of argument
//! positions that will be ground when the literal is probed — its
//! **bound-position signature**. The signature is what [`Relation::select`]
//! keys its persistent hash indexes on, so planning and probing agree by
//! construction: the dynamic ground-column set computed per substitution is
//! exactly the static bound set whenever the rule is safe (matching a
//! positive atom binds all of its variables; seeds and pins bind theirs).
//!
//! [`program_signatures`] enumerates the signatures a program can probe —
//! the unpinned order of every rule plus each pinned variant the semi-naive
//! and incremental engines actually use — so engines can register them all
//! up front and every probe lands on a maintained index instead of a scan.
//!
//! [`order_body`]: crate::eval_body::order_body
//! [`Relation::select`]: crate::relation::Relation::select

use crate::eval_body::order_body;
use sensorlog_logic::ast::{Literal, Rule};
use sensorlog_logic::boundness;
use sensorlog_logic::unify::Subst;
use sensorlog_logic::Symbol;
use std::collections::{BTreeMap, BTreeSet};

/// Per-literal probe signatures for one evaluation order. `plan[i]` is the
/// sorted bound-column set literal `i` probes with; empty means full scan
/// (or a literal that is never probed: pinned, negated, comparison,
/// builtin).
///
/// Thin wrapper over [`boundness::probe_plan`], the shared analysis also
/// consumed by the safety check and the `sensorlog check` lints.
pub fn plan_probes(
    body: &[Literal],
    order: &[usize],
    pinned: Option<usize>,
    seed: &Subst,
) -> Vec<Vec<usize>> {
    boundness::probe_plan(body, order, pinned, seed)
}

/// Every probe signature the engines can hit for `rules`: for each rule,
/// the unpinned evaluation order plus one pinned variant per relational
/// literal (semi-naive pins positive SCC occurrences; the incremental
/// engine pins positive *and* negated occurrences). Seeds are not modeled —
/// a seeded variable only ever *adds* bound columns, and the resulting
/// larger signature is promoted on use.
pub fn program_signatures<'a, R>(rules: R) -> BTreeMap<Symbol, BTreeSet<Vec<usize>>>
where
    R: IntoIterator<Item = &'a Rule>,
{
    let mut out: BTreeMap<Symbol, BTreeSet<Vec<usize>>> = BTreeMap::new();
    let seed = Subst::new();
    for rule in rules {
        let mut pins: Vec<Option<usize>> = vec![None];
        for (i, lit) in rule.body.iter().enumerate() {
            if matches!(lit, Literal::Pos(_) | Literal::Neg(_)) {
                pins.push(Some(i));
            }
        }
        for pinned in pins {
            let order = order_body(&rule.body, pinned);
            let plan = plan_probes(&rule.body, &order, pinned, &seed);
            for (i, cols) in plan.iter().enumerate() {
                if cols.is_empty() {
                    continue;
                }
                if let Literal::Pos(a) = &rule.body[i] {
                    out.entry(a.pred).or_default().insert(cols.clone());
                }
            }
        }
    }
    out
}

/// Register every signature from [`program_signatures`] on `db`, so probes
/// land on maintained indexes from the first iteration. Registration is
/// policy, not data — it survives [`crate::relation::Relation::clone`].
pub fn register_program_indexes<'a, R>(db: &mut crate::relation::Database, rules: R)
where
    R: IntoIterator<Item = &'a Rule>,
{
    for (pred, sigs) in program_signatures(rules) {
        for cols in sigs {
            db.register_index(pred, &cols);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parser::parse_rule;
    use sensorlog_logic::Term;

    #[test]
    fn join_plan_binds_second_literal() {
        let rule = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let order = order_body(&rule.body, None);
        let plan = plan_probes(&rule.body, &order, None, &Subst::new());
        // First literal scans, second probes on its join column.
        assert_eq!(plan[order[0]], Vec::<usize>::new());
        assert_eq!(plan[order[1]], vec![0]);
    }

    #[test]
    fn pinned_literal_is_not_probed_but_binds() {
        let rule = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let order = order_body(&rule.body, Some(1));
        let plan = plan_probes(&rule.body, &order, Some(1), &Subst::new());
        assert!(plan[1].is_empty(), "pinned literal never probes");
        assert_eq!(plan[0], vec![1], "e(X, Y) probes on Y bound by the pin");
    }

    #[test]
    fn constants_and_assignments_count_as_bound() {
        let rule = parse_rule("q(X) :- Y == 3, p(7, Y, X).").unwrap();
        let order = order_body(&rule.body, None);
        let plan = plan_probes(&rule.body, &order, None, &Subst::new());
        assert_eq!(plan[1], vec![0, 1], "constant col 0 + assigned col 1");
    }

    #[test]
    fn seed_variables_are_bound() {
        let rule = parse_rule("q(X) :- p(S, X).").unwrap();
        let order = order_body(&rule.body, None);
        let mut seed = Subst::new();
        seed.bind(Symbol::intern("S"), Term::Int(4));
        let plan = plan_probes(&rule.body, &order, None, &seed);
        assert_eq!(plan[0], vec![0]);
    }

    #[test]
    fn program_signatures_cover_pinned_variants() {
        let rule = parse_rule("t(X, Y) :- t(X, Z), e(Z, Y).").unwrap();
        let sigs = program_signatures(std::iter::once(&rule));
        let e = sigs.get(&Symbol::intern("e")).unwrap();
        // Unpinned: e probed on Z (col 0). Pinned on e: t probed on Z.
        assert!(e.contains(&vec![0]));
        let t = sigs.get(&Symbol::intern("t")).unwrap();
        assert!(t.contains(&vec![1]), "t probed on Z when e is the delta");
    }
}
