//! Derivation provenance plane — the analysis half.
//!
//! The distributed runtime (`sensorlog_core::prov`) captures four kinds of
//! raw provenance records while a deployment runs. This crate ingests those
//! records (plus, optionally, the netsim journal for per-hop delivery
//! detail) and materializes the global causal DAG keyed by
//! [`sensorlog_core::TupleId`], then answers the three questions the paper's
//! debugging story needs:
//!
//! * [`ProvDag::why`] — the full cross-node derivation tree of a tuple:
//!   which rule fired where, from which premise tuples, carried by which
//!   messages over how many hops, with per-edge simulated latency;
//! * [`ProvDag::why_not`] — why a tuple was *not* derived: per candidate
//!   rule, the first subgoal with no live match (distinguishing
//!   never-present from retracted premises, and negation blocks);
//! * [`critical_path`] — the chain of premises that bounded the tuple's
//!   end-to-end derivation latency.
//!
//! [`Explain`] packages all of this behind one call on a
//! [`sensorlog_core::Deployment`], and [`check_provenance`] turns the DAG
//! into an invariant: every tuple the centralized oracle expects must have
//! a well-founded proof whose leaves are live EDB facts.

pub mod dag;
pub mod explain;
pub mod invariants;

pub use dag::{
    critical_path, render_dot, render_text, render_why_not, CriticalStep, FailedRule, HopInfo,
    ProofEdge, ProofNode, ProvDag, WhyNot,
};
pub use explain::{explain_atom, Explain, Explanation};
pub use invariants::check_provenance;
