//! Head aggregates.
//!
//! Aggregates are expressed "using Prolog's all-solutions predicate"
//! (Sec. IV-C): the aggregate rule's body is evaluated to completion, the
//! solutions are grouped by the non-aggregate head arguments, and the
//! aggregate folds the *distinct* values of the aggregate term per group.

use crate::error::EvalError;
use crate::eval_body::Solution;
use sensorlog_logic::ast::{AggFunc, Rule};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::intern;
use sensorlog_logic::{Term, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Group the body solutions of an aggregate rule and fold each group.
/// Returns the head tuples (group key with the aggregate value spliced in at
/// the aggregate position).
pub fn aggregate_rule(
    rule: &Rule,
    solutions: &[Solution],
    reg: &BuiltinRegistry,
) -> Result<Vec<Tuple>, EvalError> {
    let agg = rule
        .agg
        .as_ref()
        .expect("aggregate_rule requires an aggregate head");
    let mut groups: BTreeMap<Vec<Term>, BTreeSet<Term>> = BTreeMap::new();
    for sol in solutions {
        // Aggregate folds operate on boxed terms (off the fixpoint hot
        // path): resolve the flat solution once per solution.
        let subst = intern::boundary(|| sol.subst.to_subst());
        let key: Vec<Term> = rule
            .head
            .args
            .iter()
            .map(|a| {
                let g = subst.apply(a);
                if g.is_ground() {
                    reg.eval_term(&g).map_err(EvalError::from)
                } else {
                    Err(EvalError::Internal(format!(
                        "group-by argument `{a}` unbound in rule #{}",
                        rule.id
                    )))
                }
            })
            .collect::<Result<_, _>>()?;
        let value = {
            let g = subst.apply(&agg.term);
            if g.is_ground() {
                reg.eval_term(&g)?
            } else {
                return Err(EvalError::Internal(format!(
                    "aggregate term `{}` unbound in rule #{}",
                    agg.term, rule.id
                )));
            }
        };
        groups.entry(key).or_default().insert(value);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, values) in groups {
        let v = fold(agg.func, &values)?;
        let mut args = key;
        args.insert(agg.pos.min(args.len()), v);
        out.push(Tuple::new(args));
    }
    Ok(out)
}

/// Fold distinct values with the aggregate function.
pub fn fold(func: AggFunc, values: &BTreeSet<Term>) -> Result<Term, EvalError> {
    debug_assert!(!values.is_empty(), "aggregate over empty group");
    match func {
        AggFunc::Count => Ok(Term::Int(values.len() as i64)),
        AggFunc::Min => Ok(min_numeric(values)),
        AggFunc::Max => Ok(max_numeric(values)),
        AggFunc::Sum => sum(values),
        AggFunc::Avg => {
            let total = sum(values)?;
            let n = values.len() as f64;
            let t = total
                .as_f64()
                .ok_or_else(|| EvalError::Internal("avg over non-numeric values".into()))?;
            Ok(Term::float(t / n))
        }
    }
}

fn min_numeric(values: &BTreeSet<Term>) -> Term {
    // Numeric comparison where possible (1 < 1.5 < 2), term order otherwise.
    values
        .iter()
        .cloned()
        .min_by(|a, b| match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            _ => a.cmp(b),
        })
        .expect("nonempty")
}

fn max_numeric(values: &BTreeSet<Term>) -> Term {
    values
        .iter()
        .cloned()
        .max_by(|a, b| match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            _ => a.cmp(b),
        })
        .expect("nonempty")
}

fn sum(values: &BTreeSet<Term>) -> Result<Term, EvalError> {
    let all_int = values.iter().all(|v| matches!(v, Term::Int(_)));
    if all_int {
        let mut acc: i64 = 0;
        for v in values {
            if let Term::Int(i) = v {
                acc = acc.checked_add(*i).ok_or(EvalError::LimitExceeded {
                    what: "sum overflow",
                    limit: i64::MAX as usize,
                })?;
            }
        }
        Ok(Term::Int(acc))
    } else {
        let mut acc = 0.0f64;
        for v in values {
            acc += v
                .as_f64()
                .ok_or_else(|| EvalError::Internal(format!("sum over non-numeric value {v}")))?;
        }
        Ok(Term::float(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_body::BodyEval;
    use crate::relation::Database;
    use sensorlog_logic::parser::{parse_fact, parse_rule};
    use sensorlog_logic::FlatSubst;

    fn run(rule_src: &str, facts: &[&str]) -> Vec<Tuple> {
        let rule = parse_rule(rule_src).unwrap();
        let mut db = Database::new();
        for f in facts {
            let (p, args) = parse_fact(f).unwrap();
            db.insert(p, Tuple::new(args));
        }
        let reg = BuiltinRegistry::standard();
        let ev = BodyEval::new(&db, &reg);
        let sols = ev.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        let mut out = aggregate_rule(&rule, &sols, &reg).unwrap();
        out.sort();
        out
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    #[test]
    fn min_per_group() {
        let out = run(
            "short(Y, min<D>) :- path(Y, D).",
            &["path(1, 5)", "path(1, 3)", "path(2, 7)"],
        );
        assert_eq!(out, vec![tup("1, 3"), tup("2, 7")]);
    }

    #[test]
    fn count_distinct() {
        let out = run(
            "deg(X, count<Y>) :- e(X, Y).",
            &["e(1, 2)", "e(1, 3)", "e(1, 3)", "e(2, 9)"],
        );
        assert_eq!(out, vec![tup("1, 2"), tup("2, 1")]);
    }

    #[test]
    fn sum_and_avg() {
        let out = run("total(sum<V>) :- m(V).", &["m(1)", "m(2)", "m(4)"]);
        assert_eq!(out, vec![tup("7")]);
        let out = run("mean(avg<V>) :- m(V).", &["m(1)", "m(2)", "m(3)"]);
        assert_eq!(out, vec![tup("2.0")]);
    }

    #[test]
    fn max_mixed_numeric() {
        let out = run("best(max<V>) :- m(V).", &["m(1)", "m(2.5)", "m(2)"]);
        assert_eq!(out, vec![tup("2.5")]);
    }

    #[test]
    fn agg_in_first_position() {
        let out = run("q(count<Y>, X) :- e(X, Y).", &["e(1, 2)", "e(1, 3)"]);
        assert_eq!(out, vec![tup("2, 1")]);
    }

    #[test]
    fn empty_body_yields_no_groups() {
        let out = run("total(sum<V>) :- m(V).", &[]);
        assert!(out.is_empty());
    }
}
