//! Frontier-width abstract interpretation (tightened Sec. V bounds).
//!
//! The paper's memory-requirements analysis (Sec. V) multiplies the XY
//! stage count `S` by the per-stage derivation bound `Σ`, which is loose by
//! roughly the stage count itself (~100× on grid topologies): a node's
//! *frontier* — the set of tuples a stage can actually add — is governed by
//! the anchoring base tuples, not by how many stages the computation runs.
//! This module recovers that frontier width statically, per predicate:
//!
//! * **First-entry guards.** A recursive XY rule of the shape
//!   `h(…,V…, D+1) :- …, not hp(V…, D+1)` where `hp` is a *cumulative entry
//!   marker* (derivable at every later stage from any earlier `h` tuple
//!   carrying the same `V…` columns, proved by a stage comparison such as
//!   `(D+1) > D'`) fires at most **once** per grounding of its anchor
//!   atoms: after the first stage at which `V…` enters `h`, the marker
//!   blocks every later stage. Such a rule contributes `A(r)` (the product
//!   of its out-of-SCC positive bounds) instead of `S·A(r)`.
//! * **Stage multiplicity.** When every variable-stage rule of `q` is
//!   guarded, a fixed grounding of `q`'s guard columns gains tuples at no
//!   more than `μ(q) = #const-stage rules + #distinct markers` stages.
//!   A consumer that binds all guard columns of a `q` atom through its own
//!   anchors therefore sees the stage variable range over ≤ `μ(q)` values
//!   and contributes `μ(q)·A(r)` — this is how `hp`/`jp` get `3·E(g)`.
//! * **Windowed Herbrand column dataflow.** For non-XY recursion over
//!   base-only bodies, a per-column abstract domain (constructor depth,
//!   leaf count, contributing base streams) replaces the whole-universe
//!   `D^arity` bound, and gives *finite* bounds to bounded-depth value
//!   invention (e.g. pair-swapping over a windowed stream) that the legacy
//!   analysis reports as `Unbounded`. Divergent depth (counters, growing
//!   lists) still widens to top and stays `Unbounded`.
//! * **Communication costs.** The same per-predicate widths scale into
//!   per-plane message estimates and per-message-kind envelopes that
//!   `sensorlog` cross-checks against the simulator's tx counters.
//!
//! Unless a rule is *proved* tighter, every case falls back to exactly the
//! legacy [`crate::diag::memory_bounds`] contribution, so the frontier
//! bound is never looser than the paper's `S·Σ` bound.
//!
//! The abstract leaf-counting inherits the legacy analysis' modelling
//! assumption that each base-stream argument position carries one constant
//! per event; deep subterm extraction from base tuples is bounded by the
//! same `arity(p)·E(p)` leaf pool.

use crate::analyze::Analysis;
use crate::ast::{Atom, Literal, Program, Rule};
use crate::depgraph::DepGraph;
use crate::diag::{comm_planes, BoundExpr, Plane};
use crate::symbol::Symbol;
use crate::term::Term;
use crate::unify::Subst;
use crate::xy::{relate_detail, stage_expr, StageExpr, StageRelDetail, XyInfo};
use std::collections::{BTreeMap, BTreeSet};

/// Constructor-nesting depth at which the Herbrand column dataflow widens
/// to top (the value set is then treated as unbounded for inventing SCCs).
pub const DEPTH_CAP: u32 = 4;
/// Maximum abstract leaf count per column; doubles as the exponent cap of
/// the per-column width so formulas stay evaluable.
pub const LEAF_CAP: u32 = 12;

/// Per-predicate communication-cost estimate.
#[derive(Clone, Debug)]
pub struct CommCost {
    /// Plane class the predicate's rules evaluate on.
    pub plane: Plane,
    /// Estimated total messages attributable to the predicate over a run.
    pub msgs: BoundExpr,
}

/// Whole-run message envelopes per observable message kind, comparable to
/// the simulator's `tx_by_kind()` counters.
#[derive(Clone, Debug)]
pub struct CommEnvelopes {
    /// Replica placement walks (`store` kind: StoreWalk / FloodStore).
    pub store: BoundExpr,
    /// Band probes triggered by stored replicas (`probe` kind).
    pub probe: BoundExpr,
    /// Derivation deltas routed between evaluation sites (`result` kind).
    pub result: BoundExpr,
    /// Base readings routed to a collection point (`centroid` kind).
    pub centroid: BoundExpr,
}

/// Result of the frontier-width pass.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    /// Whole-network distinct-tuple bound per predicate (tight where
    /// provable, legacy otherwise).
    pub bounds: BTreeMap<Symbol, BoundExpr>,
    /// Per-predicate communication estimate.
    pub comm: BTreeMap<Symbol, CommCost>,
    /// Rule ids proved to fire at most once per anchor grounding.
    pub guarded_rules: BTreeSet<usize>,
    /// `μ(p)`: number of stages at which a fixed guard-column grounding of
    /// `p` can gain tuples (present only when every variable-stage rule of
    /// `p` is guarded).
    pub stage_multiplicity: BTreeMap<Symbol, u64>,
    /// Guard column positions `G(p)` backing `stage_multiplicity`.
    pub guard_cols: BTreeMap<Symbol, BTreeSet<usize>>,
    /// Base streams feeding each Herbrand-analyzed predicate.
    pub herbrand_sources: BTreeMap<Symbol, BTreeSet<Symbol>>,
}

/// Variables bound by a rule's out-of-SCC positive atoms — the groundings
/// the frontier argument counts. Mirrors the anchor notion used by the
/// evaluator's boundness pass (every anchor var is planner-bound).
pub fn anchor_vars(rule: &Rule, scc: &BTreeSet<Symbol>) -> BTreeSet<Symbol> {
    rule.positive_atoms()
        .filter(|a| !scc.contains(&a.pred))
        .flat_map(|a| a.vars())
        .collect()
}

fn sum_expr(mut terms: Vec<BoundExpr>) -> BoundExpr {
    if terms.iter().any(|t| matches!(t, BoundExpr::Unbounded)) {
        return BoundExpr::Unbounded;
    }
    match terms.len() {
        0 => BoundExpr::Const(0),
        1 => terms.pop().expect("one term"),
        _ => BoundExpr::Sum(terms),
    }
}

fn prod_expr(terms: Vec<BoundExpr>) -> BoundExpr {
    if terms.iter().any(|t| matches!(t, BoundExpr::Unbounded)) {
        return BoundExpr::Unbounded;
    }
    let mut out: Vec<BoundExpr> = terms
        .into_iter()
        .filter(|t| !matches!(t, BoundExpr::Const(1)))
        .collect();
    match out.len() {
        0 => BoundExpr::Const(1),
        1 => out.pop().expect("one factor"),
        _ => BoundExpr::Prod(out),
    }
}

/// Legacy whole-domain size: constants carried by base tuples.
fn herbrand_domain(prog: &Program, edb: &BTreeSet<Symbol>) -> BoundExpr {
    let parts: Vec<BoundExpr> = edb
        .iter()
        .map(|&p| {
            let arity = prog.arity_of(p).unwrap_or(1).max(1) as u64;
            prod_expr(vec![BoundExpr::Const(arity), BoundExpr::Events(p)])
        })
        .collect();
    if parts.is_empty() {
        BoundExpr::Const(1)
    } else {
        sum_expr(parts)
    }
}

/// Π of out-of-SCC positive-subgoal bounds of `rule` (the anchor product).
fn anchor_product(
    rule: &Rule,
    skip_scc: Option<&BTreeSet<Symbol>>,
    bounds: &BTreeMap<Symbol, BoundExpr>,
) -> BoundExpr {
    let mut factors: Vec<BoundExpr> = Vec::new();
    for a in rule.positive_atoms() {
        if let Some(scc) = skip_scc {
            if scc.contains(&a.pred) {
                continue;
            }
        }
        match bounds.get(&a.pred) {
            Some(BoundExpr::Unbounded) | None => return BoundExpr::Unbounded,
            Some(b) => factors.push(b.clone()),
        }
    }
    prod_expr(factors)
}

/// Run the frontier-width pass over an analyzed program.
pub fn frontier(analysis: &Analysis) -> Frontier {
    let prog = &analysis.program;
    let g = DepGraph::build(prog);
    let edb = prog.edb_preds();
    let idb = prog.idb_preds();
    let mut fr = Frontier::default();
    let mut bounds: BTreeMap<Symbol, BoundExpr> = BTreeMap::new();
    for &p in &edb {
        bounds.insert(p, BoundExpr::Events(p));
    }

    for scc in g.sccs() {
        // reverse topological: dependencies first
        let members: Vec<Symbol> = scc.iter().filter(|p| idb.contains(p)).copied().collect();
        if members.is_empty() {
            continue;
        }
        let scc_set: BTreeSet<Symbol> = scc.iter().copied().collect();
        let recursive = scc.len() > 1
            || scc
                .iter()
                .any(|&p| g.succ(p).any(|(q, _, _)| scc_set.contains(q)));
        if !recursive {
            let p = members[0];
            let terms: Vec<BoundExpr> = prog
                .rules_for(p)
                .map(|r| anchor_product(r, None, &bounds))
                .collect();
            let b = sum_expr(terms);
            bounds.insert(p, b);
            continue;
        }
        let xy_info = analysis
            .xy
            .iter()
            .find(|info| members.iter().all(|p| info.scc.contains(p)));
        if let Some(info) = xy_info {
            xy_scc_bounds(prog, info, &scc_set, &members, &mut bounds, &mut fr);
        } else {
            herbrand_scc_bounds(prog, &scc_set, &members, &edb, &mut bounds, &mut fr);
        }
    }

    fr.comm = comm_costs(analysis, &bounds);
    fr.bounds = bounds;
    fr
}

// ---------------------------------------------------------------------------
// XY SCCs: first-entry guards and stage multiplicity
// ---------------------------------------------------------------------------

fn xy_scc_bounds(
    prog: &Program,
    info: &XyInfo,
    scc_set: &BTreeSet<Symbol>,
    members: &[Symbol],
    bounds: &mut BTreeMap<Symbol, BoundExpr>,
    fr: &mut Frontier,
) {
    // Pass 1: per-rule guards, then μ(p) / G(p) for fully guarded preds.
    let mut guards: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut mu: BTreeMap<Symbol, u64> = BTreeMap::new();
    let mut gcols: BTreeMap<Symbol, BTreeSet<usize>> = BTreeMap::new();
    for &p in members {
        let Some(&ppos) = info.stage_pos.get(&p) else {
            continue;
        };
        let mut all_guarded = true;
        let mut const_rules = 0u64;
        let mut markers: BTreeSet<Symbol> = BTreeSet::new();
        let mut cols_union: BTreeSet<usize> = BTreeSet::new();
        for r in prog.rules_for(p) {
            match r.head.args.get(ppos).and_then(stage_expr) {
                Some(StageExpr::Const(_)) => const_rules += 1,
                Some(StageExpr::Linear(..)) => {
                    if let Some((cols, marker)) = first_entry_guard(prog, info, scc_set, r) {
                        cols_union.extend(cols.iter().copied());
                        markers.insert(marker);
                        guards.insert(r.id, cols);
                    } else {
                        all_guarded = false;
                    }
                }
                None => all_guarded = false,
            }
        }
        if all_guarded {
            let m = (const_rules + markers.len() as u64).max(1);
            mu.insert(p, m);
            gcols.insert(p, cols_union);
        }
    }

    // Pass 2: per-rule contributions.
    for &p in members {
        let Some(&ppos) = info.stage_pos.get(&p) else {
            bounds.insert(p, BoundExpr::Unbounded);
            continue;
        };
        let mut contributions: Vec<BoundExpr> = Vec::new();
        let mut unbounded = false;
        for r in prog.rules_for(p) {
            let anchored = r.body.is_empty()
                || r.body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if !scc_set.contains(&a.pred)));
            if !anchored {
                unbounded = true;
                break;
            }
            let a = anchor_product(r, Some(scc_set), bounds);
            let avars = anchor_vars(r, scc_set);
            let head_anchor_bound = r
                .head
                .args
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != ppos)
                .all(|(_, t)| t.vars().iter().all(|v| avars.contains(v)));
            let contribution = match r.head.args.get(ppos).and_then(stage_expr) {
                Some(StageExpr::Const(_)) if head_anchor_bound => a,
                Some(StageExpr::Linear(hv, _)) if head_anchor_bound => {
                    if guards.contains_key(&r.id) {
                        fr.guarded_rules.insert(r.id);
                        a
                    } else if let Some(m) =
                        stage_mult_via(r, hv, &avars, &mu, &gcols, scc_set, info)
                    {
                        prod_expr(vec![BoundExpr::Const(m), a])
                    } else {
                        prod_expr(vec![BoundExpr::Stages, a])
                    }
                }
                _ => prod_expr(vec![BoundExpr::Stages, a]),
            };
            contributions.push(contribution);
        }
        let b = if unbounded {
            BoundExpr::Unbounded
        } else {
            sum_expr(contributions)
        };
        bounds.insert(p, b);
    }
    for (p, m) in mu {
        fr.stage_multiplicity.insert(p, m);
    }
    for (p, g) in gcols {
        fr.guard_cols.insert(p, g);
    }
}

/// If `r` consumes an SCC atom whose stage argument determines `r`'s head
/// stage variable `hv` and whose guard columns are all anchor-bound, the
/// head stage ranges over at most `μ` values; return that μ.
fn stage_mult_via(
    r: &Rule,
    hv: Symbol,
    avars: &BTreeSet<Symbol>,
    mu: &BTreeMap<Symbol, u64>,
    gcols: &BTreeMap<Symbol, BTreeSet<usize>>,
    scc_set: &BTreeSet<Symbol>,
    info: &XyInfo,
) -> Option<u64> {
    for b in r.positive_atoms() {
        if !scc_set.contains(&b.pred) {
            continue;
        }
        let Some(&qpos) = info.stage_pos.get(&b.pred) else {
            continue;
        };
        let Some(StageExpr::Linear(v, _)) = b.args.get(qpos).and_then(stage_expr) else {
            continue;
        };
        if v != hv {
            continue;
        }
        let Some(&m) = mu.get(&b.pred) else {
            continue;
        };
        let Some(g) = gcols.get(&b.pred) else {
            continue;
        };
        let cols_anchor_bound = g.iter().all(|&j| {
            b.args
                .get(j)
                .is_some_and(|t| t.vars().iter().all(|v| avars.contains(v)))
        });
        if cols_anchor_bound {
            return Some(m);
        }
    }
    None
}

/// Check whether rule `r` (variable-stage, head pred `p`) carries a valid
/// first-entry guard: a same-stage negated SCC atom `not q(…)` whose
/// predicate is a cumulative entry marker for `p`. Returns the guarded head
/// column positions and the marker predicate.
fn first_entry_guard(
    prog: &Program,
    info: &XyInfo,
    scc_set: &BTreeSet<Symbol>,
    r: &Rule,
) -> Option<(BTreeSet<usize>, Symbol)> {
    let p = r.head.pred;
    let &ppos = info.stage_pos.get(&p)?;
    let head_stage = r.head.args.get(ppos).and_then(stage_expr)?;
    for lit in &r.body {
        let Literal::Neg(gatom) = lit else {
            continue;
        };
        let q = gatom.pred;
        if !scc_set.contains(&q) || q == p {
            continue;
        }
        let Some(&qpos) = info.stage_pos.get(&q) else {
            continue;
        };
        let Some(gstage) = gatom.args.get(qpos).and_then(stage_expr) else {
            continue;
        };
        // The guard must test the *current* stage of the marker…
        if relate_detail(head_stage, gstage, r) != Some(StageRelDetail::Same) {
            continue;
        }
        // …and the marker must be computed before `p` within a stage.
        let iq = info.stage_order.iter().position(|&x| x == q);
        let ip = info.stage_order.iter().position(|&x| x == p);
        match (iq, ip) {
            (Some(iq), Some(ip)) if iq < ip => {}
            _ => continue,
        }
        // One marker rule with the entry property suffices: additional
        // rules only derive the marker more often, i.e. block more.
        for rq in prog.rules_for(q) {
            if let Some(cols) = marker_rule_cols(info, r, rq, gatom, ppos) {
                if !cols.is_empty() {
                    return Some((cols, q));
                }
            }
        }
    }
    None
}

/// Check that marker rule `rq` (for guard atom `gatom` of rule `r`) derives
/// the marker at every stage after a head-column grounding first enters
/// `r`'s head predicate. On success returns the guarded column positions.
///
/// Requirements, with `rq` renamed apart and its head matched against the
/// guard atom under θ:
/// * `rq` has a positive body atom `b` on `r`'s head predicate whose stage
///   is only *comparison*-constrained below the marker stage (cumulative —
///   an offset like `D` vs `D+1` only witnesses the immediately preceding
///   stage and is rejected);
/// * every non-stage argument of `b` is either θ-equal to the corresponding
///   head argument of `r` (a guarded column) or a variable local to `b`;
/// * the rest of `rq`'s body (minus the stage-comparison proofs) embeds
///   into `r`'s body under θ, so the marker premise holds whenever `r`
///   fires.
fn marker_rule_cols(
    info: &XyInfo,
    r: &Rule,
    rq: &Rule,
    gatom: &Atom,
    ppos: usize,
) -> Option<BTreeSet<usize>> {
    if rq.agg.is_some() {
        return None;
    }
    let p = r.head.pred;
    let q = rq.head.pred;
    let &qpos = info.stage_pos.get(&q)?;

    // α-rename rq apart from r.
    let mut ren = Subst::new();
    let mut rqvars: Vec<Symbol> = Vec::new();
    rq.head.collect_vars(&mut rqvars);
    for l in &rq.body {
        l.collect_vars(&mut rqvars);
    }
    for &v in &rqvars {
        if !ren.is_bound(v) {
            let fresh = Symbol::intern(&format!("{}#mk", v.as_str()));
            ren.bind(v, Term::Var(fresh));
        }
    }
    let apply_atom = |a: &Atom| Atom {
        pred: a.pred,
        args: a.args.iter().map(|t| ren.apply(t)).collect(),
    };
    let rh = apply_atom(&rq.head);
    let rbody: Vec<Literal> = rq
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) => Literal::Pos(apply_atom(a)),
            Literal::Neg(a) => Literal::Neg(apply_atom(a)),
            Literal::Builtin(a) => Literal::Builtin(apply_atom(a)),
            Literal::Cmp(op, a, b) => Literal::Cmp(*op, ren.apply(a), ren.apply(b)),
        })
        .collect();
    let mut fresh: BTreeSet<Symbol> = BTreeSet::new();
    let mut fv: Vec<Symbol> = Vec::new();
    rh.collect_vars(&mut fv);
    for l in &rbody {
        l.collect_vars(&mut fv);
    }
    fresh.extend(fv);

    // θ: marker head ⇒ guard atom (only renamed vars bindable).
    if rh.args.len() != gatom.args.len() {
        return None;
    }
    let mut theta = Subst::new();
    for (pat, val) in rh.args.iter().zip(&gatom.args) {
        if !pat_match(pat, val, &fresh, &mut theta) {
            return None;
        }
    }
    let rq_head_stage = rh.args.get(qpos).and_then(stage_expr)?;

    'cand: for (bi, lit) in rbody.iter().enumerate() {
        let Literal::Pos(b) = lit else {
            continue;
        };
        if b.pred != p {
            continue;
        }
        let bstage_t = match b.args.get(ppos) {
            Some(t) => t,
            None => continue,
        };
        let Some(bstage) = stage_expr(bstage_t) else {
            continue;
        };
        // Reject syntactic offsets — they witness only one earlier stage.
        match (rq_head_stage, bstage) {
            (StageExpr::Linear(hv, _), StageExpr::Linear(bv, _)) if hv == bv => continue,
            (StageExpr::Const(_), StageExpr::Const(_)) => continue,
            _ => {}
        }
        let StageExpr::Linear(bv, _) = bstage else {
            continue;
        };
        if theta.is_bound(bv) {
            continue;
        }
        // The marker stage must dominate b's stage via explicit comparisons
        // satisfiable at *every* earlier entry stage.
        let mut proof_idx: Vec<usize> = Vec::new();
        for (ci, cl) in rbody.iter().enumerate() {
            if let Literal::Cmp(op, l, rr) = cl {
                use crate::ast::CmpOp;
                let (le, re) = (stage_expr(l), stage_expr(rr));
                let proves = match op {
                    CmpOp::Gt | CmpOp::Ge => le == Some(rq_head_stage) && re == Some(bstage),
                    CmpOp::Lt | CmpOp::Le => le == Some(bstage) && re == Some(rq_head_stage),
                    _ => false,
                };
                if proves {
                    proof_idx.push(ci);
                }
            }
        }
        if proof_idx.is_empty() {
            continue;
        }
        // Classify b's non-stage columns.
        let mut cols: BTreeSet<usize> = BTreeSet::new();
        let mut locals: BTreeSet<Symbol> = BTreeSet::new();
        for (j, arg) in b.args.iter().enumerate() {
            if j == ppos {
                continue;
            }
            let img = theta.apply(arg);
            let img_has_fresh = img.vars().iter().any(|v| fresh.contains(v));
            if !img_has_fresh && Some(&img) == r.head.args.get(j) {
                cols.insert(j);
            } else if let Term::Var(v) = arg {
                if !theta.is_bound(*v) {
                    locals.insert(*v);
                } else {
                    continue 'cand;
                }
            } else {
                continue 'cand;
            }
        }
        if cols.is_empty() {
            continue;
        }
        // Remaining literals may not constrain b's stage or local vars, and
        // must be implied by r's own body.
        let mut remainder: Vec<&Literal> = Vec::new();
        for (ci, cl) in rbody.iter().enumerate() {
            if ci == bi || proof_idx.contains(&ci) {
                continue;
            }
            let mut vs: Vec<Symbol> = Vec::new();
            cl.collect_vars(&mut vs);
            if vs.contains(&bv) || vs.iter().any(|v| locals.contains(v)) {
                continue 'cand;
            }
            remainder.push(cl);
        }
        if embed(&remainder, &r.body, &theta, &fresh) {
            return Some(cols);
        }
    }
    None
}

/// One-way match: `pat` (whose `bindable` vars may be bound/extended in
/// `s`) against `val`, whose variables are treated as constants.
fn pat_match(pat: &Term, val: &Term, bindable: &BTreeSet<Symbol>, s: &mut Subst) -> bool {
    match pat {
        Term::Var(v) if bindable.contains(v) => match s.get(*v) {
            Some(b) => b.clone() == *val,
            None => {
                s.bind(*v, val.clone());
                true
            }
        },
        Term::App(f, args) => match val {
            Term::App(g, vargs) if f == g && args.len() == vargs.len() => args
                .iter()
                .zip(vargs.iter())
                .all(|(a, b)| pat_match(a, b, bindable, s)),
            _ => false,
        },
        _ => pat == val,
    }
}

fn lit_match(pat: &Literal, val: &Literal, bindable: &BTreeSet<Symbol>, s: &mut Subst) -> bool {
    let atoms = |a: &Atom, b: &Atom, s: &mut Subst| {
        a.pred == b.pred
            && a.args.len() == b.args.len()
            && a.args
                .iter()
                .zip(&b.args)
                .all(|(x, y)| pat_match(x, y, bindable, s))
    };
    match (pat, val) {
        (Literal::Pos(a), Literal::Pos(b))
        | (Literal::Neg(a), Literal::Neg(b))
        | (Literal::Builtin(a), Literal::Builtin(b)) => atoms(a, b, s),
        (Literal::Cmp(o1, l1, r1), Literal::Cmp(o2, l2, r2)) => {
            o1 == o2 && pat_match(l1, l2, bindable, s) && pat_match(r1, r2, bindable, s)
        }
        _ => false,
    }
}

/// Does every literal of `rem` match some literal of `body` under a common
/// extension of θ? (Backtracking; premise implication by syntactic
/// embedding.)
fn embed(rem: &[&Literal], body: &[Literal], theta: &Subst, bindable: &BTreeSet<Symbol>) -> bool {
    let Some((first, rest)) = rem.split_first() else {
        return true;
    };
    for target in body {
        let mut th = theta.clone();
        if lit_match(first, target, bindable, &mut th) && embed(rest, body, &th, bindable) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Non-XY recursion: windowed Herbrand column dataflow
// ---------------------------------------------------------------------------

/// Abstract value set of one predicate column.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct ColAbs {
    /// Unknown shape (divergent depth, builtin-bound, over-cap).
    top: bool,
    /// Max constructor-nesting depth of any value.
    depth: u32,
    /// Max number of leaf constants in any value (0 = no value seen yet).
    leaves: u32,
    /// Base streams whose tuple arguments contribute leaves.
    srcs: BTreeSet<Symbol>,
    /// Program-text constants contributing leaves.
    consts: BTreeSet<Term>,
}

impl ColAbs {
    fn top() -> ColAbs {
        ColAbs {
            top: true,
            ..ColAbs::default()
        }
    }

    fn base(pred: Symbol) -> ColAbs {
        ColAbs {
            depth: 0,
            leaves: 1,
            srcs: [pred].into_iter().collect(),
            ..ColAbs::default()
        }
    }

    fn constant(t: &Term) -> ColAbs {
        ColAbs {
            depth: 0,
            leaves: 1,
            consts: [t.clone()].into_iter().collect(),
            ..ColAbs::default()
        }
    }

    fn join(&mut self, o: &ColAbs) -> bool {
        let before = self.clone();
        self.top |= o.top;
        self.depth = self.depth.max(o.depth);
        self.leaves = self.leaves.max(o.leaves);
        self.srcs.extend(o.srcs.iter().copied());
        self.consts.extend(o.consts.iter().cloned());
        *self != before
    }

    /// Abstract value of an immediate subterm: one level shallower; a
    /// depth-0 subterm is a single leaf.
    fn child(&self) -> ColAbs {
        let depth = self.depth.saturating_sub(1);
        let leaves = if self.top {
            self.leaves
        } else if depth == 0 {
            1
        } else {
            self.leaves.saturating_sub(1).max(1)
        };
        ColAbs {
            top: self.top,
            depth,
            leaves,
            srcs: self.srcs.clone(),
            consts: self.consts.clone(),
        }
    }

    fn app(children: Vec<ColAbs>) -> ColAbs {
        let mut out = ColAbs {
            depth: 1 + children.iter().map(|c| c.depth).max().unwrap_or(0),
            leaves: children
                .iter()
                .fold(0u32, |acc, c| acc.saturating_add(c.leaves.max(1))),
            ..ColAbs::default()
        };
        for c in children {
            out.top |= c.top;
            out.srcs.extend(c.srcs);
            out.consts.extend(c.consts);
        }
        if out.depth > DEPTH_CAP || out.leaves > LEAF_CAP {
            out.top = true;
        }
        out
    }
}

fn herbrand_scc_bounds(
    prog: &Program,
    scc_set: &BTreeSet<Symbol>,
    members: &[Symbol],
    edb: &BTreeSet<Symbol>,
    bounds: &mut BTreeMap<Symbol, BoundExpr>,
    fr: &mut Frontier,
) {
    let scc_rules: Vec<&Rule> = prog
        .rules
        .iter()
        .filter(|r| scc_set.contains(&r.head.pred))
        .collect();
    let invents = scc_rules
        .iter()
        .any(|r| r.head.args.iter().any(|t| matches!(t, Term::App(..))));
    // The column dataflow only models base-fed recursion; anything joining
    // external IDB predicates or aggregating keeps the legacy bound.
    let tractable = !scc_rules.iter().any(|r| {
        r.agg.is_some()
            || r.positive_atoms()
                .any(|a| !scc_set.contains(&a.pred) && !edb.contains(&a.pred))
    });

    let legacy = |p: Symbol| -> BoundExpr {
        if invents {
            BoundExpr::Unbounded
        } else {
            let arity = prog.arity_of(p).unwrap_or(0) as u32;
            BoundExpr::Pow(Box::new(herbrand_domain(prog, edb)), arity)
        }
    };

    if !tractable {
        for &p in members {
            bounds.insert(p, legacy(p));
        }
        return;
    }

    // Fixpoint over per-column abstractions.
    let mut cur: BTreeMap<(Symbol, usize), ColAbs> = BTreeMap::new();
    for &p in members {
        for j in 0..prog.arity_of(p).unwrap_or(0) {
            cur.insert((p, j), ColAbs::default());
        }
    }
    let max_iters = 8 + (DEPTH_CAP + LEAF_CAP) as usize * cur.len().max(1);
    for _ in 0..max_iters {
        let mut changed = false;
        for r in &scc_rules {
            let binds = rule_bindings(r, scc_set, edb, &cur);
            for (j, t) in r.head.args.iter().enumerate() {
                let abs = eval_term_abs(t, &binds).unwrap_or_else(ColAbs::top);
                if let Some(slot) = cur.get_mut(&(r.head.pred, j)) {
                    changed |= slot.join(&abs);
                }
            }
        }
        if !changed {
            break;
        }
    }

    for &p in members {
        let arity = prog.arity_of(p).unwrap_or(0);
        let mut widths: Vec<BoundExpr> = Vec::new();
        let mut srcs_all: BTreeSet<Symbol> = BTreeSet::new();
        let mut any_top = false;
        for j in 0..arity {
            let abs = cur.get(&(p, j)).cloned().unwrap_or_else(ColAbs::top);
            srcs_all.extend(abs.srcs.iter().copied());
            if abs.top {
                any_top = true;
                widths.push(herbrand_domain(prog, edb));
                continue;
            }
            widths.push(col_width(prog, &abs, scc_rules.len() as u64));
        }
        let b = if any_top && invents {
            BoundExpr::Unbounded
        } else {
            prod_expr(widths)
        };
        fr.herbrand_sources.insert(p, srcs_all);
        bounds.insert(p, b);
    }
}

/// Abstract bindings of one rule's variables, from its base and SCC atoms
/// plus `Eq` assignments; variables seen only in builtins go to top.
fn rule_bindings(
    r: &Rule,
    scc_set: &BTreeSet<Symbol>,
    edb: &BTreeSet<Symbol>,
    cur: &BTreeMap<(Symbol, usize), ColAbs>,
) -> BTreeMap<Symbol, ColAbs> {
    let mut binds: BTreeMap<Symbol, ColAbs> = BTreeMap::new();
    // A few passes settle `Eq` chains regardless of body order.
    for pass in 0..3 {
        for lit in &r.body {
            match lit {
                Literal::Pos(a) if edb.contains(&a.pred) => {
                    for t in &a.args {
                        bind_pattern(t, &ColAbs::base(a.pred), &mut binds);
                    }
                }
                Literal::Pos(a) if scc_set.contains(&a.pred) => {
                    for (j, t) in a.args.iter().enumerate() {
                        let abs = cur.get(&(a.pred, j)).cloned().unwrap_or_else(ColAbs::top);
                        bind_pattern(t, &abs, &mut binds);
                    }
                }
                Literal::Cmp(crate::ast::CmpOp::Eq, l, rr) => {
                    if let (Term::Var(v), Some(abs)) = (l, eval_term_abs(rr, &binds)) {
                        binds.entry(*v).or_default().join(&abs);
                    } else if let (Some(abs), Term::Var(v)) = (eval_term_abs(l, &binds), rr) {
                        binds.entry(*v).or_default().join(&abs);
                    }
                }
                Literal::Builtin(a) if pass == 2 => {
                    // Builtins may bind their arguments procedurally.
                    for v in a.vars() {
                        binds.entry(v).or_default().join(&ColAbs::top());
                    }
                }
                _ => {}
            }
        }
    }
    binds
}

fn bind_pattern(t: &Term, abs: &ColAbs, binds: &mut BTreeMap<Symbol, ColAbs>) {
    match t {
        Term::Var(v) => {
            binds.entry(*v).or_default().join(abs);
        }
        Term::App(_, args) => {
            let c = abs.child();
            for a in args.iter() {
                bind_pattern(a, &c, binds);
            }
        }
        _ => {}
    }
}

/// Abstract value of a head/assignment term; `None` if a variable is
/// unbound (caller decides whether that widens to top).
fn eval_term_abs(t: &Term, binds: &BTreeMap<Symbol, ColAbs>) -> Option<ColAbs> {
    match t {
        Term::Var(v) => binds.get(v).cloned(),
        Term::App(_, args) => {
            let children: Option<Vec<ColAbs>> =
                args.iter().map(|a| eval_term_abs(a, binds)).collect();
            Some(ColAbs::app(children?))
        }
        _ => Some(ColAbs::constant(t)),
    }
}

/// Width of one converged column: (#tree shapes) × (#leaf choices)^(#leaf
/// slots). Leaf choices come from the contributing base streams' argument
/// positions plus the program constants that flow into the column.
fn col_width(prog: &Program, abs: &ColAbs, scc_rule_count: u64) -> BoundExpr {
    let mut parts: Vec<BoundExpr> = abs
        .srcs
        .iter()
        .map(|&s| {
            let arity = prog.arity_of(s).unwrap_or(1).max(1) as u64;
            prod_expr(vec![BoundExpr::Const(arity), BoundExpr::Events(s)])
        })
        .collect();
    if !abs.consts.is_empty() {
        parts.push(BoundExpr::Const(abs.consts.len() as u64));
    }
    let d_col = if parts.is_empty() {
        BoundExpr::Const(1)
    } else {
        sum_expr(parts)
    };
    let exp = abs.leaves.clamp(1, LEAF_CAP);
    let pow = if exp == 1 {
        d_col
    } else {
        BoundExpr::Pow(Box::new(d_col), exp)
    };
    let shapes = if abs.depth == 0 {
        1
    } else {
        (scc_rule_count + 1).saturating_pow(abs.depth)
    };
    prod_expr(vec![BoundExpr::Const(shapes), pow])
}

// ---------------------------------------------------------------------------
// Communication costs
// ---------------------------------------------------------------------------

/// Positive body occurrences per predicate (probe fan-out drivers).
fn body_occurrences(prog: &Program) -> BTreeMap<Symbol, u64> {
    let mut occ: BTreeMap<Symbol, u64> = BTreeMap::new();
    for r in &prog.rules {
        for a in r.positive_atoms() {
            *occ.entry(a.pred).or_insert(0) += 1;
        }
    }
    occ
}

/// Derivation (firing) bound per IDB predicate: Σ over rules of Π over all
/// positive-subgoal bounds — each body solution fires at most once.
fn firing_bound(prog: &Program, p: Symbol, bounds: &BTreeMap<Symbol, BoundExpr>) -> BoundExpr {
    let terms: Vec<BoundExpr> = prog
        .rules_for(p)
        .map(|r| anchor_product(r, None, bounds))
        .collect();
    sum_expr(terms)
}

fn comm_costs(
    analysis: &Analysis,
    bounds: &BTreeMap<Symbol, BoundExpr>,
) -> BTreeMap<Symbol, CommCost> {
    let prog = &analysis.program;
    let planes = comm_planes(analysis);
    let occ = body_occurrences(prog);
    let mut out: BTreeMap<Symbol, CommCost> = BTreeMap::new();
    for (&p, &plane) in &planes {
        let t = bounds.get(&p).cloned().unwrap_or(BoundExpr::Unbounded);
        let walk: u64 = match plane {
            Plane::Local => 2,
            Plane::NeighborBroadcast => 4,
            Plane::TreeRouted => 8,
        };
        let o = occ.get(&p).copied().unwrap_or(0);
        let msgs = prod_expr(vec![
            BoundExpr::Const(2 * (walk + 2 * o)),
            t,
            BoundExpr::Nodes,
        ]);
        out.insert(p, CommCost { plane, msgs });
    }
    out
}

/// Whole-run per-kind message envelopes for the simulator cross-check.
pub fn comm_envelopes(analysis: &Analysis, bounds: &BTreeMap<Symbol, BoundExpr>) -> CommEnvelopes {
    let prog = &analysis.program;
    let edb = prog.edb_preds();
    let idb = prog.idb_preds();
    let occ = body_occurrences(prog);
    // Tuple-transition driver: insertion events for base streams, firings
    // for derived predicates (DRed churn re-walks per derivation).
    let driver = |p: Symbol| -> BoundExpr {
        if edb.contains(&p) {
            bounds.get(&p).cloned().unwrap_or(BoundExpr::Unbounded)
        } else {
            firing_bound(prog, p, bounds)
        }
    };
    let mut store: Vec<BoundExpr> = Vec::new();
    let mut probe: Vec<BoundExpr> = Vec::new();
    let mut result: Vec<BoundExpr> = Vec::new();
    let mut centroid: Vec<BoundExpr> = Vec::new();
    for &p in edb.iter().chain(idb.iter()) {
        store.push(prod_expr(vec![
            BoundExpr::Const(4),
            driver(p),
            BoundExpr::Nodes,
        ]));
        let o = occ.get(&p).copied().unwrap_or(0);
        if o > 0 {
            probe.push(prod_expr(vec![
                BoundExpr::Const(4 * o),
                driver(p),
                BoundExpr::Nodes,
            ]));
        }
    }
    for &p in &idb {
        result.push(prod_expr(vec![
            BoundExpr::Const(8),
            firing_bound(prog, p, bounds),
            BoundExpr::Nodes,
        ]));
    }
    for &p in &edb {
        centroid.push(prod_expr(vec![
            BoundExpr::Const(2),
            BoundExpr::Events(p),
            BoundExpr::Nodes,
        ]));
    }
    CommEnvelopes {
        store: sum_expr(store),
        probe: sum_expr(probe),
        result: sum_expr(result),
        centroid: sum_expr(centroid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::builtin::BuiltinRegistry;
    use crate::diag::{memory_bounds, BoundParams};
    use crate::parser::parse_program;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn fr(src: &str) -> Frontier {
        let prog = parse_program(src).unwrap();
        let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
        frontier(&analysis)
    }

    fn params(nodes: u64, e: u64) -> BoundParams {
        BoundParams {
            nodes,
            default_events: e,
            events: BTreeMap::new(),
        }
    }

    const LOGIC_H: &str = r#"
        .base g.
        .output h.
        h(a, a, 0).
        h(a, X, 1) :- g(a, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;

    const LOGIC_J: &str = r#"
        .base g.
        .output j.
        j(0, 0).
        j(X, 1) :- g(0, X).
        jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
        j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
    "#;

    #[test]
    fn logich_frontier_is_stage_free() {
        let f = fr(LOGIC_H);
        let p = params(200, 740);
        // h: 1 + E(g) + E(g) — no S factor; hp: μ(h)·E(g) = 3·E(g).
        assert_eq!(f.bounds[&sym("h")].eval(&p), Some(1 + 740 + 740));
        assert_eq!(f.bounds[&sym("hp")].eval(&p), Some(3 * 740));
        assert_eq!(f.stage_multiplicity[&sym("h")], 3);
        assert_eq!(
            f.guard_cols[&sym("h")],
            [1usize].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(f.guarded_rules.len(), 1);
    }

    #[test]
    fn logicj_frontier_matches_logich_shape() {
        let f = fr(LOGIC_J);
        let p = params(100, 500);
        assert_eq!(f.bounds[&sym("j")].eval(&p), Some(1 + 2 * 500));
        assert_eq!(f.bounds[&sym("jp")].eval(&p), Some(3 * 500));
        assert_eq!(
            f.guard_cols[&sym("j")],
            [0usize].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn frontier_is_never_looser_than_legacy_on_examples() {
        for src in [LOGIC_H, LOGIC_J] {
            let prog = parse_program(src).unwrap();
            let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
            let legacy = memory_bounds(&analysis);
            let f = frontier(&analysis);
            let p = params(64, 100);
            for (pred, b) in &legacy {
                let (Some(old), Some(new)) = (b.eval(&p), f.bounds[pred].eval(&p)) else {
                    continue;
                };
                assert!(new <= old, "{pred}: frontier {new} > legacy {old}");
            }
        }
    }

    #[test]
    fn guard_rejected_when_marker_column_mismatches() {
        // Marker tracks column X (the *source*), not the head's Y column:
        // it does not witness Y's entry, so the bound must keep the S factor.
        let f = fr(r#"
            .base g.
            .output j.
            j(0, 0).
            jp(X, D + 1) :- j(X, D'), (D + 1) > D', j(X, D), g(X, Y).
            j(Y, D + 1) :- g(X, Y), j(X, D), not jp(X, D + 1).
        "#);
        let p = params(50, 10);
        let s = 51u64;
        assert_eq!(f.bounds[&sym("j")].eval(&p), Some(1 + s * 10));
        assert!(f.guarded_rules.is_empty());
    }

    #[test]
    fn offset_marker_is_not_cumulative() {
        // hp derivable only from the immediately preceding stage (offset,
        // no comparison) — a value re-entering two stages later is missed,
        // so no first-entry credit.
        let f = fr(r#"
            .base g.
            .output j.
            j(0, 0).
            jp(Y, D + 1) :- j(Y, D), g(X, Y).
            j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
        "#);
        let p = params(50, 10);
        let s = 51u64;
        assert_eq!(f.bounds[&sym("j")].eval(&p), Some(1 + s * 10));
        assert!(f.guarded_rules.is_empty());
    }

    #[test]
    fn guard_rejected_when_marker_premise_not_implied() {
        // Marker needs an extra atom `h(Y)` that the guarded rule's body
        // does not imply — the marker may never fire, so no credit.
        let f = fr(r#"
            .base g.
            .base h.
            .output j.
            j(0, 0).
            jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', h(Y), j(X, D), g(X, Y).
            j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
        "#);
        let p = params(50, 10);
        let s = 51u64;
        assert_eq!(f.bounds[&sym("j")].eval(&p), Some(1 + s * 10));
        assert!(f.guarded_rules.is_empty());
    }

    #[test]
    fn windowed_swap_recursion_gets_finite_bound() {
        // Value invention with non-growing depth: legacy says Unbounded,
        // the column dataflow converges at depth 1 / two leaves.
        let src = r#"
            .base s.
            .window s 60000.
            .output m.
            m(pair(A, B)) :- s(A, B).
            m(pair(B, A)) :- m(pair(A, B)).
        "#;
        let prog = parse_program(src).unwrap();
        let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
        let legacy = memory_bounds(&analysis);
        assert_eq!(legacy[&sym("m")], BoundExpr::Unbounded);
        let f = frontier(&analysis);
        let p = params(1, 10);
        // shapes·(2·E(s))² = 3·400 with 2 SCC rules.
        assert_eq!(f.bounds[&sym("m")].eval(&p), Some(3 * 400));
        assert!(f.herbrand_sources[&sym("m")].contains(&sym("s")));
    }

    #[test]
    fn counter_recursion_stays_unbounded() {
        let f = fr(r#"
            .base e.
            .output n.
            n(zero) :- e(X).
            n(s(X)) :- n(X), e(Y).
        "#);
        assert_eq!(f.bounds[&sym("n")], BoundExpr::Unbounded);
    }

    #[test]
    fn transitive_closure_value_matches_legacy() {
        let src = r#"
            .base e.
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        let prog = parse_program(src).unwrap();
        let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
        let f = frontier(&analysis);
        let p = params(1, 10);
        // Per-column (2·E)·(2·E) = legacy D² = 400.
        assert_eq!(f.bounds[&sym("t")].eval(&p), Some(400));
    }

    #[test]
    fn comm_costs_cover_every_pred_and_scale_with_nodes() {
        let f = fr(LOGIC_J);
        for pred in ["g", "j", "jp"] {
            let c = &f.comm[&sym(pred)];
            let small = c.msgs.eval(&params(10, 100)).unwrap();
            let big = c.msgs.eval(&params(100, 100)).unwrap();
            assert!(big > small, "{pred} estimate should scale with N");
        }
        assert_eq!(f.comm[&sym("g")].plane, Plane::Local);
        assert_eq!(f.comm[&sym("j")].plane, Plane::NeighborBroadcast);
    }

    #[test]
    fn comm_envelopes_are_finite_for_xy_examples() {
        let prog = parse_program(LOGIC_H).unwrap();
        let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
        let f = frontier(&analysis);
        let env = comm_envelopes(&analysis, &f.bounds);
        let p = params(25, 50);
        for (name, e) in [
            ("store", &env.store),
            ("probe", &env.probe),
            ("result", &env.result),
            ("centroid", &env.centroid),
        ] {
            assert!(e.eval(&p).is_some(), "{name} envelope should be finite");
        }
    }

    #[test]
    fn anchor_vars_are_out_of_scc_only() {
        let prog = parse_program(LOGIC_J).unwrap();
        let scc: BTreeSet<Symbol> = [sym("j"), sym("jp")].into_iter().collect();
        let r = prog
            .rules
            .iter()
            .find(|r| r.head.pred == sym("jp"))
            .unwrap();
        let av = anchor_vars(r, &scc);
        assert!(av.contains(&sym("X")) && av.contains(&sym("Y")));
        assert!(!av.contains(&sym("D")));
    }
}
