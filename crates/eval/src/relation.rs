//! Relations and databases.
//!
//! A [`Relation`] is a set of ground tuples with per-tuple metadata
//! (generation timestamp, optional deletion timestamp — Definition 2 / the
//! tombstone discipline of Sec. IV-B). Hot relations are additionally backed
//! by byte-trie indexes over column-permuted sort keys of the interned
//! constant ids, so one persistent structure answers every bound-column
//! prefix signature (see DESIGN.md, "Tuple representation & trie indexes").

use parking_lot::RwLock;
use sensorlog_logic::intern::{self, ConstId};
use sensorlog_logic::{Symbol, Tuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-tuple metadata.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct TupleMeta {
    /// Generation timestamp (simulated ms; 0 for batch evaluation).
    pub gen_ts: u64,
    /// Tombstone: local timestamp of deletion, if deleted (Sec. IV-B keeps
    /// deleted replicas around with their deletion-timestamp recorded).
    pub del_ts: Option<u64>,
}

impl TupleMeta {
    pub fn at(gen_ts: u64) -> TupleMeta {
        TupleMeta {
            gen_ts,
            del_ts: None,
        }
    }

    /// Visibility under the timestamp discipline of Theorem 3: a probe with
    /// update-timestamp `tau` over a window of `window` ms sees tuples with
    /// `gen_ts ≤ tau`, `gen_ts > tau − window`, and no deletion-timestamp
    /// `< tau`.
    pub fn visible_at(&self, tau: u64, window: Option<u64>) -> bool {
        if self.gen_ts > tau {
            return false;
        }
        if let Some(w) = window {
            if self.gen_ts + w <= tau {
                return false;
            }
        }
        match self.del_ts {
            Some(d) => d >= tau,
            None => true,
        }
    }
}

/// An unregistered signature is probed by scanning this many times before
/// it is promoted to a persistent index — a safety net for probe paths the
/// static planner doesn't enumerate (seeded XY stages, ad-hoc queries).
const PROMOTE_AFTER: u32 = 4;

/// A compressed (path-merged) byte-trie node. Keys are concatenated
/// order-preserving sort keys of the tuple's interned constants in the
/// trie's column permutation; sort keys are prefix-free, so concatenation
/// is injective and memcmp order on keys equals the permuted column-
/// lexicographic tuple order.
#[derive(Clone, Debug, Default)]
struct TrieNode {
    /// Path bytes below the incoming edge byte (path compression).
    prefix: Vec<u8>,
    /// Tuple whose full key ends exactly here.
    leaf: Option<Tuple>,
    /// Edge bytes, ascending. Parallel to `child_nodes`: searching a dense
    /// byte array touches a couple of cache lines even at full fan-out,
    /// where a `Vec<(u8, TrieNode)>` would stride ~100 bytes per element.
    child_bytes: Vec<u8>,
    /// Child nodes, parallel to `child_bytes` — ascending-byte traversal
    /// yields canonical order.
    child_nodes: Vec<TrieNode>,
}

impl TrieNode {
    fn insert(&mut self, key: &[u8], t: Tuple) {
        let common = self
            .prefix
            .iter()
            .zip(key.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if common < self.prefix.len() {
            // Split this node at the divergence point.
            let split_byte = self.prefix[common];
            let child = TrieNode {
                prefix: self.prefix[common + 1..].to_vec(),
                leaf: self.leaf.take(),
                child_bytes: std::mem::take(&mut self.child_bytes),
                child_nodes: std::mem::take(&mut self.child_nodes),
            };
            self.prefix.truncate(common);
            self.child_bytes.push(split_byte);
            self.child_nodes.push(child);
        }
        // Here self.prefix.len() == common (either it always was, or the
        // split above truncated it).
        if key.len() == common {
            self.leaf = Some(t);
            return;
        }
        let rest = &key[common..];
        match self.child_bytes.binary_search(&rest[0]) {
            Ok(i) => self.child_nodes[i].insert(&rest[1..], t),
            Err(i) => {
                self.child_bytes.insert(i, rest[0]);
                self.child_nodes.insert(
                    i,
                    TrieNode {
                        prefix: rest[1..].to_vec(),
                        leaf: Some(t),
                        child_bytes: Vec::new(),
                        child_nodes: Vec::new(),
                    },
                );
            }
        }
    }

    /// Remove `key`; returns true if a leaf was removed. Empty children are
    /// pruned (paths are not re-merged — harmless for correctness).
    fn remove(&mut self, key: &[u8]) -> bool {
        if key.len() < self.prefix.len() || key[..self.prefix.len()] != self.prefix[..] {
            return false;
        }
        let rest = &key[self.prefix.len()..];
        if rest.is_empty() {
            return self.leaf.take().is_some();
        }
        if let Ok(i) = self.child_bytes.binary_search(&rest[0]) {
            let removed = self.child_nodes[i].remove(&rest[1..]);
            if removed
                && self.child_nodes[i].leaf.is_none()
                && self.child_nodes[i].child_bytes.is_empty()
            {
                self.child_bytes.remove(i);
                self.child_nodes.remove(i);
            }
            removed
        } else {
            false
        }
    }

    /// Append every tuple whose key starts with `probe` (a whole-column
    /// boundary in the key encoding), in key order — which is canonical
    /// tuple order among the matches. Iterative: the descent is the probe
    /// hot path and a call frame per byte is measurable.
    fn collect_prefix(&self, mut probe: &[u8], out: &mut Vec<Tuple>) {
        let mut node = self;
        loop {
            let n = node.prefix.len().min(probe.len());
            if node.prefix[..n] != probe[..n] {
                return;
            }
            if probe.len() <= node.prefix.len() {
                node.collect_all(out);
                return;
            }
            probe = &probe[node.prefix.len()..];
            match node.child_bytes.binary_search(&probe[0]) {
                Ok(i) => {
                    node = &node.child_nodes[i];
                    probe = &probe[1..];
                }
                Err(_) => return,
            }
        }
    }

    fn collect_all(&self, out: &mut Vec<Tuple>) {
        // Leaf before children: a full key that ends here is a strict
        // prefix of every key below, i.e. the shorter tuple sorts first.
        if let Some(t) = &self.leaf {
            out.push(t.clone());
        }
        for c in &self.child_nodes {
            c.collect_all(out);
        }
    }
}

/// Cap on memoized probe entries per trie; past this the memo is cleared
/// wholesale (simple, bounded, and a full repopulation is just trie walks).
const MEMO_CAP: usize = 1 << 16;

/// FNV-1a for the probe memo: keys are a handful of sort-key bytes, where
/// SipHash's setup cost dominates the actual mixing. Never iterated, so the
/// weaker hash cannot affect any observable order.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Longest probe (bound-column count) the memo serves; wider probes walk
/// the trie every time. Join plans bind a handful of columns.
const MEMO_KEY_MAX: usize = 4;

/// Memo key: the probe's interned key ids in bound-column (ascending)
/// order, zero-padded. Unambiguous per trie: the signatures a canonical
/// spec serves have pairwise-distinct lengths — ascending-run sigs
/// `[0..k]` all share the identity trie, and any other sorted sig is its
/// own canon (stripping only fires on full `{0..max}` runs) — so
/// `(len, ids)` identifies the probe. Keying on ids keeps the memo hit
/// path entirely free of pool-entry derefs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    len: u8,
    ids: [ConstId; MEMO_KEY_MAX],
}

impl MemoKey {
    fn new(ids: &[ConstId]) -> Option<MemoKey> {
        if ids.len() > MEMO_KEY_MAX {
            return None;
        }
        let mut k = MemoKey {
            len: ids.len() as u8,
            ids: [0; MEMO_KEY_MAX],
        };
        k.ids[..ids.len()].copy_from_slice(ids);
        Some(k)
    }
}

type MemoMap = HashMap<MemoKey, Memoized, std::hash::BuildHasherDefault<Fnv>>;

/// Memoized probe results. Most probes return zero or one tuple (keyed
/// relations); storing those inline skips the postings-vector indirection
/// on the hit path.
#[derive(Clone, Debug)]
enum Memoized {
    Zero,
    One(Tuple),
    Many(Vec<Tuple>),
}

impl Memoized {
    fn of(results: &[Tuple]) -> Memoized {
        match results {
            [] => Memoized::Zero,
            [t] => Memoized::One(t.clone()),
            _ => Memoized::Many(results.to_vec()),
        }
    }

    fn extend_into(&self, out: &mut Vec<Tuple>) {
        match self {
            Memoized::Zero => {}
            Memoized::One(t) => out.push(t.clone()),
            Memoized::Many(v) => out.extend(v.iter().cloned()),
        }
    }
}

/// One built trie: tuples keyed on the column permutation
/// `spec ++ ascending(complement)`. Tuples missing a spec column (arity too
/// small) are not stored; probes exclude them by key-length anyway.
#[derive(Clone, Debug)]
struct Trie {
    spec: Spec,
    root: TrieNode,
    /// Materialized probe results, keyed by probe bytes. A radix descent
    /// into a large cold trie is a chain of dependent cache misses; the
    /// fixpoint loop re-probes the same keys across rules and iterations,
    /// so repeated probes are served at hash-lookup speed from here while
    /// the trie itself remains the source of canonical order. Entries are
    /// invalidated on insert/remove at every whole-column prefix of the
    /// mutated tuple's key (probes are column-aligned by construction).
    memo: MemoMap,
}

impl Trie {
    fn new(spec: Spec) -> Trie {
        Trie {
            spec,
            root: TrieNode::default(),
            memo: MemoMap::default(),
        }
    }

    /// Full key of `t` under this trie's permutation; `None` if the tuple
    /// lacks a spec column.
    fn key_bytes(&self, t: &Tuple) -> Option<Vec<u8>> {
        let a = t.arity();
        if self.spec.iter().any(|c| c >= a) {
            return None;
        }
        let mut out = Vec::with_capacity(a * 10);
        for c in self.spec.iter() {
            out.extend_from_slice(&intern::entry(t.id(c)).sort_key);
        }
        for c in 0..a {
            if !self.spec.contains(c) {
                out.extend_from_slice(&intern::entry(t.id(c)).sort_key);
            }
        }
        Some(out)
    }

    /// Drop memo entries whose probe `t` answers (or could start
    /// answering). The identity trie serves the ascending-run signatures
    /// `[0..k]`, so every id prefix of `t` is a candidate key; any other
    /// spec serves exactly its own signature.
    fn invalidate_memo(&mut self, t: &Tuple) {
        if self.memo.is_empty() {
            return;
        }
        let a = t.arity();
        if self.spec.len == 0 {
            for k in 1..=a.min(MEMO_KEY_MAX) {
                if let Some(mk) = MemoKey::new(&t.ids()[..k]) {
                    self.memo.remove(&mk);
                }
            }
        } else {
            let mut ids = [0; MEMO_KEY_MAX];
            let n = self.spec.len as usize;
            if n <= MEMO_KEY_MAX && self.spec.iter().all(|c| c < a) {
                for (i, c) in self.spec.iter().enumerate() {
                    ids[i] = t.id(c);
                }
                self.memo.remove(&MemoKey { len: n as u8, ids });
            }
        }
    }

    fn insert(&mut self, t: &Tuple) {
        if let Some(k) = self.key_bytes(t) {
            self.invalidate_memo(t);
            self.root.insert(&k, t.clone());
        }
    }

    fn remove(&mut self, t: &Tuple) {
        if let Some(k) = self.key_bytes(t) {
            self.invalidate_memo(t);
            self.root.remove(&k);
        }
    }
}

/// An inline bound-column signature: up to [`Spec::MAX`] column positions,
/// each `< 256`. Copyable and comparable as two machine words, so the probe
/// hot path never allocates or hashes a `Vec<usize>`. Signatures that don't
/// fit (absurdly wide probes) fall back to the filtered scan in
/// [`Relation::select`], which is always correct.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
struct Spec {
    len: u8,
    cols: [u8; Spec::MAX],
}

impl Spec {
    const MAX: usize = 15;

    fn from_cols(cols: &[usize]) -> Option<Spec> {
        if cols.len() > Spec::MAX || cols.iter().any(|&c| c > u8::MAX as usize) {
            return None;
        }
        let mut s = Spec {
            len: cols.len() as u8,
            cols: [0; Spec::MAX],
        };
        for (i, &c) in cols.iter().enumerate() {
            s.cols[i] = c as u8;
        }
        Some(s)
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.cols[..self.len as usize].iter().map(|&c| c as usize)
    }

    fn contains(&self, c: usize) -> bool {
        self.cols[..self.len as usize].contains(&(c as u8))
    }

    fn to_vec(self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// Canonical trie spec serving a probe on bound columns `cols` (ascending):
/// strip trailing columns that the default ascending completion would place
/// next anyway. `canon([0]) == canon([0, 1]) == []` — the identity-order
/// trie serves every ascending-prefix signature — while `canon([1]) == [1]`
/// and `canon([0, 2]) == [0, 2]` get their own permutations. A probe on
/// `cols` is answerable by trie `S` iff `cols` equals the first
/// `cols.len()` columns of `S`'s permutation; this canon is the unique
/// such suffix-stripped spec, so equal-prefix probes share one structure.
fn canon_spec(spec: Spec) -> Spec {
    let mut spec = spec;
    while spec.len > 0 {
        let last = spec.cols[spec.len as usize - 1];
        // mex of the (ascending) prefix = first gap.
        let mut mex = 0;
        for &c in &spec.cols[..spec.len as usize - 1] {
            if c == mex {
                mex += 1;
            } else {
                break;
            }
        }
        if last == mex {
            spec.len -= 1;
            spec.cols[spec.len as usize] = 0;
        } else {
            break;
        }
    }
    spec
}

/// Index machinery behind one lock: built tries (keyed by canonical spec),
/// the registered (persistent) probe signatures, and scan counts driving
/// auto-promotion.
#[derive(Debug, Default)]
struct TrieStore {
    /// Built tries, canonical spec → trie, few enough that a linear scan
    /// over inline [`Spec`] keys beats hashing. Maintained on
    /// insert/remove; one trie serves every probe signature with the same
    /// canonical spec.
    built: Vec<(Spec, Trie)>,
    /// Persistent probe signatures — the bound-position sets the planner
    /// probes (`crate::planner`). Registration survives
    /// [`Relation::clone`]; the trie itself is rebuilt on first probe and
    /// maintained from then on.
    registered: BTreeSet<Spec>,
    /// Probe counts for unregistered signatures (promotion heuristic).
    scan_counts: HashMap<Spec, u32>,
    /// Canonical specs whose built tries a clone dropped — the next build
    /// of one of these counts as a rebuild (`join.index.rebuilds`).
    dropped_by_clone: BTreeSet<Spec>,
}

impl TrieStore {
    fn built_get(&self, spec: Spec) -> Option<&Trie> {
        self.built.iter().find(|(s, _)| *s == spec).map(|(_, t)| t)
    }

    fn built_get_mut(&mut self, spec: Spec) -> Option<&mut Trie> {
        self.built
            .iter_mut()
            .find(|(s, _)| *s == spec)
            .map(|(_, t)| t)
    }
}

/// Probe counters for `join.index.*` telemetry. Relaxed atomics: probes
/// take `&self`, and the counts are only read for snapshots.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Probes served by a maintained trie.
    pub hits: AtomicU64,
    /// Trie builds (first probe of a registered/promoted signature).
    pub builds: AtomicU64,
    /// Probes served by a filtered scan (unregistered signature).
    pub scans: AtomicU64,
    /// Builds that re-created a trie dropped by [`Relation::clone`] — the
    /// silent cost of the clone-drops-cache policy, made visible.
    pub rebuilds: AtomicU64,
}

/// Owned snapshot of [`IndexStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStatsSnapshot {
    pub hits: u64,
    pub builds: u64,
    pub scans: u64,
    pub rebuilds: u64,
}

impl IndexStatsSnapshot {
    pub fn merge(&mut self, other: IndexStatsSnapshot) {
        self.hits += other.hits;
        self.builds += other.builds;
        self.scans += other.scans;
        self.rebuilds += other.rebuilds;
    }
}

/// A set of ground tuples with metadata and persistent trie indexes.
///
/// Tuples are kept in a `BTreeMap` so iteration order is the canonical tuple
/// order, identical across processes. This matters in the distributed
/// runtime: iteration order here feeds join-probe solution order and hence
/// message emission order; with a hash map the order would vary with the
/// per-process hasher seed and replays would diverge under message loss.
/// Trie enumeration preserves the same canonical order: keys are
/// order-preserving sort keys, and equal-prefix matches differ only in the
/// ascending remaining columns.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: BTreeMap<Tuple, TupleMeta>,
    /// See [`TrieStore`]. `RwLock` because trie building and promotion
    /// happen during `&self` lookups.
    indexes: RwLock<TrieStore>,
    stats: IndexStats,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Built tries are a cache: don't copy them. Registrations are
        // *policy* and survive the clone — the planner's signatures keep
        // paying off after the semi-naive engine clones its working EDB.
        // Dropped specs are remembered so the rebuild cost shows up in
        // `join.index.rebuilds` instead of vanishing silently.
        let src = self.indexes.read();
        let mut dropped = src.dropped_by_clone.clone();
        dropped.extend(src.built.iter().map(|(s, _)| *s));
        Relation {
            tuples: self.tuples.clone(),
            indexes: RwLock::new(TrieStore {
                built: Vec::new(),
                registered: src.registered.clone(),
                scan_counts: HashMap::new(),
                dropped_by_clone: dropped,
            }),
            stats: IndexStats::default(),
        }
    }
}

impl Relation {
    pub fn new() -> Relation {
        Relation::default()
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    pub fn meta(&self, t: &Tuple) -> Option<&TupleMeta> {
        self.tuples.get(t)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &TupleMeta)> {
        self.tuples.iter()
    }

    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.keys()
    }

    /// Insert a tuple; returns true if it was new. Re-inserting an existing
    /// tuple keeps the *earlier* generation timestamp ("later duplicates …
    /// are not considered as generations", Sec. III-B) but clears any
    /// tombstone.
    pub fn insert(&mut self, t: Tuple, meta: TupleMeta) -> bool {
        match self.tuples.entry(t.clone()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().del_ts = None;
                false
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(meta);
                let mut idx = self.indexes.write();
                for (_, trie) in idx.built.iter_mut() {
                    trie.insert(&t);
                }
                true
            }
        }
    }

    /// Physically remove a tuple; returns true if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.tuples.remove(t).is_some() {
            let mut idx = self.indexes.write();
            for (_, trie) in idx.built.iter_mut() {
                trie.remove(t);
            }
            true
        } else {
            false
        }
    }

    /// Record a tombstone without removing the tuple (distributed replicas:
    /// "we do not remove the replicated copies … but only record its
    /// deletion-timestamp", Sec. IV-B).
    pub fn mark_deleted(&mut self, t: &Tuple, del_ts: u64) -> bool {
        match self.tuples.get_mut(t) {
            Some(m) => {
                m.del_ts = Some(m.del_ts.map_or(del_ts, |d| d.min(del_ts)));
                true
            }
            None => false,
        }
    }

    /// Register `cols` as a persistent index signature: the serving trie is
    /// built on the first probe and maintained through insert/delete from
    /// then on, and the registration survives [`Clone`]. `cols` must be
    /// sorted and non-empty.
    pub fn register_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty() && cols.windows(2).all(|w| w[0] < w[1]));
        if let Some(spec) = Spec::from_cols(cols) {
            self.indexes.write().registered.insert(spec);
        }
    }

    /// Registered index signatures, sorted.
    pub fn registered_indexes(&self) -> Vec<Vec<usize>> {
        self.indexes
            .read()
            .registered
            .iter()
            .map(|s| s.to_vec())
            .collect()
    }

    /// Canonical specs of currently built tries, sorted.
    pub fn built_tries(&self) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = self
            .indexes
            .read()
            .built
            .iter()
            .map(|(s, _)| s.to_vec())
            .collect();
        v.sort();
        v
    }

    /// Probe counters (see [`IndexStats`]).
    pub fn index_stats(&self) -> IndexStatsSnapshot {
        IndexStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            builds: self.stats.builds.load(Ordering::Relaxed),
            scans: self.stats.scans.load(Ordering::Relaxed),
            rebuilds: self.stats.rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Full enumeration of the trie serving probe signature `cols`, in trie
    /// (key) order — diagnostics and the index-maintenance property test.
    /// `None` if no trie is built for the signature's canonical spec.
    pub fn index_contents(&self, cols: &[usize]) -> Option<Vec<Tuple>> {
        let spec = canon_spec(Spec::from_cols(cols)?);
        let idx = self.indexes.read();
        let trie = idx.built_get(spec)?;
        let mut out = Vec::new();
        trie.root.collect_all(&mut out);
        Some(out)
    }

    /// Tuples whose argument values at `cols` equal the interned `key`, in
    /// canonical tuple order. `cols` must be sorted and non-empty.
    ///
    /// Probe policy: a built trie whose column permutation starts with
    /// `cols` answers directly (one trie per *canonical spec* serves every
    /// signature sharing that prefix — `[0]`, `[0,1]`, … all hit the
    /// identity trie); a registered (or promoted) signature builds its trie
    /// on first probe and keeps it maintained; anything else is a filtered
    /// scan — cheap for one-shot probes, counted toward promotion so a hot
    /// unregistered signature stops rescanning after [`PROMOTE_AFTER`]
    /// probes.
    pub fn select(&self, cols: &[usize], key: &[ConstId], out: &mut Vec<Tuple>) {
        debug_assert!(!cols.is_empty());
        let Some(sig) = Spec::from_cols(cols) else {
            // A signature too wide for the inline spec: filtered scan.
            self.stats.scans.fetch_add(1, Ordering::Relaxed);
            self.scan_into(cols, key, out);
            return;
        };
        let spec = canon_spec(sig);
        {
            let idx = self.indexes.read();
            if let Some(trie) = idx.built_get(spec) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                let memo_key = MemoKey::new(key);
                if let Some(mk) = &memo_key {
                    if let Some(v) = trie.memo.get(mk) {
                        v.extend_into(out);
                        return;
                    }
                }
                let start = out.len();
                PROBE_BUF.with(|buf| {
                    let mut probe = buf.borrow_mut();
                    probe_bytes(trie, cols, key, &mut probe);
                    trie.root.collect_prefix(&probe, out);
                });
                let Some(mk) = memo_key else {
                    return;
                };
                // Memoize the cold walk. Mutation needs `&mut Relation`, so
                // nothing can invalidate between the walk above and this
                // write — concurrent selects at worst store the same entry.
                let results = Memoized::of(&out[start..]);
                drop(idx);
                let mut idx = self.indexes.write();
                if let Some(trie) = idx.built_get_mut(spec) {
                    if trie.memo.len() >= MEMO_CAP {
                        trie.memo.clear();
                    }
                    trie.memo.insert(mk, results);
                }
                return;
            }
        }
        let mut idx = self.indexes.write();
        let promote = idx.registered.contains(&sig) || {
            let c = idx.scan_counts.entry(sig).or_insert(0);
            *c += 1;
            *c >= PROMOTE_AFTER
        };
        if !promote {
            drop(idx);
            self.stats.scans.fetch_add(1, Ordering::Relaxed);
            self.scan_into(cols, key, out);
            return;
        }
        // Build the trie (and keep it: insert/remove maintain it).
        self.stats.builds.fetch_add(1, Ordering::Relaxed);
        if idx.dropped_by_clone.remove(&spec) {
            self.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        let mut trie = Trie::new(spec);
        for t in self.tuples.keys() {
            trie.insert(t);
        }
        PROBE_BUF.with(|buf| {
            let mut probe = buf.borrow_mut();
            probe_bytes(&trie, cols, key, &mut probe);
            trie.root.collect_prefix(&probe, out);
        });
        idx.scan_counts.remove(&sig);
        idx.registered.insert(sig);
        idx.built.push((spec, trie));
    }

    /// Filtered scan over the canonical `BTreeMap` order.
    fn scan_into(&self, cols: &[usize], key: &[ConstId], out: &mut Vec<Tuple>) {
        out.extend(
            self.tuples
                .keys()
                .filter(|t| {
                    cols.iter().all(|&c| c < t.arity())
                        && cols.iter().zip(key.iter()).all(|(&c, &k)| t.id(c) == k)
                })
                .cloned(),
        );
    }

    /// Drop expired tuples: `gen_ts + window ≤ now`. Returns the expired
    /// tuples ("independently expiring a tuple after sufficient time",
    /// Sec. II-B).
    pub fn expire(&mut self, window: u64, now: u64) -> Vec<Tuple> {
        let expired: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|(_, m)| m.gen_ts + window <= now)
            .map(|(t, _)| t.clone())
            .collect();
        for t in &expired {
            self.remove(t);
        }
        expired
    }
}

thread_local! {
    /// Reusable probe-key buffer: probes are frequent and keys are tiny, so
    /// the hot path must not allocate per call.
    static PROBE_BUF: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Probe key bytes for `trie` into `out`: the bound values' sort keys in
/// the trie's column permutation order (spec columns first, remaining bound
/// columns ascending). By construction of [`canon_spec`] the bound set is
/// exactly the first `cols.len()` columns of the permutation, so this is a
/// whole-column-aligned key prefix.
fn probe_bytes(trie: &Trie, cols: &[usize], key: &[ConstId], out: &mut Vec<u8>) {
    debug_assert_eq!(cols.len(), key.len());
    out.clear();
    let id_at = |c: usize| key[cols.binary_search(&c).expect("probe col missing")];
    for c in trie.spec.iter() {
        out.extend_from_slice(&intern::entry(id_at(c)).sort_key);
    }
    for &c in cols {
        if !trie.spec.contains(c) {
            out.extend_from_slice(&intern::entry(id_at(c)).sort_key);
        }
    }
}

/// A named collection of relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    rels: BTreeMap<Symbol, Relation>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    pub fn relation(&self, p: Symbol) -> Option<&Relation> {
        self.rels.get(&p)
    }

    pub fn relation_mut(&mut self, p: Symbol) -> &mut Relation {
        self.rels.entry(p).or_default()
    }

    pub fn preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    pub fn insert(&mut self, p: Symbol, t: Tuple) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::default())
    }

    pub fn insert_at(&mut self, p: Symbol, t: Tuple, gen_ts: u64) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::at(gen_ts))
    }

    pub fn remove(&mut self, p: Symbol, t: &Tuple) -> bool {
        self.relation_mut(p).remove(t)
    }

    pub fn contains(&self, p: Symbol, t: &Tuple) -> bool {
        self.rels.get(&p).is_some_and(|r| r.contains(t))
    }

    pub fn len_of(&self, p: Symbol) -> usize {
        self.rels.get(&p).map_or(0, Relation::len)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Sorted tuples of a relation — deterministic views for tests/output.
    pub fn sorted(&self, p: Symbol) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .rels
            .get(&p)
            .map(|r| r.tuples().cloned().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Register a persistent index signature on relation `p` (see
    /// [`Relation::register_index`]).
    pub fn register_index(&mut self, p: Symbol, cols: &[usize]) {
        self.relation_mut(p).register_index(cols);
    }

    /// Probe counters summed across all relations.
    pub fn index_stats(&self) -> IndexStatsSnapshot {
        let mut s = IndexStatsSnapshot::default();
        for r in self.rels.values() {
            s.merge(r.index_stats());
        }
        s
    }

    /// Load facts from a text block of `pred(args).` facts (multiple per
    /// line fine; blank lines and `%` comments allowed).
    pub fn load_facts(&mut self, src: &str) -> Result<usize, sensorlog_logic::ParseError> {
        let facts = sensorlog_logic::parse_facts(src)?;
        let n = facts.len();
        for (p, args) in facts {
            self.insert(p, Tuple::new(args));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    fn tup(v: Vec<i64>) -> Tuple {
        Tuple::new(v.into_iter().map(Term::Int).collect())
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn id(n: i64) -> ConstId {
        intern::intern_int(n)
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new();
        assert!(r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(!r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(r.contains(&tup(vec![1, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&tup(vec![1, 2])));
        assert!(!r.remove(&tup(vec![1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_insert_keeps_earlier_timestamp() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert_eq!(r.meta(&tup(vec![1])).unwrap().gen_ts, 10);
    }

    #[test]
    fn reinsert_clears_tombstone() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.mark_deleted(&tup(vec![1]), 15);
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_some());
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_none());
    }

    #[test]
    fn index_select_and_consistency() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        for i in 0..10 {
            r.insert(tup(vec![i % 3, i]), TupleMeta::default());
        }
        let mut out = Vec::new();
        r.select(&[0], &[id(1)], &mut out);
        let expect = (0..10).filter(|i| i % 3 == 1).count();
        assert_eq!(out.len(), expect);
        // Mutations keep the built trie consistent.
        r.insert(tup(vec![1, 100]), TupleMeta::default());
        r.remove(&tup(vec![1, 1]));
        out.clear();
        r.select(&[0], &[id(1)], &mut out);
        assert_eq!(out.len(), expect); // +1 insert, -1 remove
        for t in &out {
            assert_eq!(t.get(0), Term::Int(1));
        }
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2, 3]), TupleMeta::default());
        r.insert(tup(vec![1, 2, 4]), TupleMeta::default());
        r.insert(tup(vec![1, 5, 3]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0, 1], &[id(1), id(2)], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn one_trie_serves_prefix_compatible_signatures() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        r.register_index(&[0, 1]);
        for i in 0..6 {
            r.insert(tup(vec![i % 2, i % 3, i]), TupleMeta::default());
        }
        let mut out = Vec::new();
        r.select(&[0], &[id(1)], &mut out);
        assert_eq!(r.index_stats().builds, 1);
        out.clear();
        // Same canonical spec ([]) — no second build, straight hit.
        r.select(&[0, 1], &[id(1), id(2)], &mut out);
        let s = r.index_stats();
        assert_eq!((s.builds, s.hits), (1, 1));
        assert_eq!(out, vec![tup(vec![1, 2, 5])]);
        assert_eq!(r.built_tries(), vec![Vec::<usize>::new()]);
        // A non-prefix signature gets its own permutation.
        out.clear();
        r.register_index(&[2]);
        r.select(&[2], &[id(4)], &mut out);
        assert_eq!(out, vec![tup(vec![0, 1, 4])]);
        assert_eq!(r.built_tries(), vec![vec![], vec![2]]);
    }

    #[test]
    fn trie_results_in_canonical_order() {
        let mut r = Relation::new();
        r.register_index(&[1]);
        let rows = [
            vec![3, 7, 1],
            vec![1, 7, 2],
            vec![1, 7, 1],
            vec![2, 5, 0],
            vec![1, 7],
        ];
        for v in rows {
            r.insert(tup(v), TupleMeta::default());
        }
        let mut out = Vec::new();
        r.select(&[1], &[id(7)], &mut out);
        let mut expect: Vec<Tuple> = [vec![3, 7, 1], vec![1, 7, 2], vec![1, 7, 1], vec![1, 7]]
            .into_iter()
            .map(tup)
            .collect();
        expect.sort();
        assert_eq!(out, expect, "trie enumeration is canonical tuple order");
    }

    #[test]
    fn mixed_arity_probe_excludes_short_tuples() {
        let mut r = Relation::new();
        r.register_index(&[0, 1]);
        r.insert(tup(vec![1]), TupleMeta::default());
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        r.insert(tup(vec![1, 2, 3]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0, 1], &[id(1), id(2)], &mut out);
        assert_eq!(out, vec![tup(vec![1, 2]), tup(vec![1, 2, 3])]);
    }

    #[test]
    fn visibility_window() {
        let m = TupleMeta::at(100);
        assert!(m.visible_at(100, None));
        assert!(m.visible_at(150, Some(100)));
        assert!(!m.visible_at(200, Some(100))); // 100 + 100 <= 200
        assert!(!m.visible_at(50, None)); // not yet generated
        let mut m = TupleMeta::at(100);
        m.del_ts = Some(120);
        assert!(m.visible_at(110, None));
        assert!(m.visible_at(120, None)); // deleted *at* tau still visible
        assert!(!m.visible_at(121, None));
    }

    #[test]
    fn expiry() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(0));
        r.insert(tup(vec![2]), TupleMeta::at(50));
        let gone = r.expire(100, 100);
        assert_eq!(gone, vec![tup(vec![1])]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn database_load_facts() {
        let mut db = Database::new();
        let n = db
            .load_facts(
                r#"
                % edges
                e(1, 2).
                e(2, 3).
                "#,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.len_of(sym("e")), 2);
        assert!(db.contains(sym("e"), &tup(vec![1, 2])));
        let sorted = db.sorted(sym("e"));
        assert!(sorted[0] < sorted[1]);
    }

    #[test]
    fn unregistered_signature_promotes_after_repeated_scans() {
        let mut r = Relation::new();
        for i in 0..5 {
            r.insert(tup(vec![i, i * 10]), TupleMeta::default());
        }
        let mut out = Vec::new();
        for _ in 0..PROMOTE_AFTER {
            out.clear();
            r.select(&[1], &[id(20)], &mut out);
        }
        let s = r.index_stats();
        assert_eq!(s.scans, (PROMOTE_AFTER - 1) as u64);
        assert_eq!(s.builds, 1, "the PROMOTE_AFTER-th probe builds the trie");
        out.clear();
        r.select(&[1], &[id(20)], &mut out);
        assert_eq!(r.index_stats().hits, 1);
        assert_eq!(out, vec![tup(vec![2, 20])]);
    }

    #[test]
    fn registration_survives_clone_and_rebuilds_on_probe() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0], &[id(1)], &mut out);
        assert_eq!(r.index_stats().builds, 1);
        assert_eq!(r.index_stats().rebuilds, 0);
        let c = r.clone();
        assert_eq!(c.registered_indexes(), vec![vec![0]]);
        assert_eq!(c.index_stats().builds, 0, "stats reset on clone");
        out.clear();
        c.select(&[0], &[id(1)], &mut out);
        let s = c.index_stats();
        assert_eq!(s.builds, 1, "first probe after clone rebuilds");
        assert_eq!(
            s.rebuilds, 1,
            "rebuild of a clone-dropped trie is counted separately"
        );
        assert_eq!(out.len(), 1);
        // A second clone before any probe chains the dropped set through.
        let c2 = c.clone().clone();
        out.clear();
        c2.select(&[0], &[id(1)], &mut out);
        assert_eq!(c2.index_stats().rebuilds, 1);
    }

    #[test]
    fn clone_drops_index_cache_but_keeps_tuples() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0], &[id(1)], &mut out);
        let c = r.clone();
        assert_eq!(c.len(), 1);
        let mut out2 = Vec::new();
        c.select(&[0], &[id(1)], &mut out2);
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn trie_probe_matches_fresh_scan_on_strings_and_apps() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        let rows: Vec<Vec<Term>> = vec![
            vec![Term::atom("a"), Term::Int(1)],
            vec![Term::atom("a"), Term::float(1.5)],
            vec![Term::atom("ab"), Term::Int(2)],
            vec![Term::str("a"), Term::Int(3)],
            vec![
                Term::app("loc", vec![Term::Int(1), Term::Int(2)]),
                Term::Int(4),
            ],
        ];
        for v in &rows {
            r.insert(Tuple::new(v.clone()), TupleMeta::default());
        }
        let probe = intern::intern_term(&Term::atom("a")).unwrap();
        let mut out = Vec::new();
        r.select(&[0], &[probe], &mut out);
        let expect: Vec<Tuple> = r.tuples().filter(|t| t.id(0) == probe).cloned().collect();
        assert_eq!(out, expect);
        assert_eq!(out.len(), 2);
    }
}
