//! Shared experiment machinery: one deployment run summarized into the
//! numbers the tables report.

use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog_core::oracle;
use sensorlog_core::{PassMode, RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SharedSummary, SimConfig, SimTime, Topology, TraceSummary};
use sensorlog_telemetry::{Snapshot, Telemetry};

/// Summary of one deployment run.
#[derive(Clone, Debug)]
pub struct RunPoint {
    pub total_tx: u64,
    pub total_bytes: u64,
    pub max_node_load: u64,
    pub imbalance: f64,
    pub energy_uj: f64,
    pub completeness: f64,
    pub soundness: f64,
    pub expected: usize,
    pub peak_node_memory: usize,
    pub peak_replicas: usize,
    pub peak_derivations: usize,
    pub tx_store: u64,
    pub tx_probe: u64,
    pub tx_result: u64,
    pub delivery_ratio: f64,
    pub final_time: SimTime,
    /// Streaming event-trace counters for the run (messages by kind,
    /// drops by reason, timer volume) — see `sensorlog_netsim::trace`.
    pub trace: TraceSummary,
    /// High-water mark of the simulator's pending event queue.
    pub max_queue_depth: usize,
    /// Per-node storage ceiling from the static analyzer (`sensorlog
    /// check`): sum over predicates of twice the derived tuple bound,
    /// evaluated at this run's observed event counts. `None` when any
    /// predicate's bound is unbounded.
    pub static_bound_total: Option<u64>,
    /// Full telemetry export of the run: per-predicate message counters,
    /// per-phase timings (count / wall-ns / sim-ms), and network-wide
    /// histogram rollups. `run_case` always runs with telemetry enabled,
    /// so every experiment point carries its own breakdown.
    pub snapshot: Snapshot,
}

/// The static analyzer's per-node storage ceiling for a finished run:
/// Σ over predicates of 2·T(p), with T(p) the `sensorlog check` tuple
/// bound evaluated at the run's observed per-predicate event counts.
/// `None` if any predicate is statically unbounded.
pub fn static_bound_total(d: &Deployment) -> Option<u64> {
    let params = sensorlog_logic::diag::BoundParams {
        nodes: d.sim.topology().len() as u64,
        default_events: 0,
        events: d.injected_events().clone(),
    };
    sensorlog_logic::absint::frontier(&d.prog.analysis)
        .bounds
        .values()
        .map(|b| b.eval(&params).map(|t| t.saturating_mul(2)))
        .try_fold(0u64, |acc, t| t.map(|t| acc.saturating_add(t)))
}

/// Run `src` on `topo` with the given strategy/config and workload; check
/// against the oracle on `output`.
#[allow(clippy::too_many_arguments)]
pub fn run_case(
    src: &str,
    topo: Topology,
    strategy: Strategy,
    pass_mode: PassMode,
    sim: SimConfig,
    spatial_radius: Option<f64>,
    events: Vec<WorkloadEvent>,
    output: Symbol,
    horizon: SimTime,
) -> RunPoint {
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            pass_mode,
            spatial_radius,
            ..RtConfig::default()
        },
        sim,
        telemetry: Telemetry::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, cfg)
        .expect("experiment program compiles");
    // Constant-memory trace summary: counters only, no record storage.
    let trace = SharedSummary::new();
    d.sim.set_trace(Box::new(trace.clone()));
    d.schedule_all(events.clone());
    let final_time = d.run(horizon);
    let report = oracle::check(&d, &events, output);
    // Every benchmark run must stay inside the static analyzer's memory
    // and communication envelopes — the bench doubles as a continuous
    // cross-validation of `sensorlog check` (paper Sec. V).
    let bounds = sensorlog_core::invariants::check_static_bounds(&d);
    assert!(bounds.ok(), "static bounds violated in bench run: {bounds}");
    let snapshot = d.telemetry_snapshot();
    // Slack soundness: `diag.bound.slack` is the enforced per-node
    // ceiling 2·T(p) ÷ observed peak per predicate — a value of 0 means
    // some node stored more than the frontier pass promised, i.e. the
    // bound is unsound.
    for g in &snapshot.gauges {
        if g.name == "diag.bound.slack" {
            assert!(
                g.value >= 1,
                "{}: bound slack {} < 1 — static bound unsound",
                g.scope,
                g.value
            );
        }
    }
    let m = d.metrics();
    RunPoint {
        total_tx: m.total_tx(),
        total_bytes: m.total_tx_bytes(),
        max_node_load: m.max_node_load(),
        imbalance: m.imbalance(),
        energy_uj: m.total_energy_uj(),
        completeness: report.completeness(),
        soundness: report.soundness(),
        expected: report.expected,
        peak_node_memory: d.peak_node_memory(),
        peak_replicas: d
            .node_stats()
            .iter()
            .map(|s| s.peak_replicas)
            .max()
            .unwrap_or(0),
        peak_derivations: d
            .node_stats()
            .iter()
            .map(|s| s.peak_derivations)
            .max()
            .unwrap_or(0),
        tx_store: m.tx_of("store"),
        tx_probe: m.tx_of("probe"),
        tx_result: m.tx_of("result"),
        delivery_ratio: m.delivery_ratio(),
        final_time,
        trace: trace.snapshot(),
        max_queue_depth: d.sim.max_queue_depth(),
        static_bound_total: static_bound_total(&d),
        snapshot,
    }
}

/// The strategies compared throughout the join experiments.
pub fn join_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Perpendicular { band_width: 1.0 },
        Strategy::Centroid,
        Strategy::NaiveBroadcast,
        Strategy::LocalStorage,
    ]
}

/// A fully-specified deployment run — everything [`run_case`] needs, owned,
/// so a sweep can be described up front and executed on any worker thread.
#[derive(Clone)]
pub struct CaseSpec {
    pub src: String,
    pub topo: Topology,
    pub strategy: Strategy,
    pub pass_mode: PassMode,
    pub sim: SimConfig,
    pub spatial_radius: Option<f64>,
    pub events: Vec<WorkloadEvent>,
    pub output: Symbol,
    pub horizon: SimTime,
}

impl CaseSpec {
    pub fn run(&self) -> RunPoint {
        run_case(
            &self.src,
            self.topo.clone(),
            self.strategy,
            self.pass_mode,
            self.sim.clone(),
            self.spatial_radius,
            self.events.clone(),
            self.output,
            self.horizon,
        )
    }
}

/// Worker threads for [`run_cases`]: `SENSORLOG_BENCH_THREADS` if set and
/// nonzero, else the machine's available parallelism.
pub fn bench_threads() -> usize {
    match std::env::var("SENSORLOG_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Run every case, fanning out across [`bench_threads`] worker threads.
/// Each case is an independent, deterministic, single-threaded simulation;
/// results come back in spec order, so tables built from them are
/// byte-identical to a serial run (see `tests/parallel_driver.rs`).
pub fn run_cases(specs: &[CaseSpec]) -> Vec<RunPoint> {
    run_cases_with(specs, bench_threads())
}

/// [`run_cases`] with an explicit worker count (1 = serial reference).
pub fn run_cases_with(specs: &[CaseSpec], threads: usize) -> Vec<RunPoint> {
    let threads = threads.clamp(1, specs.len().max(1));
    if threads == 1 {
        return specs.iter().map(CaseSpec::run).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<RunPoint>> = (0..specs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= specs.len() {
                            break done;
                        }
                        done.push((i, specs[i].run()));
                    }
                })
            })
            .collect();
        for w in workers {
            for (i, p) in w.join().expect("bench worker panicked") {
                slots[i] = Some(p);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every case ran"))
        .collect()
}
