//! Fig. 8: the shortest-path-tree programs (Example 3) vs. the procedural
//! flood baseline — total messages and convergence time vs. network size.
//!
//! Three contenders:
//! * `logicH` — the paper's Example 3 program, verbatim;
//! * `logicJ` — the improved program the paper references in Secs. V/VI:
//!   the per-edge argument of `h` is dropped (`j(y, d)` = "y is at depth
//!   d"), shrinking both the derived tables and the derivation sets;
//! * `flood` — the hand-written BFS beacon protocol (the Kairos-style
//!   procedural comparator).

use crate::table::Table;
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Term};
use sensorlog_netsim::NodeId;
use sensorlog_netsim::{SimConfig, Topology};
use sensorlog_netstack::flood::run_flood;

pub const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

pub const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

/// Run one deductive tree construction; returns (messages, converged-at ms,
/// depths correct?).
fn run_deductive(src: &str, out_pred: &str, m: u32) -> (u64, u64, bool) {
    let topo = Topology::square_grid(m);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig::default(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    let converged = d.run(200_000_000);
    let results = d.results(Symbol::intern(out_pred));
    // Verify BFS depths: node (x, y) at depth x + y from corner 0.
    let depth_pos = if out_pred == "h" { (1, 2) } else { (0, 1) };
    let mut ok = true;
    for node in topo.nodes() {
        let (x, y) = topo.grid_coords(node).unwrap();
        let want = (x + y) as i64;
        let depths: Vec<i64> = results
            .iter()
            .filter(|t| t.get(depth_pos.0) == Term::Int(node.0 as i64))
            .map(|t| t.get(depth_pos.1).as_i64().unwrap())
            .collect();
        if depths.is_empty() || depths.iter().any(|&d| d != want) {
            ok = false;
        }
    }
    (d.metrics().total_tx(), converged, ok)
}

/// Fig. 8: messages and convergence time for logicH / logicJ / flood.
pub fn fig8() -> Table {
    let mut t = Table::new(
        "fig8",
        "shortest-path tree: messages (and convergence s) vs grid size",
        &[
            "m",
            "logicH msgs",
            "logicH s",
            "logicJ msgs",
            "logicJ s",
            "flood msgs",
            "flood s",
        ],
    );
    for m in [3u32, 4, 5] {
        let (h_msgs, h_t, h_ok) = run_deductive(LOGIC_H, "h", m);
        let (j_msgs, j_t, j_ok) = run_deductive(LOGIC_J, "j", m);
        assert!(h_ok, "logicH wrong tree at m={m}");
        assert!(j_ok, "logicJ wrong tree at m={m}");
        let flood = run_flood(&Topology::square_grid(m), NodeId(0), SimConfig::default());
        t.row(vec![
            m.to_string(),
            h_msgs.to_string(),
            format!("{:.1}", h_t as f64 / 1000.0),
            j_msgs.to_string(),
            format!("{:.1}", j_t as f64 / 1000.0),
            flood.total_messages.to_string(),
            format!("{:.1}", flood.converged_at as f64 / 1000.0),
        ]);
    }
    t
}
