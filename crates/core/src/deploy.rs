//! Deployment harness: compile a program, stand up a simulated network of
//! [`SensorlogNode`]s, inject workload events, run to quiescence, and
//! collect results + communication metrics.

use crate::durable::DurableStore;
use crate::partial::RuleShape;
use crate::plan::{compile_source, DistProgram, PlanTiming};
use crate::prov::{ProvRecord, Provenance};
use crate::runtime::{NetInfo, NodeStats, RtConfig, SensorlogNode};
use crate::strategy::Strategy;
use sensorlog_eval::UpdateKind;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::{
    FaultSchedule, Metrics, NodeId, SharedJournal, SimConfig, SimTime, Simulator, Topology,
};
use sensorlog_netstack::ght;
use sensorlog_telemetry::{MetricsRegistry, Scope, Snapshot, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// One workload event: a reading generated or retracted at a node.
#[derive(Clone, Debug)]
pub struct WorkloadEvent {
    pub at: SimTime,
    pub node: NodeId,
    pub pred: Symbol,
    pub tuple: Tuple,
    pub kind: UpdateKind,
}

impl WorkloadEvent {
    /// Parse the event-script line format used by the CLI:
    /// `+<at_ms> @<node> fact(args).` inserts, `-…` deletes.
    pub fn parse_line(line: &str) -> Result<WorkloadEvent, String> {
        let line = line.trim();
        let (kind, rest) = match line.split_at(1.min(line.len())) {
            ("+", r) => (UpdateKind::Insert, r),
            ("-", r) => (UpdateKind::Delete, r),
            _ => return Err(format!("event line must start with + or -: `{line}`")),
        };
        let mut parts = rest.splitn(3, ' ');
        let at: SimTime = parts
            .next()
            .ok_or("missing timestamp")?
            .parse()
            .map_err(|e| format!("bad timestamp in `{line}`: {e}"))?;
        let node_part = parts.next().ok_or("missing @node")?;
        let node: u32 = node_part
            .strip_prefix('@')
            .ok_or_else(|| format!("expected @node in `{line}`"))?
            .parse()
            .map_err(|e| format!("bad node id in `{line}`: {e}"))?;
        let fact = parts.next().ok_or("missing fact")?;
        let (pred, terms) =
            sensorlog_logic::parse_fact(fact).map_err(|e| format!("bad fact in `{line}`: {e}"))?;
        Ok(WorkloadEvent {
            at,
            node: NodeId(node),
            pred,
            tuple: Tuple::new(terms),
            kind,
        })
    }

    /// Parse a whole event script (blank lines / `%` comments skipped).
    pub fn parse_script(text: &str) -> Result<Vec<WorkloadEvent>, String> {
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            out.push(WorkloadEvent::parse_line(line)?);
        }
        Ok(out)
    }
}

/// Full deployment configuration.
#[derive(Clone, Debug, Default)]
pub struct DeployConfig {
    pub rt: RtConfig,
    pub sim: SimConfig,
    pub plan: PlanTiming,
    /// Telemetry handle shared by the simulator and every node (disabled by
    /// default — a disabled handle costs one branch per recording site).
    pub telemetry: Telemetry,
    /// Provenance recording handle shared by every node (disabled by
    /// default). Enable with [`Provenance::enabled`] to capture the
    /// cross-node lineage records `sensorlog-provenance` builds its causal
    /// DAG from; a pure observer either way.
    pub provenance: Provenance,
}

/// A running deployment.
pub struct Deployment {
    pub sim: Simulator<SensorlogNode>,
    pub prog: Arc<DistProgram>,
    pub strategy: Strategy,
    schedule: Vec<WorkloadEvent>,
    /// Insert events applied per base predicate — the observed `E(p)` the
    /// static memory bounds are evaluated against at cross-validation time.
    injected: BTreeMap<Symbol, u64>,
    /// Workload events that actually entered the network (the target node
    /// was alive at injection time). The convergence checker's "surviving
    /// EDB" is computed from these, not from the full schedule.
    applied: Vec<WorkloadEvent>,
    /// The shared provenance handle (disabled unless configured).
    prov: Provenance,
    /// Per-node durable stores (fault plane only; empty otherwise). Held
    /// here so they survive app rebuilds on restart.
    durables: Vec<Arc<Mutex<DurableStore>>>,
    /// Whether the runtime fault plane was configured on.
    faults_cfg: bool,
}

impl Deployment {
    /// Compile `src` and deploy it on `topo`.
    pub fn new(
        src: &str,
        reg: BuiltinRegistry,
        topo: Topology,
        config: DeployConfig,
    ) -> Result<Deployment, crate::plan::CompileError> {
        let mut rt = config.rt.clone();
        // τc must agree with the simulator's skew bound (Theorem 3).
        rt.tau_c = rt.tau_c.max(config.sim.clock_skew_max);
        let prog = Arc::new(compile_source(src, reg, config.plan)?);
        let net = Arc::new(NetInfo::new(topo.clone()));
        let cfg = Arc::new(rt);
        let shapes = Arc::new(
            prog.analysis
                .program
                .rules
                .iter()
                .map(RuleShape::of)
                .collect::<Vec<_>>(),
        );
        let prog2 = Arc::clone(&prog);
        let tele = config.telemetry.clone();
        let durables: Vec<Arc<Mutex<DurableStore>>> = match &cfg.faults {
            Some(f) => (0..topo.len())
                .map(|_| Arc::new(Mutex::new(DurableStore::new(f.checkpoint_every))))
                .collect(),
            None => Vec::new(),
        };
        let faults_cfg = cfg.faults.is_some();
        let durables2 = durables.clone();
        let prov = config.provenance.clone();
        let prov2 = prov.clone();
        let mut sim = Simulator::new(topo, config.sim, move |id, _| {
            let node = SensorlogNode::new(
                id,
                Arc::clone(&prog2),
                Arc::clone(&cfg),
                Arc::clone(&net),
                Arc::clone(&shapes),
                tele.clone(),
            )
            .with_provenance(prov2.clone());
            match durables2.get(id.index()) {
                Some(d) => node.with_durable(Arc::clone(d)),
                None => node,
            }
        });
        sim.set_telemetry(config.telemetry.clone());
        let mut d = Deployment {
            sim,
            prog,
            strategy: config.rt.strategy,
            schedule: Vec::new(),
            injected: BTreeMap::new(),
            applied: Vec::new(),
            prov,
            durables,
            faults_cfg,
        };
        d.inject_static_facts();
        Ok(d)
    }

    /// Inject the program's ground facts (empty-body rules) at their owner
    /// nodes.
    fn inject_static_facts(&mut self) {
        let facts = self.prog.static_facts.clone();
        for (pred, tuple) in facts {
            let owner = match self.strategy {
                Strategy::Centroid => Strategy::center(self.sim.topology()),
                _ => ght::owner_of(self.sim.topology(), pred, &tuple),
            };
            self.sim.invoke(owner, |node, ctx| {
                node.inject_static(ctx, pred, tuple.clone());
            });
        }
    }

    /// Attach a fresh event journal to the simulator and return a shared
    /// handle to it. Every subsequent simulator event (send, deliver,
    /// drop, timer, node failure) is recorded; snapshot or take the
    /// journal after `run` for replay checking and trace summaries.
    pub fn attach_journal(&mut self) -> SharedJournal {
        let journal = SharedJournal::new(self.sim.config.seed);
        self.sim.set_trace(Box::new(journal.clone()));
        journal
    }

    /// Force the sharded scheduler into lockstep windows even when few
    /// events are pending (it falls back to serial single-event stepping
    /// below a pending-queue threshold). Testing/benchmark hook; no effect
    /// under the wheel or heap backends.
    pub fn set_shard_threshold(&mut self, min_pending: usize) {
        self.sim.set_shard_threshold(min_pending);
    }

    /// Toggle worker threads for the sharded scheduler (windows run inline
    /// on the calling thread when off — same schedule, no spawn overhead).
    /// Benchmark hook; no effect under the wheel or heap backends.
    pub fn set_shard_threading(&mut self, on: bool) {
        self.sim.set_shard_threading(on);
    }

    /// Scheduler-backend counters (queue ops, wheel tiers, shard windows
    /// and critical-path nanoseconds) for the run so far.
    pub fn sched_stats(&self) -> sensorlog_netsim::SchedStats {
        self.sim.sched_stats()
    }

    /// Queue a workload event (applied in `run`).
    pub fn schedule(&mut self, ev: WorkloadEvent) {
        self.schedule.push(ev);
    }

    pub fn schedule_all(&mut self, evs: impl IntoIterator<Item = WorkloadEvent>) {
        self.schedule.extend(evs);
    }

    /// Run the simulation, interleaving scheduled workload events, until
    /// all events at or before `horizon` fired and the network quiesces.
    /// Returns the final simulated time. May be called repeatedly (e.g.
    /// schedule → run to t → `fail_node` → schedule more → run on).
    pub fn run(&mut self, horizon: SimTime) -> SimTime {
        self.schedule.sort_by_key(|e| e.at);
        let mut remaining = Vec::new();
        for ev in std::mem::take(&mut self.schedule) {
            if ev.at > horizon {
                remaining.push(ev);
                continue;
            }
            self.sim.run_until(ev.at);
            if self.sim.is_failed(ev.node) {
                continue; // a dead sensor senses nothing
            }
            if ev.kind == UpdateKind::Insert {
                *self.injected.entry(ev.pred).or_insert(0) += 1;
            }
            self.sim.invoke(ev.node, |node, ctx| match ev.kind {
                UpdateKind::Insert => node.generate(ctx, ev.pred, ev.tuple.clone()),
                UpdateKind::Delete => node.retract(ctx, ev.pred, ev.tuple.clone()),
            });
            self.applied.push(ev);
        }
        self.schedule = remaining;
        let t = self.sim.run_to_quiescence(horizon);
        #[cfg(debug_assertions)]
        if self.sim.is_quiescent() {
            for (kind, tx, rx, lost) in self.sim.metrics.kind_balance() {
                debug_assert_eq!(
                    tx,
                    rx + lost,
                    "message conservation violated for kind `{kind}`"
                );
            }
        }
        t
    }

    /// Crash a node mid-run (fault-injection experiments). Readings it
    /// would have generated are silently dropped, and its owned results
    /// become unreachable.
    pub fn fail_node(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    /// Attach a scripted fault schedule (crashes, restarts, partitions,
    /// dup/reorder windows). Applied tick-exactly during `run` under every
    /// scheduler backend.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.sim.set_fault_schedule(schedule);
    }

    /// True when faults can occur on this deployment: the runtime fault
    /// plane was configured, a schedule was attached, or a node was ever
    /// crashed manually. Gates the structural checks that only hold on
    /// fault-free runs (e.g. derivation-count non-negativity).
    pub fn faults_active(&self) -> bool {
        self.faults_cfg || self.sim.faults_injected()
    }

    /// Workload events that actually entered the network (target alive at
    /// injection time), in application order.
    pub fn applied_events(&self) -> &[WorkloadEvent] {
        &self.applied
    }

    /// The durable store of node `id` (fault plane only).
    pub fn durable(&self, id: NodeId) -> Option<&Arc<Mutex<DurableStore>>> {
        self.durables.get(id.index())
    }

    /// The deployment's shared provenance handle (disabled unless
    /// `DeployConfig::provenance` was enabled).
    pub fn provenance(&self) -> &Provenance {
        &self.prov
    }

    /// Copy of the provenance records captured so far (empty when the
    /// plane is disabled).
    pub fn provenance_records(&self) -> Vec<ProvRecord> {
        self.prov.snapshot()
    }

    /// Gather the live result tuples of `pred` across all owner nodes (or
    /// from the central server under Centroid).
    pub fn results(&self, pred: Symbol) -> BTreeSet<Tuple> {
        let mut out = BTreeSet::new();
        for id in self.sim.topology().nodes() {
            if self.sim.is_failed(id) {
                continue; // a dead owner's results are unreachable
            }
            let node = self.sim.node(id);
            if let Some(engine) = &node.center_engine {
                out.extend(engine.db.sorted(pred));
            }
            out.extend(node.owned_live(pred));
        }
        out
    }

    /// Communication metrics of the run.
    pub fn metrics(&self) -> &Metrics {
        &self.sim.metrics
    }

    /// Insert events applied so far, per base predicate (observed `E(p)`).
    pub fn injected_events(&self) -> &BTreeMap<Symbol, u64> {
        &self.injected
    }

    /// Export the run's full telemetry as one [`Snapshot`]: the simulator's
    /// per-node / per-kind traffic registry, the deployment-level registry
    /// (per-predicate counters, byte/latency histograms), phase timings,
    /// and per-node runtime stats rolled up as global gauges. Works whether
    /// or not `DeployConfig::telemetry` was enabled (the simulator metrics
    /// and node stats are always collected).
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        snap.meta
            .insert("nodes".into(), self.sim.topology().len().to_string());
        snap.meta
            .insert("strategy".into(), self.strategy.name().to_string());
        snap.meta
            .insert("seed".into(), self.sim.config.seed.to_string());
        snap.meta
            .insert("sim_time_ms".into(), self.sim.now().to_string());
        snap.absorb_registry(self.sim.metrics.registry());
        if let Some(reg) = self.sim.telemetry().registry() {
            snap.absorb_registry(&reg);
        }
        snap.absorb_profiler(&self.sim.telemetry().profiler());
        // Scheduler operation counters (wheel tiers are zero under the
        // heap backend; batching is backend-independent).
        let sched = self.sim.sched_stats();
        // Per-node runtime stats, rolled up network-wide.
        let mut rollup = MetricsRegistry::new();
        rollup.bump(Scope::Global, "sched.pushes", sched.pushes);
        rollup.bump(Scope::Global, "sched.batched_msgs", sched.batched_msgs);
        rollup.bump(Scope::Global, "sched.ring_pushes", sched.ring_pushes);
        rollup.bump(Scope::Global, "sched.spill_pushes", sched.spill_pushes);
        rollup.bump(Scope::Global, "sched.migrations", sched.migrations);
        rollup.bump(
            Scope::Global,
            "sched.window_advances",
            sched.window_advances,
        );
        // Shard-backend gauges (all zero under the serial backends):
        // lockstep windows, barrier-mailbox traffic, serial-fallback events,
        // and the summed busy / critical-path nanoseconds whose ratio is
        // the model parallel speedup.
        rollup.bump(Scope::Global, "sched.shard.windows", sched.shard_windows);
        rollup.bump(
            Scope::Global,
            "sched.shard.cross_msgs",
            sched.shard_cross_msgs,
        );
        rollup.bump(
            Scope::Global,
            "sched.shard.serial_events",
            sched.shard_serial_events,
        );
        rollup.bump(Scope::Global, "sched.shard.work_ns", sched.shard_work_ns);
        rollup.bump(Scope::Global, "sched.shard.crit_ns", sched.shard_crit_ns);
        rollup.gauge_set(Scope::Global, "sched.shard.regions", sched.shard_regions);
        let mut idx = sensorlog_eval::IndexStatsSnapshot::default();
        for n in self.sim.nodes() {
            idx.merge(n.index_stats());
        }
        rollup.bump(Scope::Global, "join.index.hits", idx.hits);
        rollup.bump(Scope::Global, "join.index.builds", idx.builds);
        rollup.bump(Scope::Global, "join.index.scans", idx.scans);
        rollup.bump(Scope::Global, "join.index.rebuilds", idx.rebuilds);
        // Boxed-term resolves at the intern boundary (display, lineage,
        // aggregates, message encode). Hot-path resolves must stay zero —
        // gated by the `intern` bench smoke in CI, surfaced here for
        // operators.
        let rc = sensorlog_logic::intern::resolve_counts();
        rollup.gauge_set(Scope::Global, "intern.boundary.resolves", rc.boundary);
        rollup.gauge_set(Scope::Global, "intern.hot.resolves", rc.hot);
        for n in self.sim.nodes() {
            for (&pred, &peak) in &n.peak_pred_stored {
                rollup.gauge_max(Scope::Pred(pred.as_str()), "peak_stored", peak as u64);
            }
            rollup.gauge_max(Scope::Global, "peak_replicas", n.stats.peak_replicas as u64);
            rollup.gauge_max(
                Scope::Global,
                "peak_derivations",
                n.stats.peak_derivations as u64,
            );
            rollup.bump(Scope::Global, "probes_processed", n.stats.probes_processed);
            rollup.bump(Scope::Global, "results_emitted", n.stats.results_emitted);
            rollup.bump(Scope::Global, "routing_drops", n.stats.routing_drops);
        }
        rollup.gauge_set(
            Scope::Global,
            "peak_node_memory",
            self.peak_node_memory() as u64,
        );
        // Static-bound cross-validation: how many observed peaks / message
        // totals exceeded what `logic::diag` promised. Zero on any healthy
        // run — asserted by the telemetry and distributed tests.
        rollup.gauge_set(
            Scope::Global,
            "diag.bound.violations",
            crate::invariants::check_static_bounds(self)
                .violations
                .len() as u64,
        );
        // Bound tightness: the enforced per-node ceiling 2·T(p) (one
        // replica + one owned copy per distinct tuple, exactly what
        // `check_static_bounds` asserts) ÷ the network-wide per-node peak,
        // per predicate. A value of 0 therefore always means a bound
        // violation; the frontier pass targets single-digit slack on the
        // grid examples (the legacy S·Σ bounds sat near 100).
        let fr = sensorlog_logic::absint::frontier(&self.prog.analysis);
        let params = sensorlog_logic::diag::BoundParams {
            nodes: self.sim.topology().len() as u64,
            default_events: 0,
            events: self.injected_events().clone(),
        };
        let mut peaks: BTreeMap<Symbol, u64> = BTreeMap::new();
        for n in self.sim.nodes() {
            for (&pred, &peak) in &n.peak_pred_stored {
                let e = peaks.entry(pred).or_insert(0);
                *e = (*e).max(peak as u64);
            }
        }
        for (pred, peak) in peaks {
            if peak == 0 {
                continue;
            }
            if let Some(t) = fr.bounds.get(&pred).and_then(|b| b.eval(&params)) {
                rollup.gauge_set(
                    Scope::Pred(pred.as_str()),
                    "diag.bound.slack",
                    t.saturating_mul(2) / peak,
                );
            }
        }
        snap.absorb_registry(&rollup);
        snap
    }

    /// Per-node stats (Table 1 memory accounting).
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.sim.nodes().map(|n| n.stats).collect()
    }

    /// Peak per-node memory in stored items (replicas + derivations).
    pub fn peak_node_memory(&self) -> usize {
        self.sim
            .nodes()
            .map(|n| n.stats.peak_replicas + n.stats.peak_derivations)
            .max()
            .unwrap_or(0)
    }

    /// Access the node application at `id`.
    pub fn node(&self, id: NodeId) -> &SensorlogNode {
        self.sim.node(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    #[test]
    fn event_line_roundtrip() {
        let ev = WorkloadEvent::parse_line(r#"+1500 @7 veh("enemy", 10, 1)."#).unwrap();
        assert_eq!(ev.at, 1_500);
        assert_eq!(ev.node, NodeId(7));
        assert_eq!(ev.kind, UpdateKind::Insert);
        assert_eq!(ev.pred, Symbol::intern("veh"));
        assert_eq!(ev.tuple.get(1), Term::Int(10));
        let del = WorkloadEvent::parse_line("-99 @0 g(1, 2).").unwrap();
        assert_eq!(del.kind, UpdateKind::Delete);
    }

    #[test]
    fn event_line_errors() {
        assert!(WorkloadEvent::parse_line("1500 @7 p(1).").is_err()); // no sign
        assert!(WorkloadEvent::parse_line("+x @7 p(1).").is_err()); // bad ts
        assert!(WorkloadEvent::parse_line("+1 7 p(1).").is_err()); // no @
        assert!(WorkloadEvent::parse_line("+1 @7 p(X).").is_err()); // non-ground
        assert!(WorkloadEvent::parse_line("").is_err());
    }

    #[test]
    fn provenance_capture_spans_all_record_kinds() {
        let src = r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#;
        let topo = sensorlog_netsim::Topology::square_grid(4);
        let config = DeployConfig {
            provenance: Provenance::enabled(),
            ..DeployConfig::default()
        };
        let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, config).unwrap();
        let mk = |p: &str, a: i64, b: i64| {
            (
                Symbol::intern(p),
                Tuple::new(vec![Term::Int(a), Term::Int(b)]),
            )
        };
        let (p1, t1) = mk("r1", 1, 7);
        let (p2, t2) = mk("r2", 2, 7);
        d.schedule_all([
            WorkloadEvent {
                at: 10,
                node: NodeId(1),
                pred: p1,
                tuple: t1,
                kind: UpdateKind::Insert,
            },
            WorkloadEvent {
                at: 20,
                node: NodeId(14),
                pred: p2,
                tuple: t2,
                kind: UpdateKind::Insert,
            },
        ]);
        d.run(60_000);
        assert_eq!(d.results(Symbol::intern("q")).len(), 1);
        let recs = d.provenance_records();
        let has = |f: fn(&ProvRecord) -> bool| recs.iter().any(f);
        assert!(has(|r| matches!(r, ProvRecord::Edb { .. })), "no Edb leaf");
        assert!(
            has(|r| matches!(r, ProvRecord::Deriv { sign: 1, .. })),
            "no Deriv delta"
        );
        assert!(
            has(|r| matches!(
                r,
                ProvRecord::Mint {
                    kind: UpdateKind::Insert,
                    ..
                }
            )),
            "no Mint"
        );
        assert!(has(|r| matches!(r, ProvRecord::Hop { .. })), "no Hop");
        // The JSONL round-trip holds on real runtime output too.
        let text = crate::prov::to_jsonl(&recs);
        assert_eq!(crate::prov::from_jsonl(&text).unwrap(), recs);
    }

    #[test]
    fn script_skips_comments_and_blanks() {
        let evs = WorkloadEvent::parse_script(
            r#"
            % a comment
            +10 @0 p(1).

            -20 @1 p(1).
            "#,
        )
        .unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].kind, UpdateKind::Delete);
    }
}
