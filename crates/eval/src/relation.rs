//! Relations and databases.
//!
//! A [`Relation`] is a set of ground tuples with per-tuple metadata
//! (generation timestamp, optional deletion timestamp — Definition 2 / the
//! tombstone discipline of Sec. IV-B). Relations maintain lazy hash indexes
//! keyed by bound-column subsets so body evaluation avoids full scans.

use parking_lot::RwLock;
use sensorlog_logic::{Symbol, Term, Tuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-tuple metadata.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct TupleMeta {
    /// Generation timestamp (simulated ms; 0 for batch evaluation).
    pub gen_ts: u64,
    /// Tombstone: local timestamp of deletion, if deleted (Sec. IV-B keeps
    /// deleted replicas around with their deletion-timestamp recorded).
    pub del_ts: Option<u64>,
}

impl TupleMeta {
    pub fn at(gen_ts: u64) -> TupleMeta {
        TupleMeta {
            gen_ts,
            del_ts: None,
        }
    }

    /// Visibility under the timestamp discipline of Theorem 3: a probe with
    /// update-timestamp `tau` over a window of `window` ms sees tuples with
    /// `gen_ts ≤ tau`, `gen_ts > tau − window`, and no deletion-timestamp
    /// `< tau`.
    pub fn visible_at(&self, tau: u64, window: Option<u64>) -> bool {
        if self.gen_ts > tau {
            return false;
        }
        if let Some(w) = window {
            if self.gen_ts + w <= tau {
                return false;
            }
        }
        match self.del_ts {
            Some(d) => d >= tau,
            None => true,
        }
    }
}

type Index = HashMap<Vec<Term>, Vec<Tuple>>;

/// An unregistered signature is probed by scanning this many times before
/// it is promoted to a persistent index — a safety net for probe paths the
/// static planner doesn't enumerate (seeded XY stages, ad-hoc queries).
const PROMOTE_AFTER: u32 = 4;

/// Index machinery behind one lock: built indexes, the registered
/// (persistent) signatures, and scan counts driving auto-promotion.
#[derive(Debug, Default)]
struct IndexStore {
    /// Built indexes: column positions → (key values → sorted tuples).
    /// Kept consistent on insert/remove; postings stay in canonical tuple
    /// order so probe results are independent of build/maintenance history.
    built: HashMap<Vec<usize>, Index>,
    /// Persistent signatures — the bound-position sets the planner probes
    /// (`crate::planner`). Registration survives [`Relation::clone`]; the
    /// index itself is rebuilt on first probe and maintained from then on.
    registered: BTreeSet<Vec<usize>>,
    /// Probe counts for unregistered signatures (promotion heuristic).
    scan_counts: HashMap<Vec<usize>, u32>,
}

/// Probe counters for `join.index.*` telemetry. Relaxed atomics: probes
/// take `&self`, and the counts are only read for snapshots.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Probes served by a maintained index.
    pub hits: AtomicU64,
    /// Index builds (first probe of a registered/promoted signature).
    pub builds: AtomicU64,
    /// Probes served by a filtered scan (unregistered signature).
    pub scans: AtomicU64,
}

/// Owned snapshot of [`IndexStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStatsSnapshot {
    pub hits: u64,
    pub builds: u64,
    pub scans: u64,
}

impl IndexStatsSnapshot {
    pub fn merge(&mut self, other: IndexStatsSnapshot) {
        self.hits += other.hits;
        self.builds += other.builds;
        self.scans += other.scans;
    }
}

/// A set of ground tuples with metadata and persistent column indexes.
///
/// Tuples are kept in a `BTreeMap` so iteration order is the canonical tuple
/// order, identical across processes. This matters in the distributed
/// runtime: iteration order here feeds join-probe solution order and hence
/// message emission order; with a hash map the order would vary with the
/// per-process hasher seed and replays would diverge under message loss.
/// Index postings are kept sorted for the same reason: probe results are in
/// canonical order no matter when the index was built.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: BTreeMap<Tuple, TupleMeta>,
    /// See [`IndexStore`]. `RwLock` because index building and promotion
    /// happen during `&self` lookups.
    indexes: RwLock<IndexStore>,
    stats: IndexStats,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Built indexes are a cache: don't copy them. Registrations are
        // *policy* and survive the clone — the planner's signatures keep
        // paying off after the semi-naive engine clones its working EDB.
        Relation {
            tuples: self.tuples.clone(),
            indexes: RwLock::new(IndexStore {
                built: HashMap::new(),
                registered: self.indexes.read().registered.clone(),
                scan_counts: HashMap::new(),
            }),
            stats: IndexStats::default(),
        }
    }
}

impl Relation {
    pub fn new() -> Relation {
        Relation::default()
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    pub fn meta(&self, t: &Tuple) -> Option<&TupleMeta> {
        self.tuples.get(t)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &TupleMeta)> {
        self.tuples.iter()
    }

    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.keys()
    }

    /// Insert a tuple; returns true if it was new. Re-inserting an existing
    /// tuple keeps the *earlier* generation timestamp ("later duplicates …
    /// are not considered as generations", Sec. III-B) but clears any
    /// tombstone.
    pub fn insert(&mut self, t: Tuple, meta: TupleMeta) -> bool {
        match self.tuples.entry(t.clone()) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().del_ts = None;
                false
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(meta);
                let mut idx = self.indexes.write();
                for (cols, map) in idx.built.iter_mut() {
                    let key = key_of(&t, cols);
                    let v = map.entry(key).or_default();
                    // Sorted insertion keeps postings canonical.
                    let pos = v.partition_point(|x| x < &t);
                    v.insert(pos, t.clone());
                }
                true
            }
        }
    }

    /// Physically remove a tuple; returns true if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.tuples.remove(t).is_some() {
            let mut idx = self.indexes.write();
            for (cols, map) in idx.built.iter_mut() {
                let key = key_of(t, cols);
                if let Some(v) = map.get_mut(&key) {
                    v.retain(|x| x != t);
                    if v.is_empty() {
                        map.remove(&key);
                    }
                }
            }
            true
        } else {
            false
        }
    }

    /// Record a tombstone without removing the tuple (distributed replicas:
    /// "we do not remove the replicated copies … but only record its
    /// deletion-timestamp", Sec. IV-B).
    pub fn mark_deleted(&mut self, t: &Tuple, del_ts: u64) -> bool {
        match self.tuples.get_mut(t) {
            Some(m) => {
                m.del_ts = Some(m.del_ts.map_or(del_ts, |d| d.min(del_ts)));
                true
            }
            None => false,
        }
    }

    /// Register `cols` as a persistent index signature: the index is built
    /// on the first probe and maintained through insert/delete from then
    /// on, and the registration survives [`Clone`]. `cols` must be sorted
    /// and non-empty.
    pub fn register_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty() && cols.windows(2).all(|w| w[0] < w[1]));
        self.indexes.write().registered.insert(cols.to_vec());
    }

    /// Registered index signatures, sorted.
    pub fn registered_indexes(&self) -> Vec<Vec<usize>> {
        self.indexes.read().registered.iter().cloned().collect()
    }

    /// Probe counters (see [`IndexStats`]).
    pub fn index_stats(&self) -> IndexStatsSnapshot {
        IndexStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            builds: self.stats.builds.load(Ordering::Relaxed),
            scans: self.stats.scans.load(Ordering::Relaxed),
        }
    }

    /// Contents of the built index on `cols`, sorted by key — diagnostics
    /// and the index-maintenance property test. `None` if not built.
    pub fn index_contents(&self, cols: &[usize]) -> Option<Vec<(Vec<Term>, Vec<Tuple>)>> {
        let idx = self.indexes.read();
        let map = idx.built.get(cols)?;
        let mut v: Vec<(Vec<Term>, Vec<Tuple>)> =
            map.iter().map(|(k, ts)| (k.clone(), ts.clone())).collect();
        v.sort();
        Some(v)
    }

    /// Tuples whose argument values at `cols` equal `key`, in canonical
    /// tuple order. `cols` must be sorted and non-empty.
    ///
    /// Probe policy: a built index answers directly; a registered (or
    /// promoted) signature builds its index on first probe and keeps it
    /// maintained; anything else is a filtered scan — cheap for one-shot
    /// probes, counted toward promotion so a hot unregistered signature
    /// stops rescanning after [`PROMOTE_AFTER`] probes.
    pub fn select(&self, cols: &[usize], key: &[Term], out: &mut Vec<Tuple>) {
        debug_assert!(!cols.is_empty());
        {
            let idx = self.indexes.read();
            if let Some(map) = idx.built.get(cols) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(v) = map.get(key) {
                    out.extend(v.iter().cloned());
                }
                return;
            }
        }
        let mut idx = self.indexes.write();
        let promote = idx.registered.contains(cols) || {
            let c = idx.scan_counts.entry(cols.to_vec()).or_insert(0);
            *c += 1;
            *c >= PROMOTE_AFTER
        };
        if !promote {
            drop(idx);
            self.stats.scans.fetch_add(1, Ordering::Relaxed);
            // BTreeMap iteration: results are already in canonical order.
            out.extend(
                self.tuples
                    .keys()
                    .filter(|t| {
                        cols.iter().all(|&c| c < t.arity())
                            && cols.iter().zip(key.iter()).all(|(&c, k)| t.get(c) == k)
                    })
                    .cloned(),
            );
            return;
        }
        // Build the index (and keep it: insert/remove maintain it).
        self.stats.builds.fetch_add(1, Ordering::Relaxed);
        let mut map: Index = HashMap::new();
        for t in self.tuples.keys() {
            if cols.iter().all(|&c| c < t.arity()) {
                // Sorted iteration ⇒ postings born sorted.
                map.entry(key_of(t, cols)).or_default().push(t.clone());
            }
        }
        if let Some(v) = map.get(key) {
            out.extend(v.iter().cloned());
        }
        idx.scan_counts.remove(cols);
        idx.registered.insert(cols.to_vec());
        idx.built.insert(cols.to_vec(), map);
    }

    /// Drop expired tuples: `gen_ts + window ≤ now`. Returns the expired
    /// tuples ("independently expiring a tuple after sufficient time",
    /// Sec. II-B).
    pub fn expire(&mut self, window: u64, now: u64) -> Vec<Tuple> {
        let expired: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|(_, m)| m.gen_ts + window <= now)
            .map(|(t, _)| t.clone())
            .collect();
        for t in &expired {
            self.remove(t);
        }
        expired
    }
}

fn key_of(t: &Tuple, cols: &[usize]) -> Vec<Term> {
    cols.iter().map(|&c| t.get(c).clone()).collect()
}

/// A named collection of relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    rels: BTreeMap<Symbol, Relation>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    pub fn relation(&self, p: Symbol) -> Option<&Relation> {
        self.rels.get(&p)
    }

    pub fn relation_mut(&mut self, p: Symbol) -> &mut Relation {
        self.rels.entry(p).or_default()
    }

    pub fn preds(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    pub fn insert(&mut self, p: Symbol, t: Tuple) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::default())
    }

    pub fn insert_at(&mut self, p: Symbol, t: Tuple, gen_ts: u64) -> bool {
        self.relation_mut(p).insert(t, TupleMeta::at(gen_ts))
    }

    pub fn remove(&mut self, p: Symbol, t: &Tuple) -> bool {
        self.relation_mut(p).remove(t)
    }

    pub fn contains(&self, p: Symbol, t: &Tuple) -> bool {
        self.rels.get(&p).is_some_and(|r| r.contains(t))
    }

    pub fn len_of(&self, p: Symbol) -> usize {
        self.rels.get(&p).map_or(0, Relation::len)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Sorted tuples of a relation — deterministic views for tests/output.
    pub fn sorted(&self, p: Symbol) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .rels
            .get(&p)
            .map(|r| r.tuples().cloned().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Register a persistent index signature on relation `p` (see
    /// [`Relation::register_index`]).
    pub fn register_index(&mut self, p: Symbol, cols: &[usize]) {
        self.relation_mut(p).register_index(cols);
    }

    /// Probe counters summed across all relations.
    pub fn index_stats(&self) -> IndexStatsSnapshot {
        let mut s = IndexStatsSnapshot::default();
        for r in self.rels.values() {
            s.merge(r.index_stats());
        }
        s
    }

    /// Load facts from a text block of `pred(args).` facts (multiple per
    /// line fine; blank lines and `%` comments allowed).
    pub fn load_facts(&mut self, src: &str) -> Result<usize, sensorlog_logic::ParseError> {
        let facts = sensorlog_logic::parse_facts(src)?;
        let n = facts.len();
        for (p, args) in facts {
            self.insert(p, Tuple::new(args));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    fn tup(v: Vec<i64>) -> Tuple {
        Tuple::new(v.into_iter().map(Term::Int).collect())
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new();
        assert!(r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(!r.insert(tup(vec![1, 2]), TupleMeta::default()));
        assert!(r.contains(&tup(vec![1, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.remove(&tup(vec![1, 2])));
        assert!(!r.remove(&tup(vec![1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_insert_keeps_earlier_timestamp() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert_eq!(r.meta(&tup(vec![1])).unwrap().gen_ts, 10);
    }

    #[test]
    fn reinsert_clears_tombstone() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(10));
        r.mark_deleted(&tup(vec![1]), 15);
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_some());
        r.insert(tup(vec![1]), TupleMeta::at(20));
        assert!(r.meta(&tup(vec![1])).unwrap().del_ts.is_none());
    }

    #[test]
    fn index_select_and_consistency() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        for i in 0..10 {
            r.insert(tup(vec![i % 3, i]), TupleMeta::default());
        }
        let mut out = Vec::new();
        r.select(&[0], &[Term::Int(1)], &mut out);
        let expect = (0..10).filter(|i| i % 3 == 1).count();
        assert_eq!(out.len(), expect);
        // Mutations keep the built index consistent.
        r.insert(tup(vec![1, 100]), TupleMeta::default());
        r.remove(&tup(vec![1, 1]));
        out.clear();
        r.select(&[0], &[Term::Int(1)], &mut out);
        assert_eq!(out.len(), expect); // +1 insert, -1 remove
        for t in &out {
            assert_eq!(t.get(0), &Term::Int(1));
        }
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2, 3]), TupleMeta::default());
        r.insert(tup(vec![1, 2, 4]), TupleMeta::default());
        r.insert(tup(vec![1, 5, 3]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0, 1], &[Term::Int(1), Term::Int(2)], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn visibility_window() {
        let m = TupleMeta::at(100);
        assert!(m.visible_at(100, None));
        assert!(m.visible_at(150, Some(100)));
        assert!(!m.visible_at(200, Some(100))); // 100 + 100 <= 200
        assert!(!m.visible_at(50, None)); // not yet generated
        let mut m = TupleMeta::at(100);
        m.del_ts = Some(120);
        assert!(m.visible_at(110, None));
        assert!(m.visible_at(120, None)); // deleted *at* tau still visible
        assert!(!m.visible_at(121, None));
    }

    #[test]
    fn expiry() {
        let mut r = Relation::new();
        r.insert(tup(vec![1]), TupleMeta::at(0));
        r.insert(tup(vec![2]), TupleMeta::at(50));
        let gone = r.expire(100, 100);
        assert_eq!(gone, vec![tup(vec![1])]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn database_load_facts() {
        let mut db = Database::new();
        let n = db
            .load_facts(
                r#"
                % edges
                e(1, 2).
                e(2, 3).
                "#,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.len_of(sym("e")), 2);
        assert!(db.contains(sym("e"), &tup(vec![1, 2])));
        let sorted = db.sorted(sym("e"));
        assert!(sorted[0] < sorted[1]);
    }

    #[test]
    fn unregistered_signature_promotes_after_repeated_scans() {
        let mut r = Relation::new();
        for i in 0..5 {
            r.insert(tup(vec![i, i * 10]), TupleMeta::default());
        }
        let mut out = Vec::new();
        for _ in 0..PROMOTE_AFTER {
            out.clear();
            r.select(&[1], &[Term::Int(20)], &mut out);
        }
        let s = r.index_stats();
        assert_eq!(s.scans, (PROMOTE_AFTER - 1) as u64);
        assert_eq!(s.builds, 1, "the PROMOTE_AFTER-th probe builds the index");
        out.clear();
        r.select(&[1], &[Term::Int(20)], &mut out);
        assert_eq!(r.index_stats().hits, 1);
        assert_eq!(out, vec![tup(vec![2, 20])]);
    }

    #[test]
    fn registration_survives_clone_and_rebuilds_on_probe() {
        let mut r = Relation::new();
        r.register_index(&[0]);
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0], &[Term::Int(1)], &mut out);
        assert_eq!(r.index_stats().builds, 1);
        let c = r.clone();
        assert_eq!(c.registered_indexes(), vec![vec![0]]);
        assert_eq!(c.index_stats().builds, 0, "stats reset on clone");
        out.clear();
        c.select(&[0], &[Term::Int(1)], &mut out);
        assert_eq!(
            c.index_stats().builds,
            1,
            "first probe after clone rebuilds"
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn clone_drops_index_cache_but_keeps_tuples() {
        let mut r = Relation::new();
        r.insert(tup(vec![1, 2]), TupleMeta::default());
        let mut out = Vec::new();
        r.select(&[0], &[Term::Int(1)], &mut out);
        let c = r.clone();
        assert_eq!(c.len(), 1);
        let mut out2 = Vec::new();
        c.select(&[0], &[Term::Int(1)], &mut out2);
        assert_eq!(out2.len(), 1);
    }
}
