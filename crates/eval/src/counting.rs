//! Counting-based maintenance (the first alternative of Sec. IV-A).
//!
//! Keeps a single multiplicity per derived tuple — the *number* of
//! derivations — instead of the derivations themselves. Cheaper in space,
//! but (a) restricted to non-recursive programs (counts diverge under
//! recursion) and (b) "difficult to implement accurately for a
//! fault-tolerant technique such as GPA, due to non-deterministic
//! duplication of result tuples" — which is why the paper picks the
//! set-of-derivations approach. This engine exists for the Fig. 11 ablation.

use crate::error::EvalError;
use crate::eval_body::{instantiate_head, BodyEval, TupleFilter};
use crate::relation::{Database, TupleMeta};
use sensorlog_logic::analyze::{Analysis, ProgramClass};
use sensorlog_logic::ast::Literal;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::flat::FlatSubst;
use sensorlog_logic::{Symbol, Tuple};
use std::collections::{HashMap, VecDeque};

use crate::incremental::{Update, UpdateKind};

/// Counting engine: tuple → signed derivation count.
pub struct CountingEngine {
    pub analysis: Analysis,
    pub reg: BuiltinRegistry,
    pub db: Database,
    counts: HashMap<(Symbol, Tuple), i64>,
    occurrences: HashMap<Symbol, Vec<(usize, usize, bool)>>,
    pub body_evals: u64,
    pub max_cascade: usize,
    /// Probe via relation indexes; disable for the scan A/B baseline.
    pub use_index: bool,
}

impl CountingEngine {
    /// Rejects recursive programs: counting is only exact without recursion.
    pub fn new(analysis: Analysis, reg: BuiltinRegistry) -> Result<CountingEngine, EvalError> {
        if analysis.class != ProgramClass::NonRecursive {
            return Err(EvalError::Internal(
                "counting maintenance supports non-recursive programs only".into(),
            ));
        }
        let mut occurrences: HashMap<Symbol, Vec<(usize, usize, bool)>> = HashMap::new();
        for (ri, r) in analysis.program.rules.iter().enumerate() {
            if r.agg.is_some() {
                return Err(EvalError::Internal(
                    "counting maintenance does not support aggregates".into(),
                ));
            }
            for (li, lit) in r.body.iter().enumerate() {
                match lit {
                    Literal::Pos(a) => occurrences.entry(a.pred).or_default().push((ri, li, false)),
                    Literal::Neg(a) => occurrences.entry(a.pred).or_default().push((ri, li, true)),
                    _ => {}
                }
            }
        }
        let mut db = Database::new();
        crate::planner::register_program_indexes(&mut db, &analysis.program.rules);
        Ok(CountingEngine {
            analysis,
            reg,
            db,
            counts: HashMap::new(),
            occurrences,
            body_evals: 0,
            max_cascade: 1_000_000,
            use_index: true,
        })
    }

    pub fn from_source(src: &str, reg: BuiltinRegistry) -> Result<CountingEngine, EvalError> {
        let prog =
            sensorlog_logic::parse_program(src).map_err(|e| EvalError::Internal(e.to_string()))?;
        let analysis = sensorlog_logic::analyze(&prog, &reg)?;
        CountingEngine::new(analysis, reg)
    }

    /// State size: number of counters (constant 1 word each — the space
    /// advantage over set-of-derivations).
    pub fn state_size(&self) -> usize {
        self.counts.len()
    }

    pub fn apply(&mut self, update: Update) -> Result<Vec<Update>, EvalError> {
        let mut queue = VecDeque::from([update]);
        let mut emitted = Vec::new();
        let mut steps = 0usize;
        while let Some(u) = queue.pop_front() {
            steps += 1;
            if steps > self.max_cascade {
                return Err(EvalError::LimitExceeded {
                    what: "update cascade",
                    limit: self.max_cascade,
                });
            }
            for d in self.process_one(&u)? {
                emitted.push(d.clone());
                queue.push_back(d);
            }
        }
        Ok(emitted)
    }

    fn process_one(&mut self, u: &Update) -> Result<Vec<Update>, EvalError> {
        match u.kind {
            UpdateKind::Insert => {
                if !self
                    .db
                    .relation_mut(u.pred)
                    .insert(u.tuple.clone(), TupleMeta::at(u.ts))
                {
                    return Ok(Vec::new());
                }
            }
            UpdateKind::Delete => {
                if !self.db.contains(u.pred, &u.tuple) {
                    return Ok(Vec::new());
                }
            }
        }
        let occs = self.occurrences.get(&u.pred).cloned().unwrap_or_default();
        let mut deltas: Vec<(Symbol, Tuple, i64)> = Vec::new();
        for (ri, li, negated) in occs {
            let rule = &self.analysis.program.rules[ri];
            let mut excluded = Vec::new();
            for (rj, lj, _) in self.occurrences.get(&u.pred).into_iter().flatten() {
                if *rj == ri
                    && match u.kind {
                        UpdateKind::Insert => *lj > li,
                        UpdateKind::Delete => *lj < li,
                    }
                {
                    excluded.push(*lj);
                }
            }
            let filter = TupleFilter {
                pred: u.pred,
                tuple: u.tuple.clone(),
                literal_indexes: excluded,
            };
            let ev = BodyEval {
                db: &self.db,
                reg: &self.reg,
                filter: Some(&filter),
                vis: None,
                use_index: self.use_index,
            };
            self.body_evals += 1;
            let sols = ev.solutions(&rule.body, FlatSubst::new(), Some((li, &u.tuple)))?;
            let sign = match (u.kind, negated) {
                (UpdateKind::Insert, false) | (UpdateKind::Delete, true) => 1,
                (UpdateKind::Insert, true) | (UpdateKind::Delete, false) => -1,
            };
            for sol in &sols {
                let head = instantiate_head(rule, &sol.subst, &self.reg)?;
                deltas.push((rule.head.pred, head, sign));
            }
        }
        if u.kind == UpdateKind::Delete {
            self.db.remove(u.pred, &u.tuple);
        }
        let mut out = Vec::new();
        for (pred, tuple, sign) in deltas {
            let c = self.counts.entry((pred, tuple.clone())).or_insert(0);
            let was = *c > 0;
            *c += sign;
            let now = *c > 0;
            if *c == 0 {
                self.counts.remove(&(pred, tuple.clone()));
            }
            if !was && now {
                out.push(Update::insert(pred, tuple, u.ts));
            } else if was && !now {
                out.push(Update::delete(pred, tuple, u.ts));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parser::parse_fact;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    fn ins(fact: &str, ts: u64) -> Update {
        let (p, args) = parse_fact(fact).unwrap();
        Update::insert(p, Tuple::new(args), ts)
    }

    fn del(fact: &str, ts: u64) -> Update {
        let (p, args) = parse_fact(fact).unwrap();
        Update::delete(p, Tuple::new(args), ts)
    }

    #[test]
    fn basic_counting() {
        let src = r#"
            q(Z) :- a(Z).
            q(Z) :- b(Z).
        "#;
        let mut e = CountingEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        e.apply(ins("a(1)", 1)).unwrap();
        e.apply(ins("b(1)", 2)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1")));
        assert_eq!(e.state_size(), 1); // one counter, vs two derivations
        e.apply(del("a(1)", 3)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1")));
        e.apply(del("b(1)", 4)).unwrap();
        assert!(!e.db.contains(sym("q"), &tup("1")));
    }

    #[test]
    fn negation_counting() {
        let src = r#"
            cov(L) :- enemy(L), friendly(F), dist(L, F) <= 5.
            uncov(L) :- not cov(L), enemy(L).
        "#;
        let mut e = CountingEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        e.apply(ins("enemy(10)", 1)).unwrap();
        assert!(e.db.contains(sym("uncov"), &tup("10")));
        e.apply(ins("friendly(12)", 2)).unwrap();
        assert!(!e.db.contains(sym("uncov"), &tup("10")));
        e.apply(del("friendly(12)", 3)).unwrap();
        assert!(e.db.contains(sym("uncov"), &tup("10")));
    }

    #[test]
    fn rejects_recursion() {
        let src = r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        assert!(CountingEngine::from_source(src, BuiltinRegistry::standard()).is_err());
    }

    #[test]
    fn rejects_aggregates() {
        let src = "best(min<V>) :- m(V).";
        assert!(CountingEngine::from_source(src, BuiltinRegistry::standard()).is_err());
    }
}
