//! Fixed-bucket histograms with exact merge.
//!
//! Buckets are defined by a static slice of strictly increasing
//! upper-inclusive bounds plus an implicit overflow bucket; two histograms
//! merge exactly iff their bounds are identical, which makes the per-node →
//! network-wide rollup lossless (unlike quantile sketches).

use std::fmt;

/// Attempted to merge histograms with different bucket bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    pub left: &'static [u64],
    pub right: &'static [u64],
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram bounds mismatch: {:?} vs {:?}",
            self.left, self.right
        )
    }
}

/// A fixed-bucket histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// `bounds` must be strictly increasing upper-inclusive bucket bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Exact merge; fails if bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.bounds != other.bounds {
            return Err(MergeError {
                left: self.bounds,
                right: other.bounds,
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts, not including the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Upper bound of the first bucket whose cumulative count reaches
    /// quantile `q` (0 < q ≤ 1) — a conservative (over-)estimate of the
    /// q-quantile. Samples that landed in the overflow bucket resolve to
    /// the observed maximum. `None` on an empty histogram.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bounds[i]);
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: &[u64] = &[10, 100, 1000];

    #[test]
    fn empty_merge_is_identity() {
        let mut a = Histogram::new(B);
        let b = Histogram::new(B);
        a.merge(&b).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.mean(), 0.0);

        // Empty merged into non-empty leaves it untouched.
        let mut c = Histogram::new(B);
        c.observe(5);
        let before = c.clone();
        c.merge(&Histogram::new(B)).unwrap();
        assert_eq!(c, before);
    }

    #[test]
    fn single_bucket_saturation() {
        let mut h = Histogram::new(&[7]);
        for _ in 0..1000 {
            h.observe(7); // upper bound is inclusive
        }
        assert_eq!(h.bucket_counts(), &[1000]);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
        h.observe(8);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn overflow_bucket_and_boundaries() {
        let mut h = Histogram::new(B);
        h.observe(0);
        h.observe(10); // inclusive: lands in bucket 0
        h.observe(11); // bucket 1
        h.observe(1000); // bucket 2
        h.observe(1001); // overflow
        h.observe(u64::MAX / 2); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn quantile_upper_is_conservative() {
        let mut h = Histogram::new(B);
        assert_eq!(h.quantile_upper(0.95), None);
        for _ in 0..90 {
            h.observe(5); // bucket 0 (≤ 10)
        }
        for _ in 0..9 {
            h.observe(50); // bucket 1 (≤ 100)
        }
        h.observe(500); // bucket 2 (≤ 1000)
        assert_eq!(h.quantile_upper(0.5), Some(10));
        assert_eq!(h.quantile_upper(0.95), Some(100));
        assert_eq!(h.quantile_upper(1.0), Some(1000));
        // Overflow samples resolve to the observed max.
        h.observe(5000);
        for _ in 0..200 {
            h.observe(7000);
        }
        assert_eq!(h.quantile_upper(0.95), Some(7000));
    }

    #[test]
    fn mismatched_bounds_refuse_to_merge() {
        let mut a = Histogram::new(B);
        let b = Histogram::new(&[10, 100]);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_equals_concat_fixed() {
        let xs = [1u64, 9, 10, 11, 500, 5000];
        let ys = [0u64, 100, 101, 999, 1000, 1001];
        let mut a = Histogram::new(B);
        let mut b = Histogram::new(B);
        let mut whole = Histogram::new(B);
        for &x in &xs {
            a.observe(x);
            whole.observe(x);
        }
        for &y in &ys {
            b.observe(y);
            whole.observe(y);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }
}
