//! Geographic hashing (Sec. III-B "Hashing Derived Tuples").
//!
//! "For efficient elimination of duplicates … we need to hash and store the
//! derived tuples across the network such that identical derived tuples are
//! stored at same (or close-by) nodes. We can use well-known geographic
//! hashing schemes." This module hashes a tuple key to a point in the
//! deployment area; the owner is the closest node (GHT's home-node rule).

use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{NodeId, Topology};
use std::fmt::Write;

/// FNV-1a, the classic cheap byte hash (in-tree per DESIGN.md — no external
/// hashing dependency).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonical byte encoding of a term sequence (display form with
/// separators; stable because `Term: Display` is deterministic).
fn encode(pred: Symbol, terms: &[Term]) -> String {
    let mut s = String::with_capacity(32);
    let _ = write!(s, "{pred}|");
    for t in terms {
        let _ = write!(s, "{t};");
    }
    s
}

/// Hash a (predicate, tuple) pair to a stable 64-bit key.
pub fn hash_fact(pred: Symbol, tuple: &Tuple) -> u64 {
    let terms = sensorlog_logic::intern::boundary(|| tuple.terms());
    fnv1a(encode(pred, &terms).as_bytes())
}

/// The owner node of a fact: hash → point in the bounding box → closest
/// node. Identical facts always meet at the same owner; distribution is
/// uniform across the area (load balance for derived storage).
pub fn owner_of(topo: &Topology, pred: Symbol, tuple: &Tuple) -> NodeId {
    let h = hash_fact(pred, tuple);
    // Bounding box from the topology kind.
    let (w, hgt) = match topo.kind {
        sensorlog_netsim::TopologyKind::Grid { cols, rows } => {
            ((cols.max(1) - 1) as f64, (rows.max(1) - 1) as f64)
        }
        sensorlog_netsim::TopologyKind::Geometric { side, .. } => (side, side),
    };
    let x = (h >> 32) as f64 / u32::MAX as f64 * w;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * hgt;
    topo.closest_node(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parse_fact;

    fn fact(src: &str) -> (Symbol, Tuple) {
        let (p, args) = parse_fact(src).unwrap();
        (p, Tuple::new(args))
    }

    #[test]
    fn deterministic_owner() {
        let topo = Topology::square_grid(8);
        let (p, t) = fact("cov(3, 100)");
        assert_eq!(owner_of(&topo, p, &t), owner_of(&topo, p, &t));
    }

    #[test]
    fn different_facts_spread() {
        let topo = Topology::square_grid(8);
        let mut owners = std::collections::HashSet::new();
        for i in 0..200 {
            let (p, t) = fact(&format!("cov({i}, {})", i * 7));
            owners.insert(owner_of(&topo, p, &t));
        }
        // 200 facts over 64 nodes: expect wide spread.
        assert!(owners.len() > 30, "only {} distinct owners", owners.len());
    }

    #[test]
    fn predicate_distinguishes() {
        let (p1, t1) = fact("cov(1, 2)");
        let (p2, t2) = fact("uncov(1, 2)");
        assert_ne!(hash_fact(p1, &t1), hash_fact(p2, &t2));
    }

    #[test]
    fn function_symbol_tuples_hash() {
        let topo = Topology::square_grid(4);
        let (p, t) = fact("traj([r(1,2,3), r(4,5,6)])");
        let o = owner_of(&topo, p, &t);
        assert!(o.index() < topo.len());
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a("") = offset basis; FNV-1a("a") well-known.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
