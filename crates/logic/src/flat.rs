//! Flat evaluation kernel: substitutions, interpreted evaluation, semantic
//! matching and comparisons over interned [`ConstId`]s.
//!
//! This is the id-space mirror of the boxed machinery ([`crate::unify`] +
//! [`BuiltinRegistry::eval_term`] + the body evaluator's `sem_match`): every
//! function here reproduces its boxed counterpart's semantics *exactly* —
//! same results, same error cases — while touching only pool entries, so
//! the fixpoint inner loop performs zero id → `Term` resolves. Cold paths
//! (non-arithmetic builtin functions, error-message construction) fall back
//! to the boxed implementations inside an [`intern::boundary`] scope, which
//! also guarantees error strings stay byte-identical.
//!
//! Caveat: the arithmetic fast path dispatches on the *names*
//! `add sub mul div mod neg abs min2 max2`; re-registering those standard
//! names with different semantics is unsupported (nothing in-tree does).

use crate::ast::CmpOp;
use crate::builtin::{BuiltinError, BuiltinRegistry};
use crate::intern::{self, ConstId, Val};
use crate::symbol::Symbol;
use crate::term::{Term, F64};
use crate::unify::Subst;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Inline binding capacity: rule bodies rarely bind more than this many
/// variables, so the common-case clone is a plain memcpy with no heap
/// traffic at all — the per-candidate cost the boxed `HashMap` substitution
/// paid on every probe result.
const INLINE: usize = 8;

/// A binding of variables to interned constants — the hot-path substitution.
/// Backed by an inline association array of [`INLINE`] slots with a spill
/// vector for pathological rules, so cloning per candidate never allocates
/// in the common case.
#[derive(Clone, PartialEq)]
pub struct FlatSubst {
    len: u32,
    inline: [(Symbol, ConstId); INLINE],
    spill: Vec<(Symbol, ConstId)>,
}

impl Default for FlatSubst {
    fn default() -> FlatSubst {
        FlatSubst {
            len: 0,
            inline: [(Symbol::from_raw(0), 0); INLINE],
            spill: Vec::new(),
        }
    }
}

impl std::fmt::Debug for FlatSubst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FlatSubst {
    pub fn new() -> FlatSubst {
        FlatSubst::default()
    }

    #[inline]
    fn filled(&self) -> usize {
        (self.len as usize).min(INLINE)
    }

    #[inline]
    pub fn get(&self, v: Symbol) -> Option<ConstId> {
        for &(s, id) in &self.inline[..self.filled()] {
            if s == v {
                return Some(id);
            }
        }
        self.spill.iter().find(|(s, _)| *s == v).map(|(_, id)| *id)
    }

    #[inline]
    pub fn is_bound(&self, v: Symbol) -> bool {
        self.get(v).is_some()
    }

    pub fn bind(&mut self, v: Symbol, id: ConstId) {
        let n = self.filled();
        for slot in &mut self.inline[..n] {
            if slot.0 == v {
                slot.1 = id;
                return;
            }
        }
        for slot in &mut self.spill {
            if slot.0 == v {
                slot.1 = id;
                return;
            }
        }
        if n < INLINE {
            self.inline[n] = (v, id);
        } else {
            self.spill.push((v, id));
        }
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (Symbol, ConstId)> + '_ {
        self.inline[..self.filled()]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    /// Materialize as a boxed [`Subst`] (counted resolves — boundary callers
    /// such as lineage export should wrap in [`intern::boundary`]).
    pub fn to_subst(&self) -> Subst {
        let mut s = Subst::new();
        for (v, id) in self.iter() {
            s.bind(v, intern::resolve(id));
        }
        s
    }

    /// Intern a boxed substitution. Returns `None` if any binding is
    /// non-ground (flat bindings are ground by construction).
    pub fn from_subst(s: &Subst) -> Option<FlatSubst> {
        let mut out = FlatSubst::new();
        for (v, t) in s.iter() {
            out.bind(*v, intern::intern_term(t)?);
        }
        Some(out)
    }
}

/// True when every variable of `t` is bound — i.e. the boxed
/// `subst.apply(t).is_ground()`.
pub fn flat_is_ground(t: &Term, s: &FlatSubst) -> bool {
    match t {
        Term::Var(v) => s.is_bound(*v),
        Term::App(_, args) => args.iter().all(|a| flat_is_ground(a, s)),
        _ => true,
    }
}

struct ArithSyms {
    add: Symbol,
    sub: Symbol,
    mul: Symbol,
    div: Symbol,
    modulo: Symbol,
    neg: Symbol,
    abs: Symbol,
    min2: Symbol,
    max2: Symbol,
}

fn arith_syms() -> &'static ArithSyms {
    static SYMS: OnceLock<ArithSyms> = OnceLock::new();
    SYMS.get_or_init(|| ArithSyms {
        add: Symbol::intern("add"),
        sub: Symbol::intern("sub"),
        mul: Symbol::intern("mul"),
        div: Symbol::intern("div"),
        modulo: Symbol::intern("mod"),
        neg: Symbol::intern("neg"),
        abs: Symbol::intern("abs"),
        min2: Symbol::intern("min2"),
        max2: Symbol::intern("max2"),
    })
}

/// Boxed fallback for interpreted functions outside the arithmetic fast
/// path (`dist`, list builtins, user functions) and for their error cases —
/// the procedural-builtin boundary.
fn call_boxed(reg: &BuiltinRegistry, f: Symbol, kids: &[ConstId]) -> Result<ConstId, BuiltinError> {
    let out = intern::boundary(|| {
        let args: Vec<Term> = intern::resolve_slice(kids);
        reg.call_func(f, &args)
            .expect("call_boxed on unregistered function")
    })?;
    Ok(intern::intern_term(&out).expect("builtin function returned non-ground term"))
}

fn arith2(
    reg: &BuiltinRegistry,
    f: Symbol,
    name: &'static str,
    kids: &[ConstId],
    ff: fn(f64, f64) -> f64,
    gg: fn(i64, i64) -> Option<i64>,
) -> Result<ConstId, BuiltinError> {
    if kids.len() != 2 {
        return call_boxed(reg, f, kids); // exact arity error message
    }
    let (a, b) = (&intern::entry(kids[0]).val, &intern::entry(kids[1]).val);
    if let (Val::Int(x), Val::Int(y)) = (a, b) {
        return match gg(*x, *y) {
            Some(v) => Ok(intern::intern_int(v)),
            None => Err(BuiltinError::new(format!("{name}({x}, {y}) failed"))),
        };
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok(intern::intern_float(F64::new(ff(x, y)))),
        _ => call_boxed(reg, f, kids), // exact type error message
    }
}

fn minmax2(
    reg: &BuiltinRegistry,
    f: Symbol,
    kids: &[ConstId],
    int_pick: fn(i64, i64) -> i64,
    float_pick: fn(f64, f64) -> f64,
) -> Result<ConstId, BuiltinError> {
    if kids.len() != 2 {
        return call_boxed(reg, f, kids);
    }
    let (a, b) = (&intern::entry(kids[0]).val, &intern::entry(kids[1]).val);
    if let (Val::Int(x), Val::Int(y)) = (a, b) {
        return Ok(intern::intern_int(int_pick(*x, *y)));
    }
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok(intern::intern_float(F64::new(float_pick(x, y)))),
        _ => call_boxed(reg, f, kids),
    }
}

/// Apply function symbol `f` to evaluated children: interpreted functions
/// run (arithmetic natively, others via the boxed boundary), uninterpreted
/// constructors intern as `App` values — exactly
/// [`BuiltinRegistry::eval_term`]'s application step.
fn apply_func(
    reg: &BuiltinRegistry,
    f: Symbol,
    kids: Vec<ConstId>,
) -> Result<ConstId, BuiltinError> {
    if !reg.is_func(f) {
        return Ok(intern::intern_app(f, kids));
    }
    let o = arith_syms();
    if f == o.add {
        arith2(reg, f, "add", &kids, |a, b| a + b, |a, b| a.checked_add(b))
    } else if f == o.sub {
        arith2(reg, f, "sub", &kids, |a, b| a - b, |a, b| a.checked_sub(b))
    } else if f == o.mul {
        arith2(reg, f, "mul", &kids, |a, b| a * b, |a, b| a.checked_mul(b))
    } else if f == o.div {
        arith2(
            reg,
            f,
            "div",
            &kids,
            |a, b| a / b,
            |a, b| if b == 0 { None } else { a.checked_div(b) },
        )
    } else if f == o.modulo {
        arith2(
            reg,
            f,
            "mod",
            &kids,
            |a, b| a % b,
            |a, b| if b == 0 { None } else { a.checked_rem(b) },
        )
    } else if f == o.neg {
        match kids.as_slice() {
            [k] => match &intern::entry(*k).val {
                Val::Int(i) => Ok(intern::intern_int(-i)),
                Val::Float(x) => Ok(intern::intern_float(F64::new(-x.get()))),
                _ => call_boxed(reg, f, &kids),
            },
            _ => call_boxed(reg, f, &kids),
        }
    } else if f == o.abs {
        match kids.as_slice() {
            [k] => match &intern::entry(*k).val {
                Val::Int(i) => Ok(intern::intern_int(i.abs())),
                Val::Float(x) => Ok(intern::intern_float(F64::new(x.get().abs()))),
                _ => call_boxed(reg, f, &kids),
            },
            _ => call_boxed(reg, f, &kids),
        }
    } else if f == o.min2 {
        minmax2(reg, f, &kids, i64::min, f64::min)
    } else if f == o.max2 {
        minmax2(reg, f, &kids, i64::max, f64::max)
    } else {
        call_boxed(reg, f, &kids)
    }
}

/// Re-evaluate an interned value bottom-up (stored EDB values may contain
/// interpreted applications inserted raw, e.g. a fact `p(add(1, 2))`; the
/// boxed path re-evaluates them on every substitution). Values without
/// interpreted symbols — the overwhelmingly common case — return their own
/// id without allocating.
pub fn eval_id(reg: &BuiltinRegistry, id: ConstId) -> Result<ConstId, BuiltinError> {
    match &intern::entry(id).val {
        Val::App(f, kids) => {
            let mut new_kids = Vec::with_capacity(kids.len());
            let mut changed = false;
            for &k in kids.iter() {
                let nk = eval_id(reg, k)?;
                changed |= nk != k;
                new_kids.push(nk);
            }
            if reg.is_func(*f) {
                apply_func(reg, *f, new_kids)
            } else if !changed {
                Ok(id)
            } else {
                Ok(intern::intern_app(*f, new_kids))
            }
        }
        _ => Ok(id),
    }
}

/// Evaluate a pattern term under a flat substitution — the id-space mirror
/// of `reg.eval_term(&subst.apply(t))`. All variables must be bound.
pub fn flat_eval(reg: &BuiltinRegistry, t: &Term, s: &FlatSubst) -> Result<ConstId, BuiltinError> {
    match t {
        Term::Int(n) => Ok(intern::intern_int(*n)),
        Term::Float(f) => Ok(intern::intern_float(*f)),
        Term::Str(x) => Ok(intern::intern_str(*x)),
        Term::Atom(x) => Ok(intern::intern_atom(*x)),
        Term::Var(v) => match s.get(*v) {
            Some(id) => eval_id(reg, id),
            None => Err(BuiltinError::new(format!(
                "cannot evaluate unbound variable {v}"
            ))),
        },
        Term::App(f, args) => {
            let mut kids = Vec::with_capacity(args.len());
            for a in args.iter() {
                kids.push(flat_eval(reg, a, s)?);
            }
            apply_func(reg, *f, kids)
        }
    }
}

/// Evaluate a comparison between two pattern terms under a flat
/// substitution — mirror of `reg.compare(op, &subst.apply(l),
/// &subst.apply(r))`: numeric comparisons widen to floats; everything else
/// uses the value order (= boxed `Term` order, via pool sort keys).
pub fn flat_compare(
    reg: &BuiltinRegistry,
    op: CmpOp,
    l: &Term,
    r: &Term,
    s: &FlatSubst,
) -> Result<bool, BuiltinError> {
    let li = flat_eval(reg, l, s)?;
    let ri = flat_eval(reg, r, s)?;
    let ord = match (
        intern::entry(li).val.as_f64(),
        intern::entry(ri).val.as_f64(),
    ) {
        (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Greater),
        _ => intern::cmp_ids(li, ri),
    };
    Ok(match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
    })
}

enum ArgView {
    UnboundVar(Symbol),
    Lit(i64),
    Other,
}

fn arg_view(a: &Term, s: &FlatSubst) -> ArgView {
    match a {
        Term::Var(v) => match s.get(*v) {
            None => ArgView::UnboundVar(*v),
            Some(id) => match intern::entry(id).val {
                Val::Int(k) => ArgView::Lit(k),
                _ => ArgView::Other,
            },
        },
        Term::Int(k) => ArgView::Lit(*k),
        _ => ArgView::Other,
    }
}

/// Semantic pattern match against an interned value — the id-space mirror
/// of the body evaluator's `sem_match`: ground (under `s`) patterns are
/// evaluated and compared by id; an unbound variable binds; 2-ary `add`/
/// `sub` patterns against an integer solve linearly; uninterpreted
/// applications descend structurally.
pub fn flat_match(reg: &BuiltinRegistry, pat: &Term, vid: ConstId, s: &mut FlatSubst) -> bool {
    // Variable patterns — the overwhelmingly common case in rule bodies —
    // need one binding lookup, not the ground-walk + re-lookup below.
    if let Term::Var(v) = pat {
        return match s.get(*v) {
            Some(b) => match eval_id(reg, b) {
                Ok(id) => id == vid,
                Err(_) => false,
            },
            None => {
                s.bind(*v, vid);
                true
            }
        };
    }
    if flat_is_ground(pat, s) {
        return match flat_eval(reg, pat, s) {
            Ok(id) => id == vid,
            Err(_) => false,
        };
    }
    match pat {
        Term::Var(v) => {
            // Non-ground, so `v` is unbound.
            s.bind(*v, vid);
            true
        }
        Term::App(f, args) if args.len() == 2 && matches!(intern::entry(vid).val, Val::Int(_)) => {
            let n = match intern::entry(vid).val {
                Val::Int(n) => n,
                _ => unreachable!(),
            };
            fn solve(s: &mut FlatSubst, v: Symbol, bound: Option<i64>) -> bool {
                match bound {
                    Some(x) => {
                        s.bind(v, intern::intern_int(x));
                        true
                    }
                    None => false,
                }
            }
            match (f.as_str(), arg_view(&args[0], s), arg_view(&args[1], s)) {
                ("add", ArgView::UnboundVar(v), ArgView::Lit(k)) => solve(s, v, n.checked_sub(k)),
                ("add", ArgView::Lit(k), ArgView::UnboundVar(v)) => solve(s, v, n.checked_sub(k)),
                ("sub", ArgView::UnboundVar(v), ArgView::Lit(k)) => solve(s, v, n.checked_add(k)),
                _ => false,
            }
        }
        Term::App(f, pargs) => match &intern::entry(vid).val {
            Val::App(g, vids) if f == g && pargs.len() == vids.len() && !reg.is_func(*f) => pargs
                .iter()
                .zip(vids.iter())
                .all(|(pp, &vv)| flat_match(reg, pp, vv, s)),
            _ => false,
        },
        // Scalar patterns are ground and were handled above.
        _ => false,
    }
}

/// [`flat_match`] over an argument list.
pub fn flat_match_args(
    reg: &BuiltinRegistry,
    pats: &[Term],
    vids: &[ConstId],
    s: &mut FlatSubst,
) -> bool {
    pats.len() == vids.len()
        && pats
            .iter()
            .zip(vids.iter())
            .all(|(p, &v)| flat_match(reg, p, v, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn reg() -> BuiltinRegistry {
        BuiltinRegistry::standard()
    }

    fn id_of(t: &Term) -> ConstId {
        intern::intern_term(t).unwrap()
    }

    /// Oracle: the boxed pipeline `eval_term(subst.apply(t))`.
    fn boxed_eval(reg: &BuiltinRegistry, t: &Term, s: &FlatSubst) -> Result<Term, BuiltinError> {
        let boxed = intern::boundary(|| s.to_subst());
        reg.eval_term(&boxed.apply(t))
    }

    #[test]
    fn flat_eval_matches_boxed_oracle() {
        let r = reg();
        let mut s = FlatSubst::new();
        s.bind(Symbol::intern("X"), intern::intern_int(7));
        s.bind(Symbol::intern("F"), id_of(&Term::float(2.5)));
        for src in [
            "X + 1",
            "X * X",
            "X - 10",
            "X / 2",
            "mod(X, 3)",
            "neg(X)",
            "abs(0 - X)",
            "min2(X, 3)",
            "max2(X, F)",
            "X + F",
            "dist(10, 7)",
            "loc(X + 1, 2)",
            "[X, 2]",
        ] {
            let t = parse_term(src).unwrap();
            let flat = flat_eval(&r, &t, &s).unwrap();
            let boxed = boxed_eval(&r, &t, &s).unwrap();
            assert_eq!(intern::resolve(flat), boxed, "divergence on {src}");
        }
    }

    #[test]
    fn flat_eval_error_cases_match_boxed() {
        let r = reg();
        let s = FlatSubst::new();
        for src in ["1 / 0", "mod(2, 0)", "add(a, 1)", "neg(a)"] {
            let t = parse_term(src).unwrap();
            let flat = flat_eval(&r, &t, &s);
            let boxed = boxed_eval(&r, &t, &s);
            assert!(flat.is_err() && boxed.is_err(), "both error on {src}");
            assert_eq!(
                flat.unwrap_err().message,
                boxed.unwrap_err().message,
                "error text diverges on {src}"
            );
        }
        // Overflow path.
        let t = Term::app("add", vec![Term::Int(i64::MAX), Term::Int(1)]);
        assert_eq!(
            flat_eval(&r, &t, &s).unwrap_err().message,
            boxed_eval(&r, &t, &s).unwrap_err().message
        );
    }

    #[test]
    fn stored_interpreted_values_reevaluate() {
        // A raw EDB value add(1, 2): the boxed path re-evaluates it after
        // substitution; eval_id must do the same.
        let r = reg();
        let raw = id_of(&Term::app("add", vec![Term::Int(1), Term::Int(2)]));
        assert_eq!(eval_id(&r, raw).unwrap(), intern::intern_int(3));
        // Constructor values are fixpoints and keep their id.
        let v = id_of(&Term::app("loc", vec![Term::Int(1), Term::Int(2)]));
        assert_eq!(eval_id(&r, v).unwrap(), v);
    }

    #[test]
    fn flat_compare_widens_and_falls_back_to_term_order() {
        let r = reg();
        let s = FlatSubst::new();
        let cases = [
            (CmpOp::Le, "1", "1.0", true),
            (CmpOp::Eq, "1", "1.0", true),
            (CmpOp::Lt, "1", "2", true),
            (CmpOp::Gt, "1", "2", false),
            (CmpOp::Ne, "a", "b", true),
            (CmpOp::Lt, "2 + 2", "5", true),
        ];
        for (op, l, rr, want) in cases {
            let (lt, rt) = (parse_term(l).unwrap(), parse_term(rr).unwrap());
            assert_eq!(
                flat_compare(&r, op, &lt, &rt, &s).unwrap(),
                want,
                "{l} {op:?} {rr}"
            );
            assert_eq!(r.compare(op, &lt, &rt).unwrap(), want);
        }
    }

    #[test]
    fn flat_match_binds_solves_and_descends() {
        let r = reg();
        // Plain binding.
        let mut s = FlatSubst::new();
        assert!(flat_match(
            &r,
            &Term::var("X"),
            intern::intern_int(5),
            &mut s
        ));
        assert_eq!(s.get(Symbol::intern("X")), Some(intern::intern_int(5)));
        // Respect existing binding through the ground-eval branch.
        assert!(flat_match(
            &r,
            &Term::var("X"),
            intern::intern_int(5),
            &mut s
        ));
        assert!(!flat_match(
            &r,
            &Term::var("X"),
            intern::intern_int(6),
            &mut s
        ));
        // Linear solve: D + 1 against 3 binds D = 2.
        let mut s = FlatSubst::new();
        let pat = parse_term("D + 1").unwrap();
        assert!(flat_match(&r, &pat, intern::intern_int(3), &mut s));
        assert_eq!(s.get(Symbol::intern("D")), Some(intern::intern_int(2)));
        // Structural descent on constructors.
        let mut s = FlatSubst::new();
        let pat = parse_term("loc(X, 2)").unwrap();
        let v = id_of(&Term::app("loc", vec![Term::Int(9), Term::Int(2)]));
        assert!(flat_match(&r, &pat, v, &mut s));
        assert_eq!(s.get(Symbol::intern("X")), Some(intern::intern_int(9)));
        // Mismatched constructor.
        let w = id_of(&Term::app("pos", vec![Term::Int(9), Term::Int(2)]));
        let mut s = FlatSubst::new();
        assert!(!flat_match(&r, &pat, w, &mut s));
    }

    #[test]
    fn subst_round_trip() {
        let mut f = FlatSubst::new();
        f.bind(Symbol::intern("A"), intern::intern_int(1));
        f.bind(
            Symbol::intern("B"),
            id_of(&Term::app("loc", vec![Term::Int(2), Term::Int(3)])),
        );
        let boxed = intern::boundary(|| f.to_subst());
        let back = FlatSubst::from_subst(&boxed).unwrap();
        assert_eq!(back.get(Symbol::intern("A")), f.get(Symbol::intern("A")));
        assert_eq!(back.get(Symbol::intern("B")), f.get(Symbol::intern("B")));
        // Non-ground substitutions don't intern.
        let mut open = Subst::new();
        open.bind(Symbol::intern("C"), Term::var("D"));
        assert!(FlatSubst::from_subst(&open).is_none());
    }
}
