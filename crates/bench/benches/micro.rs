//! Criterion microbenchmarks for the hot inner loops: unification/matching,
//! relation indexing, semi-naive fixpoint, incremental maintenance, and the
//! XY staged evaluator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sensorlog_eval::relation::{Database, TupleMeta};
use sensorlog_eval::{Engine, IncrementalEngine, Update};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::unify::{match_term, Subst};
use sensorlog_logic::{Symbol, Term, Tuple};

fn bench_matching(c: &mut Criterion) {
    let pattern = Term::app(
        "f",
        vec![
            Term::var("X"),
            Term::app("g", vec![Term::var("Y"), Term::Int(3)]),
            Term::var("X"),
        ],
    );
    let value = Term::app(
        "f",
        vec![
            Term::Int(7),
            Term::app("g", vec![Term::str("abc"), Term::Int(3)]),
            Term::Int(7),
        ],
    );
    c.bench_function("match_term nested", |b| {
        b.iter(|| {
            let mut s = Subst::new();
            black_box(match_term(black_box(&pattern), black_box(&value), &mut s))
        })
    });
}

fn bench_relation_select(c: &mut Criterion) {
    let mut db = Database::new();
    let p = Symbol::intern("bench_rel");
    for i in 0..10_000i64 {
        db.relation_mut(p).insert(
            Tuple::new(vec![Term::Int(i % 100), Term::Int(i)]),
            TupleMeta::default(),
        );
    }
    let rel = db.relation(p).unwrap();
    let key = sensorlog_logic::intern::intern_term(&Term::Int(7)).unwrap();
    // Warm the index.
    let mut out = Vec::new();
    rel.select(&[0], &[key], &mut out);
    c.bench_function("relation select indexed (10k tuples)", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            rel.select(&[0], &[black_box(key)], &mut out);
            black_box(out.len())
        })
    });
}

fn tc_edb(n: usize) -> Database {
    let mut db = Database::new();
    let e = Symbol::intern("e");
    for i in 0..n as i64 {
        db.insert(e, Tuple::new(vec![Term::Int(i), Term::Int(i + 1)]));
    }
    db
}

fn bench_seminaive(c: &mut Criterion) {
    let engine = Engine::from_source(
        r#"
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        "#,
        BuiltinRegistry::standard(),
    )
    .unwrap();
    let edb = tc_edb(60);
    c.bench_function("seminaive TC chain-60", |b| {
        b.iter(|| black_box(engine.run(black_box(&edb)).unwrap().total_tuples()))
    });
}

fn bench_incremental(c: &mut Criterion) {
    c.bench_function("incremental insert+delete (uncov)", |b| {
        b.iter_with_setup(
            || {
                let mut e = IncrementalEngine::from_source(
                    r#"
                    cov(V) :- sight(V), supp(V).
                    alert(V) :- not cov(V), sight(V).
                    "#,
                    BuiltinRegistry::standard(),
                )
                .unwrap();
                for v in 0..100i64 {
                    e.apply(Update::insert(
                        Symbol::intern("sight"),
                        Tuple::new(vec![Term::Int(v)]),
                        v as u64,
                    ))
                    .unwrap();
                }
                e
            },
            |mut e| {
                let t = Tuple::new(vec![Term::Int(50)]);
                e.apply(Update::insert(Symbol::intern("supp"), t.clone(), 1000))
                    .unwrap();
                e.apply(Update::delete(Symbol::intern("supp"), t, 1001))
                    .unwrap();
                black_box(e.db.len_of(Symbol::intern("alert")))
            },
        )
    });
}

fn bench_xy_eval(c: &mut Criterion) {
    let engine = Engine::from_source(
        r#"
        h(0, 0, 0).
        h(0, X, 1) :- g(0, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#,
        BuiltinRegistry::standard(),
    )
    .unwrap();
    // Ring of 30 nodes.
    let mut db = Database::new();
    let g = Symbol::intern("g");
    for i in 0..30i64 {
        let j = (i + 1) % 30;
        db.insert(g, Tuple::new(vec![Term::Int(i), Term::Int(j)]));
        db.insert(g, Tuple::new(vec![Term::Int(j), Term::Int(i)]));
    }
    c.bench_function("xy staged eval logicH ring-30", |b| {
        b.iter(|| black_box(engine.run(black_box(&db)).unwrap().total_tuples()))
    });
}

criterion_group!(
    benches,
    bench_matching,
    bench_relation_select,
    bench_seminaive,
    bench_incremental,
    bench_xy_eval
);
criterion_main!(benches);
