//! Chaos experiment: fault-plane cost and convergence, exported as
//! `BENCH_chaos.json`.
//!
//! ```text
//! chaos [--quick] [--out BENCH_chaos.json]
//! ```
//!
//! Two experiments:
//!
//! 1. **Fault-rate sweep** — seeded random schedules with 0..=3 crash–
//!    restart pairs (plus matching link flaps) on a 4×4 grid. For each
//!    fault rate: transmissions relative to the fault-free baseline (the
//!    price of heartbeats, refresh rounds, and re-driven walks), drop
//!    counts by reason, convergence-to-oracle violations (must be 0), and
//!    recovery latency (sim-time from the last fault healing to network
//!    quiescence).
//!
//! 2. **Backend determinism** — one scripted crash/partition scenario run
//!    under Heap, Wheel, and Shard{2}; the event-trace journals must be
//!    byte-identical, and the shared hash is emitted as `"hash": ...`.
//!    CI (`ci.sh`) greps the pinned value from a `--quick` run; the
//!    scenario is identical in both modes so the committed artifact and
//!    the smoke run pin the same constant.

use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::invariants;
use sensorlog_core::runtime::{FaultPlaneCfg, RtConfig};
use sensorlog_core::workload::UniformStreams;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{FaultSchedule, NodeId, RandomFaults, Sched, SimConfig, Topology};
use std::fmt::Write as _;
use std::process::ExitCode;

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

const HEAL_BY: u64 = 14_000;
const ACTIVE_UNTIL: u64 = 26_000;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn deployment(seed: u64, sched: Sched, faults_on: bool) -> Deployment {
    let cfg = DeployConfig {
        rt: RtConfig {
            faults: faults_on.then_some(FaultPlaneCfg {
                active_until: ACTIVE_UNTIL,
                ..FaultPlaneCfg::default()
            }),
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed,
            sched,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    Deployment::new(
        JOIN2,
        BuiltinRegistry::standard(),
        Topology::square_grid(4),
        cfg,
    )
    .unwrap()
}

fn churn(topo: &Topology, seed: u64) -> Vec<sensorlog_core::deploy::WorkloadEvent> {
    UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 4_000,
        duration: 12_000,
        delete_fraction: 0.3,
        delete_lag: 5_000,
        groups: 6,
        seed,
    }
    .events(topo)
}

struct SweepRow {
    crashes: usize,
    flaps: usize,
    tx: u64,
    tx_ratio: f64,
    drops: [u64; 4],
    violations: usize,
    recovery_ms: u64,
}

/// One seeded chaos run; `crashes == 0` is the fault-plane-on baseline
/// (heartbeats and refresh still run — the overhead ratio isolates what the
/// *faults* cost on top of the plane itself).
fn sweep_run(seed: u64, crashes: usize, flaps: usize, baseline_tx: Option<u64>) -> SweepRow {
    let topo = Topology::square_grid(4);
    let mut d = deployment(seed, Sched::Heap, true);
    if crashes + flaps > 0 {
        d.set_fault_schedule(FaultSchedule::random(
            seed,
            &topo,
            RandomFaults {
                crashes,
                link_flaps: flaps,
                start: 1_000,
                heal_by: HEAL_BY,
            },
        ));
    }
    d.schedule_all(churn(&topo, seed));
    d.run(240_000);
    assert!(d.sim.is_quiescent(), "chaos sweep run must quiesce");
    let conv = invariants::check_convergence(&d, &[sym("q")]);
    let tx = d.metrics().total_tx();
    // Recovery latency: healing completes at HEAL_BY; the plane idles once
    // the last refresh round past `active_until` drains. Everything after
    // the heal is repair + residual protocol traffic.
    let recovery_ms = if crashes + flaps > 0 {
        d.sim.now().saturating_sub(HEAL_BY)
    } else {
        0
    };
    SweepRow {
        crashes,
        flaps,
        tx,
        tx_ratio: baseline_tx.map_or(1.0, |b| tx as f64 / b as f64),
        drops: d.metrics().lost_by_reason(),
        violations: conv.violations.len(),
        recovery_ms,
    }
}

/// The scripted cross-backend scenario: crash + restart of one node and one
/// link flap, timestamps chosen off the shard lookahead grid.
fn backend_run(sched: Sched) -> (u64, usize, usize) {
    let topo = Topology::square_grid(4);
    let mut d = deployment(42, sched, true);
    let journal = d.attach_journal();
    d.set_fault_schedule(
        FaultSchedule::new()
            .crash(1_337, NodeId(5))
            .restart(2_911, NodeId(5))
            .link_down(703, NodeId(1), NodeId(2))
            .link_up(4_441, NodeId(1), NodeId(2)),
    );
    d.schedule_all(churn(&topo, 42));
    d.run(240_000);
    assert!(d.sim.is_quiescent(), "backend scenario must quiesce");
    let conv = invariants::check_convergence(&d, &[sym("q")]);
    let j = journal.take();
    (j.content_hash(), j.records.len(), conv.violations.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_chaos.json".into());

    // Experiment 1: fault-rate sweep.
    let rates: &[(usize, usize)] = if quick {
        &[(0, 0), (2, 2)]
    } else {
        &[(0, 0), (1, 1), (2, 2), (3, 2)]
    };
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut baseline_tx = None;
    for &(crashes, flaps) in rates {
        let row = sweep_run(101, crashes, flaps, baseline_tx);
        if crashes + flaps == 0 {
            baseline_tx = Some(row.tx);
        }
        rows.push(row);
    }
    let worst_violations = rows.iter().map(|r| r.violations).max().unwrap_or(0);

    // Experiment 2: backend determinism (same scenario in quick and full
    // mode — the pinned hash below anchors both).
    let (heap_hash, heap_records, heap_viol) = backend_run(Sched::Heap);
    let (wheel_hash, _, _) = backend_run(Sched::Wheel);
    let (shard_hash, _, _) = backend_run(Sched::Shard { workers: 2 });
    if heap_hash != wheel_hash || heap_hash != shard_hash {
        eprintln!(
            "chaos: backend journals diverge (heap {heap_hash:016x}, wheel {wheel_hash:016x}, \
             shard {shard_hash:016x})"
        );
        return ExitCode::FAILURE;
    }
    if worst_violations > 0 || heap_viol > 0 {
        eprintln!("chaos: convergence violations survived healing");
        return ExitCode::FAILURE;
    }

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"chaos\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(
        s,
        "  \"grid\": 16, \"heal_by_ms\": {HEAL_BY}, \"active_until_ms\": {ACTIVE_UNTIL},"
    );
    s.push_str("  \"fault_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"crashes\": {}, \"link_flaps\": {}, \"tx\": {}, \"tx_ratio\": {:.2}, \
             \"drops_loss\": {}, \"drops_dead_node\": {}, \"drops_retries\": {}, \
             \"drops_partition\": {}, \"convergence_violations\": {}, \"recovery_ms\": {}}}",
            r.crashes,
            r.flaps,
            r.tx,
            r.tx_ratio,
            r.drops[0],
            r.drops[1],
            r.drops[2],
            r.drops[3],
            r.violations,
            r.recovery_ms,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"backend_determinism\": {{\"hash\": \"{heap_hash:016x}\", \"records\": {heap_records}, \
         \"backends\": [\"heap\", \"wheel\", \"shard2\"]}}"
    );
    s.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &s) {
        eprintln!("chaos: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos OK: {} sweep rows, backend hash {heap_hash:016x} -> {out_path}",
        rows.len()
    );
    ExitCode::SUCCESS
}
