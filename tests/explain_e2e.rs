//! End-to-end `explain` over a recursive program: a transitive-closure
//! chain derived across a lossy-free 4×4 grid must yield a multi-level
//! cross-node derivation tree whose edges carry journal-enriched hop and
//! latency attribution, and whose critical path walks leaf → result in
//! nondecreasing finish time.

use sensorlog::prelude::*;
use sensorlog::provenance::{critical_path, explain_atom, render_text, ProvDag};

const REACH: &str = r#"
    .output reach.
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn tup(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|&v| Term::Int(v)).collect::<Vec<_>>())
}

/// edge(1,2) @ node 0, edge(2,3) @ node 10, edge(3,4) @ node 15: the
/// chain spans the grid, so every join crosses the network.
fn chain_events() -> Vec<WorkloadEvent> {
    [(0u32, 1i64, 2i64), (10, 2, 3), (15, 3, 4)]
        .iter()
        .enumerate()
        .map(|(i, &(node, x, y))| WorkloadEvent {
            at: 1_000 + i as u64 * 500,
            node: NodeId(node),
            pred: sym("edge"),
            tuple: tup(&[x, y]),
            kind: UpdateKind::Insert,
        })
        .collect()
}

fn run_chain() -> (Deployment, sensorlog::netsim::Journal) {
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 5,
            ..SimConfig::default()
        },
        provenance: Provenance::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(
        REACH,
        BuiltinRegistry::standard(),
        Topology::square_grid(4),
        cfg,
    )
    .unwrap();
    let journal = d.attach_journal();
    d.schedule_all(chain_events());
    d.run(60_000_000);
    let j = journal.take();
    (d, j)
}

#[test]
fn recursive_chain_explains_end_to_end() {
    let (d, journal) = run_chain();
    let reach = d.results(sym("reach"));
    assert!(
        reach.contains(&tup(&[1, 4])),
        "chain must close transitively, got {reach:?}"
    );

    let records = d.provenance_records();
    let dag = ProvDag::build_with_journal(&records, &journal);
    let proof = dag
        .why(sym("reach"), &tup(&[1, 4]))
        .expect("reach(1,4) live");

    // The root is the recursive rule; one premise is itself derived
    // (reach(1,3)), recursing down to the edge(1,2) leaf.
    assert_eq!(
        proof.rule_id,
        Some(1),
        "reach(1,4) comes from the step rule"
    );
    let derived = proof
        .premises
        .iter()
        .find(|e| e.premise.rule_id.is_some())
        .expect("the step rule consumes a derived reach premise");
    assert_eq!(derived.premise.pred, sym("reach"));
    assert_eq!(derived.premise.tuple, tup(&[1, 3]));
    let leaf_edge = proof
        .premises
        .iter()
        .find(|e| e.premise.rule_id.is_none())
        .expect("the step rule consumes an EDB edge premise");
    assert_eq!(leaf_edge.premise.pred, sym("edge"));

    // Cross-node evidence: some premise travelled, and the journal pairing
    // confirmed its deliveries.
    let routed = proof
        .premises
        .iter()
        .chain(derived.premise.premises.iter())
        .find(|e| !e.hops.is_empty())
        .expect("a grid-spanning chain must route messages");
    assert!(
        routed.hops.iter().any(|h| h.delivered_at.is_some()),
        "journal enrichment must mark deliveries on {:?}",
        routed.hops
    );
    assert!(routed.latency > 0, "a routed premise takes sim time");

    // Critical path: leaf first, finish times nondecreasing, root last.
    let path = critical_path(&proof);
    assert!(path.len() >= 3, "chain depth ≥ 3, got {}", path.len());
    assert_eq!(path.last().unwrap().pred, sym("reach"));
    assert_eq!(path.last().unwrap().tuple, tup(&[1, 4]));
    assert!(
        path.windows(2).all(|w| w[0].finish_at <= w[1].finish_at),
        "critical path must be causally ordered: {path:?}"
    );

    // The rendered tree nests all three chain links.
    let text = render_text(&proof);
    for needle in ["reach(1, 4)", "reach(1, 3)", "edge(1, 2)", "sim-ms"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn deployment_explain_covers_present_and_absent() {
    let (d, _journal) = run_chain();

    let present = d.explain(sym("reach"), &tup(&[1, 4]));
    assert!(present.is_proof());
    assert!(present.text().contains("critical path"));
    assert!(present.dot().is_some_and(|dot| dot.starts_with("digraph")));

    // reach(4,1) never derives (the chain is directed): why-not names the
    // rules and their first failing subgoal.
    let absent = d.explain(sym("reach"), &tup(&[4, 1]));
    assert!(!absent.is_proof());
    let text = absent.text();
    assert!(
        text.contains("not derivable"),
        "why-not render missing: {text}"
    );

    // explain_atom agrees with the trait surface.
    let dag = ProvDag::build(&d.provenance_records());
    let e = explain_atom(
        &dag,
        &d.prog.analysis.program,
        &d.prog.reg,
        sym("reach"),
        &tup(&[1, 4]),
    );
    assert!(e.is_proof());

    // And the whole run satisfies the provenance invariant.
    let report = check_provenance(&d, &[sym("reach")]);
    assert!(report.ok(), "violations: {:?}", report.violations);
}
