//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`, `Bencher::iter`/
//! `iter_with_setup`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — over a plain wall-clock loop. Statistics are
//! a median-of-batches estimate, not criterion's bootstrap analysis; good
//! enough to spot order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_BATCHES: usize = 7;
const BATCH_BUDGET: Duration = Duration::from_millis(40);

/// Per-benchmark timing harness.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Calibrate: how many iterations fit the batch budget?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (BATCH_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(TARGET_BATCHES);
        for _ in 0..TARGET_BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        // Setup cost is excluded per batch, not per iteration: each timed
        // sample runs on a fresh setup value.
        let mut samples = Vec::with_capacity(TARGET_BATCHES);
        for _ in 0..WARMUP_ITERS as usize + TARGET_BATCHES {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.drain(..WARMUP_ITERS as usize);
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<48} {value:>10.3} {unit}/iter");
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.ns_per_iter);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.ns_per_iter);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &v| {
            b.iter(|| total += v)
        });
        group.finish();
        assert!(total > 0);
    }
}
