//! Tables 4 and 5: the observability views the telemetry layer adds on
//! top of the paper's communication-cost currency.
//!
//! * **Table 4** — per-predicate message breakdown: where the traffic of a
//!   run actually goes, predicate by predicate, split into the storage /
//!   probe / result planes. Compares the two shortest-path-tree programs
//!   (logicH carries a per-edge argument that logicJ drops, so logicH ships
//!   strictly more result traffic per predicate) and PA vs Centroid on the
//!   two-stream join (Centroid concentrates store traffic on one owner;
//!   PA trades it for probe traffic along bands).
//! * **Table 5** — phase timing: for the same four runs, how often each
//!   instrumented runtime phase fired and how much simulated time the
//!   latency-style phases accumulated. Wall-clock is recorded in the
//!   snapshot too but deliberately left out of the table: it varies run to
//!   run, while counts and sim-ms are deterministic.

use crate::common::run_case;
use crate::table::Table;
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::{graph_edges, UniformStreams};
use sensorlog_core::{PassMode, RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};
use sensorlog_telemetry::{Snapshot, Telemetry};

use super::sptree::{LOGIC_H, LOGIC_J};

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

/// Run one shortest-path-tree program with telemetry enabled and return
/// its snapshot (the sptree experiment itself runs blind; here the
/// breakdown is the point).
fn sptree_snapshot(src: &str, m: u32) -> Snapshot {
    let topo = Topology::square_grid(m);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig::default(),
        telemetry: Telemetry::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(200_000_000);
    d.telemetry_snapshot()
}

/// Run the two-stream join under `strategy` and return the point snapshot.
fn join_snapshot(strategy: Strategy, m: u32) -> Snapshot {
    let topo = Topology::square_grid(m);
    let events = UniformStreams {
        preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
        interval: 8_000,
        duration: 16_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        groups: m * m * 2,
        seed: 41 + m as u64,
    }
    .events(&topo);
    run_case(
        JOIN2,
        topo,
        strategy,
        PassMode::OnePass,
        SimConfig::default(),
        None,
        events,
        Symbol::intern("q"),
        30_000_000,
    )
    .snapshot
}

/// The four runs both tables report, labelled.
fn runs() -> Vec<(&'static str, Snapshot)> {
    vec![
        ("logicH m=4", sptree_snapshot(LOGIC_H, 4)),
        ("logicJ m=4", sptree_snapshot(LOGIC_J, 4)),
        (
            "PA join m=6",
            join_snapshot(Strategy::Perpendicular { band_width: 1.0 }, 6),
        ),
        ("Centroid join m=6", join_snapshot(Strategy::Centroid, 6)),
    ]
}

/// Tables 4 and 5 from one set of runs (the dispatcher caches the pair so
/// `all` doesn't run the four deployments twice).
pub fn table4_table5() -> (Table, Table) {
    let runs = runs();
    (build_table4(&runs), build_table5(&runs))
}

/// Table 4: per-predicate message breakdown (per-hop sends by plane).
fn build_table4(runs: &[(&'static str, Snapshot)]) -> Table {
    let mut t = Table::new(
        "table4",
        "per-predicate message breakdown (per-hop sends)",
        &[
            "run", "pred", "store", "probe", "result", "center", "deltas", "emitted",
        ],
    );
    for (label, snap) in runs {
        let mut total_sent = 0u64;
        for pred in snap.pred_scopes() {
            let scope = format!("pred:{pred}");
            let store = snap.counter(&scope, "sent_store");
            let probe = snap.counter(&scope, "sent_probe");
            let result = snap.counter(&scope, "sent_result");
            // Centroid ships everything on the to-center plane instead.
            let center = snap.counter(&scope, "sent_centroid");
            total_sent += store + probe + result + center;
            t.row(vec![
                label.to_string(),
                pred.clone(),
                store.to_string(),
                probe.to_string(),
                result.to_string(),
                center.to_string(),
                snap.counter(&scope, "deriv_deltas").to_string(),
                snap.counter(&scope, "results_emitted").to_string(),
            ]);
        }
        assert!(total_sent > 0, "{label}: no per-predicate traffic recorded");
    }
    t
}

/// Table 5: phase activity — how often each instrumented phase fired and
/// the simulated latency it accumulated.
fn build_table5(runs: &[(&'static str, Snapshot)]) -> Table {
    // Runtime phases first, simulator phases last; latency-style phases
    // (result.apply, join.probe) are the ones with meaningful sim-ms.
    const PHASES: &[&str] = &[
        "core.update.initiate",
        "core.join.start",
        "core.join.probe",
        "core.result.apply",
        "inc.apply",
        "sim.route",
        "sim.deliver",
        "sim.timer",
    ];
    let mut t = Table::new(
        "table5",
        "phase activity: fire count and accumulated simulated latency",
        &["run", "phase", "count", "sim ms"],
    );
    for (label, snap) in runs {
        for &name in PHASES {
            let Some(p) = snap.phase(name) else { continue };
            t.row(vec![
                label.to_string(),
                name.to_string(),
                p.count.to_string(),
                p.sim_ms.to_string(),
            ]);
        }
        assert!(
            snap.phase("sim.deliver").is_some(),
            "{label}: profiler recorded no deliveries"
        );
    }
    t
}
