//! Rule-body evaluation: the local join machinery.
//!
//! Evaluates a rule body left-to-right over a [`Database`], producing the
//! satisfying substitutions together with the positive subgoal matches that
//! produced them (the inputs of a *derivation*, Definition 2). Supports:
//!
//! * **pinning** one literal to a single delta tuple (semi-naive and
//!   incremental evaluation seed there);
//! * a **tuple filter** excluding one tuple at chosen literal positions —
//!   the "old state for occurrences after the updated one" staircase that
//!   makes self-join deltas exact;
//! * optional **timestamp visibility** (Theorem 3's window discipline) for
//!   the distributed runtime.

use crate::error::EvalError;
use crate::relation::Database;
use sensorlog_logic::ast::{Atom, CmpOp, Literal, Rule};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::flat::{flat_compare, flat_eval, flat_is_ground, flat_match_args, FlatSubst};
use sensorlog_logic::intern::{self, ConstId};
use sensorlog_logic::unify::Subst;
use sensorlog_logic::{Symbol, Term, Tuple};
use std::collections::BTreeMap;

/// Excludes `tuple` from matching `pred` at the given body literal indexes.
#[derive(Clone, Debug)]
pub struct TupleFilter {
    pub pred: Symbol,
    pub tuple: Tuple,
    pub literal_indexes: Vec<usize>,
}

/// Timestamp visibility for probes (Theorem 3): only tuples visible at
/// `tau` under each predicate's window participate.
#[derive(Clone, Debug)]
pub struct Visibility<'a> {
    pub tau: u64,
    pub windows: &'a BTreeMap<Symbol, u64>,
}

/// Semantic pattern match: like `sensorlog_logic::unify::match_args`, but evaluates interpreted
/// function symbols in ground pattern positions and *solves* linear stage
/// patterns — `D + 1` matched against `2` binds `D = 1`. This is what lets
/// XY rules like `h(X, Y, D + 1) :- …, not hp(Y, D + 1)` react to an
/// incoming `hp(0, 2)` tuple (the paper's term-matching operator extended
/// to interpreted arithmetic).
pub fn sem_match(reg: &BuiltinRegistry, pat: &Term, val: &Term, s: &mut Subst) -> bool {
    let p = s.apply(pat);
    if p.is_ground() {
        return match reg.eval_term(&p) {
            Ok(v) => &v == val,
            Err(_) => false,
        };
    }
    match (&p, val) {
        (Term::Var(v), _) => {
            s.bind(*v, val.clone());
            true
        }
        (Term::App(f, args), Term::Int(n)) if args.len() == 2 => {
            let solve = |v: sensorlog_logic::Symbol, bound: Option<i64>, s: &mut Subst| match bound
            {
                Some(x) => {
                    s.bind(v, Term::Int(x));
                    true
                }
                None => false,
            };
            match (f.as_str(), &args[0], &args[1]) {
                ("add", Term::Var(v), Term::Int(k)) => solve(*v, n.checked_sub(*k), s),
                ("add", Term::Int(k), Term::Var(v)) => solve(*v, n.checked_sub(*k), s),
                ("sub", Term::Var(v), Term::Int(k)) => solve(*v, n.checked_add(*k), s),
                _ => false,
            }
        }
        (Term::App(f, pargs), Term::App(g, vargs))
            if f == g && pargs.len() == vargs.len() && !reg.is_func(*f) =>
        {
            pargs
                .iter()
                .zip(vargs.iter())
                .all(|(pp, vv)| sem_match(reg, pp, vv, s))
        }
        _ => false,
    }
}

/// [`sem_match`] over an argument list.
pub fn sem_match_args(reg: &BuiltinRegistry, pats: &[Term], vals: &[Term], s: &mut Subst) -> bool {
    pats.len() == vals.len()
        && pats
            .iter()
            .zip(vals.iter())
            .all(|(p, v)| sem_match(reg, p, v, s))
}

/// One satisfying assignment of a rule body. The substitution is flat
/// (variables → interned constant ids); use [`FlatSubst::to_subst`] at
/// boundaries that need boxed terms (lineage witnesses, aggregates).
#[derive(Clone, Debug)]
pub struct Solution {
    pub subst: FlatSubst,
    /// `(literal index, predicate, tuple)` for each positive relational
    /// subgoal used — the derivation inputs.
    pub inputs: Vec<(usize, Symbol, Tuple)>,
}

/// Body evaluator over a database snapshot.
pub struct BodyEval<'a> {
    pub db: &'a Database,
    pub reg: &'a BuiltinRegistry,
    pub filter: Option<&'a TupleFilter>,
    pub vis: Option<Visibility<'a>>,
    /// When false, positive-literal probes bypass the relation indexes and
    /// run as filtered scans — the A/B baseline for `EvalConfig::use_index`.
    pub use_index: bool,
}

impl<'a> BodyEval<'a> {
    pub fn new(db: &'a Database, reg: &'a BuiltinRegistry) -> BodyEval<'a> {
        BodyEval {
            db,
            reg,
            filter: None,
            vis: None,
            use_index: true,
        }
    }

    /// All solutions of `body`, optionally pinning literal `pinned.0` to
    /// tuple `pinned.1` (works for positive *and* negated literals — a
    /// pinned negated literal is matched positively and skipped as a check,
    /// which is exactly the `T_s1` construction of Sec. IV-B).
    pub fn solutions(
        &self,
        body: &[Literal],
        seed: FlatSubst,
        pinned: Option<(usize, &Tuple)>,
    ) -> Result<Vec<Solution>, EvalError> {
        let order = order_body(body, pinned.map(|(i, _)| i));
        let mut out = Vec::new();
        let mut inputs = Vec::new();
        self.walk(body, &order, 0, seed, pinned, &mut inputs, &mut out)?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        body: &[Literal],
        order: &[usize],
        step: usize,
        subst: FlatSubst,
        pinned: Option<(usize, &Tuple)>,
        inputs: &mut Vec<(usize, Symbol, Tuple)>,
        out: &mut Vec<Solution>,
    ) -> Result<(), EvalError> {
        if step == order.len() {
            // Canonical input order (by literal index): derivations must
            // compare equal regardless of which literal was pinned.
            let mut inputs = inputs.clone();
            inputs.sort_by_key(|(i, _, _)| *i);
            out.push(Solution { subst, inputs });
            return Ok(());
        }
        let idx = order[step];
        let lit = &body[idx];
        match lit {
            Literal::Pos(atom) => {
                if let Some((pi, pt)) = pinned {
                    if pi == idx {
                        let mut s = subst;
                        if flat_match_args(self.reg, &atom.args, pt.ids(), &mut s) {
                            inputs.push((idx, atom.pred, pt.clone()));
                            self.walk(body, order, step + 1, s, pinned, inputs, out)?;
                            inputs.pop();
                        }
                        return Ok(());
                    }
                }
                let candidates = self.candidates(atom, &subst, idx);
                for t in candidates {
                    let mut s = subst.clone();
                    if flat_match_args(self.reg, &atom.args, t.ids(), &mut s) {
                        inputs.push((idx, atom.pred, t.clone()));
                        self.walk(body, order, step + 1, s, pinned, inputs, out)?;
                        inputs.pop();
                    }
                }
                Ok(())
            }
            Literal::Neg(atom) => {
                if let Some((pi, pt)) = pinned {
                    if pi == idx {
                        // Pinned negated literal: match positively, skip the
                        // negation check for this occurrence (Sec. IV-B).
                        let mut s = subst;
                        if flat_match_args(self.reg, &atom.args, pt.ids(), &mut s) {
                            self.walk(body, order, step + 1, s, pinned, inputs, out)?;
                        }
                        return Ok(());
                    }
                }
                if self.neg_holds(atom, &subst, idx)? {
                    self.walk(body, order, step + 1, subst, pinned, inputs, out)?;
                }
                Ok(())
            }
            Literal::Cmp(op, l, r) => {
                match (flat_is_ground(l, &subst), flat_is_ground(r, &subst)) {
                    (true, true) => {
                        if flat_compare(self.reg, *op, l, r, &subst)? {
                            self.walk(body, order, step + 1, subst, pinned, inputs, out)?;
                        }
                        Ok(())
                    }
                    (false, true) if *op == CmpOp::Eq => {
                        // Assignment: bind the left variable. (A non-ground
                        // side that is a `Var` is necessarily unbound — flat
                        // bindings are ground.)
                        if let Term::Var(v) = l {
                            let mut s = subst;
                            let id = flat_eval(self.reg, r, &s)?;
                            s.bind(*v, id);
                            self.walk(body, order, step + 1, s, pinned, inputs, out)?;
                            Ok(())
                        } else {
                            let lg = intern::boundary(|| subst.to_subst().apply(l));
                            Err(EvalError::Internal(format!(
                                "cannot assign to non-variable `{lg}`"
                            )))
                        }
                    }
                    (true, false) if *op == CmpOp::Eq => {
                        if let Term::Var(v) = r {
                            let mut s = subst;
                            let id = flat_eval(self.reg, l, &s)?;
                            s.bind(*v, id);
                            self.walk(body, order, step + 1, s, pinned, inputs, out)?;
                            Ok(())
                        } else {
                            let rg = intern::boundary(|| subst.to_subst().apply(r));
                            Err(EvalError::Internal(format!(
                                "cannot assign to non-variable `{rg}`"
                            )))
                        }
                    }
                    _ => Err(EvalError::Internal(format!(
                        "comparison `{lit}` reached with unbound variables"
                    ))),
                }
            }
            Literal::Builtin(atom) => {
                // Evaluate arguments flat, then cross the procedural-builtin
                // boundary once with resolved terms.
                let mut ids: Vec<ConstId> = Vec::with_capacity(atom.args.len());
                for a in atom.args.iter() {
                    if flat_is_ground(a, &subst) {
                        ids.push(flat_eval(self.reg, a, &subst)?);
                    } else {
                        return Err(EvalError::Internal(format!(
                            "builtin `{lit}` reached with unbound variables"
                        )));
                    }
                }
                let args: Vec<Term> = intern::boundary(|| intern::resolve_slice(&ids));
                if self.reg.call_pred(atom.pred, &args)? {
                    self.walk(body, order, step + 1, subst, pinned, inputs, out)?;
                }
                Ok(())
            }
        }
    }

    /// Candidate tuples for a positive atom, honoring filter + visibility,
    /// using the relation index on the currently-ground positions.
    fn candidates(&self, atom: &Atom, subst: &FlatSubst, lit_idx: usize) -> Vec<Tuple> {
        let rel = match self.db.relation(atom.pred) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let mut cols: Vec<usize> = Vec::new();
        let mut key: Vec<ConstId> = Vec::new();
        for (i, a) in atom.args.iter().enumerate() {
            if flat_is_ground(a, subst) {
                // Evaluate interpreted functions in the key so `d + 1`
                // matches stored integers.
                if let Ok(v) = flat_eval(self.reg, a, subst) {
                    cols.push(i);
                    key.push(v);
                }
            }
        }
        let mut raw = Vec::new();
        if cols.is_empty() {
            raw.extend(rel.tuples().cloned());
        } else if self.use_index {
            rel.select(&cols, &key, &mut raw);
        } else {
            // Forced-scan baseline: same result set and canonical order as
            // `select`, without touching the index machinery or its stats.
            raw.extend(
                rel.tuples()
                    .filter(|t| {
                        cols.iter().all(|&c| c < t.arity())
                            && cols.iter().zip(key.iter()).all(|(&c, &k)| t.id(c) == k)
                    })
                    .cloned(),
            );
        }
        raw.retain(|t| {
            if let Some(f) = self.filter {
                if f.pred == atom.pred && f.literal_indexes.contains(&lit_idx) && *t == f.tuple {
                    return false;
                }
            }
            if let Some(vis) = &self.vis {
                let meta = rel.meta(t).expect("selected tuple has meta");
                if !meta.visible_at(vis.tau, vis.windows.get(&atom.pred).copied()) {
                    return false;
                }
            }
            true
        });
        raw
    }

    /// `true` when no visible tuple matches the (fully ground) negated atom.
    fn neg_holds(&self, atom: &Atom, subst: &FlatSubst, lit_idx: usize) -> Result<bool, EvalError> {
        let mut ids: Vec<ConstId> = Vec::with_capacity(atom.args.len());
        for a in atom.args.iter() {
            if flat_is_ground(a, subst) {
                ids.push(flat_eval(self.reg, a, subst)?);
            } else {
                return Err(EvalError::Internal(format!(
                    "negated subgoal `{}` reached with unbound variables",
                    atom
                )));
            }
        }
        let t = Tuple::from_ids(ids);
        let rel = match self.db.relation(atom.pred) {
            Some(r) => r,
            None => return Ok(true),
        };
        if let Some(f) = self.filter {
            if f.pred == atom.pred && f.literal_indexes.contains(&lit_idx) && t == f.tuple {
                return Ok(true); // excluded from the check
            }
        }
        match rel.meta(&t) {
            None => Ok(true),
            Some(m) => match &self.vis {
                Some(vis) => Ok(!m.visible_at(vis.tau, vis.windows.get(&atom.pred).copied())),
                None => Ok(false),
            },
        }
    }
}

/// Evaluation order of body literals: the pinned literal (if any) first,
/// then greedily — fully-bound checks and assignments as early as possible,
/// positive subgoals preferring those with at least one bound argument.
///
/// Thin wrapper over [`sensorlog_logic::boundness::order_literals`], the
/// shared boundness analysis also consumed by the safety check and the
/// `sensorlog check` lints.
pub fn order_body(body: &[Literal], pinned: Option<usize>) -> Vec<usize> {
    sensorlog_logic::boundness::order_literals(body, pinned)
}

/// Instantiate a (non-aggregate) rule head under a solution substitution,
/// evaluating interpreted functions.
pub fn instantiate_head(
    rule: &Rule,
    subst: &FlatSubst,
    reg: &BuiltinRegistry,
) -> Result<Tuple, EvalError> {
    debug_assert!(rule.agg.is_none(), "aggregate heads use aggregate::finish");
    let mut ids: Vec<ConstId> = Vec::with_capacity(rule.head.args.len());
    for a in rule.head.args.iter() {
        if flat_is_ground(a, subst) {
            ids.push(flat_eval(reg, a, subst)?);
        } else {
            return Err(EvalError::Internal(format!(
                "head argument `{a}` unbound in rule #{}",
                rule.id
            )));
        }
    }
    Ok(Tuple::from_ids(ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::TupleMeta;
    use sensorlog_logic::parser::{parse_fact, parse_rule};

    fn db_with(facts: &[&str]) -> Database {
        let mut db = Database::new();
        for f in facts {
            let (p, args) = parse_fact(f).unwrap();
            db.insert(p, Tuple::new(args));
        }
        db
    }

    fn solutions_of(rule_src: &str, facts: &[&str]) -> Vec<Tuple> {
        let rule = parse_rule(rule_src).unwrap();
        let db = db_with(facts);
        let reg = BuiltinRegistry::standard();
        let ev = BodyEval::new(&db, &reg);
        let sols = ev.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        let mut out: Vec<Tuple> = sols
            .iter()
            .map(|s| instantiate_head(&rule, &s.subst, &reg).unwrap())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    #[test]
    fn simple_join() {
        let out = solutions_of(
            "q(X, Z) :- e(X, Y), e(Y, Z).",
            &["e(1, 2)", "e(2, 3)", "e(2, 4)"],
        );
        assert_eq!(out, vec![tup("1, 3"), tup("1, 4")]);
    }

    #[test]
    fn comparison_filters() {
        let out = solutions_of("q(X) :- p(X), X > 2.", &["p(1)", "p(2)", "p(3)", "p(4)"]);
        assert_eq!(out, vec![tup("3"), tup("4")]);
    }

    #[test]
    fn negation_before_positives_is_reordered() {
        // Paper's Example 1 ordering: negation written first.
        let out = solutions_of(
            "uncov(L) :- not cov(L), veh(L).",
            &["veh(1)", "veh(2)", "cov(1)"],
        );
        assert_eq!(out, vec![tup("2")]);
    }

    #[test]
    fn arithmetic_in_head() {
        let out = solutions_of("q(X + 1) :- p(X).", &["p(1)", "p(2)"]);
        assert_eq!(out, vec![tup("2"), tup("3")]);
    }

    #[test]
    fn assignment_binds() {
        let out = solutions_of("q(Y) :- p(X), Y == X * 10.", &["p(1)", "p(2)"]);
        assert_eq!(out, vec![tup("10"), tup("20")]);
    }

    #[test]
    fn function_symbol_matching() {
        let out = solutions_of(
            "q(X, Y) :- p(loc(X, Y)).",
            &["p(loc(1, 2))", "p(loc(3, 4))", "p(other(9))"],
        );
        assert_eq!(out, vec![tup("1, 2"), tup("3, 4")]);
    }

    #[test]
    fn index_key_evaluates_functions() {
        // The pattern arg `X + 1` must be evaluated before index lookup.
        let out = solutions_of("q(X) :- p(X), r(X + 1).", &["p(1)", "p(5)", "r(2)"]);
        assert_eq!(out, vec![tup("1")]);
    }

    #[test]
    fn pinned_positive_literal() {
        let rule = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let db = db_with(&["e(1, 2)", "e(2, 3)"]);
        let reg = BuiltinRegistry::standard();
        let ev = BodyEval::new(&db, &reg);
        // Pin the second literal to (2, 3): only X=1,Z=3 solution remains.
        let pin = tup("2, 3");
        let sols = ev
            .solutions(&rule.body, FlatSubst::new(), Some((1, &pin)))
            .unwrap();
        assert_eq!(sols.len(), 1);
        let head = instantiate_head(&rule, &sols[0].subst, &reg).unwrap();
        assert_eq!(head, tup("1, 3"));
        // Derivation inputs contain both e-tuples with their literal index.
        assert_eq!(sols[0].inputs.len(), 2);
        assert!(sols[0].inputs.iter().any(|(i, _, t)| *i == 1 && *t == pin));
    }

    #[test]
    fn pinned_negated_literal() {
        // T_s construction: pin `not cov(L)` to cov(2) and match positively.
        let rule = parse_rule("uncov(L) :- veh(L), not cov(L).").unwrap();
        let db = db_with(&["veh(1)", "veh(2)"]);
        let reg = BuiltinRegistry::standard();
        let ev = BodyEval::new(&db, &reg);
        let pin = tup("2");
        let sols = ev
            .solutions(&rule.body, FlatSubst::new(), Some((1, &pin)))
            .unwrap();
        assert_eq!(sols.len(), 1);
        let head = instantiate_head(&rule, &sols[0].subst, &reg).unwrap();
        assert_eq!(head, tup("2"));
        // The negated match is NOT part of the derivation inputs.
        assert_eq!(sols[0].inputs.len(), 1);
    }

    #[test]
    fn tuple_filter_excludes_specific_occurrence() {
        let rule = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let db = db_with(&["e(1, 1)"]);
        let reg = BuiltinRegistry::standard();
        let filter = TupleFilter {
            pred: Symbol::intern("e"),
            tuple: tup("1, 1"),
            literal_indexes: vec![1],
        };
        let ev = BodyEval {
            db: &db,
            reg: &reg,
            filter: Some(&filter),
            vis: None,
            use_index: true,
        };
        // e(1,1) join e(1,1) exists, but occurrence 1 excludes the tuple.
        let sols = ev.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        assert!(sols.is_empty());
        // A pin overrides the filter at its own occurrence: pinning
        // occurrence 1 to the filtered tuple still yields the solution
        // via occurrence 0 (where the filter does not apply).
        let pin = tup("1, 1");
        let sols = ev
            .solutions(&rule.body, FlatSubst::new(), Some((1, &pin)))
            .unwrap();
        assert_eq!(sols.len(), 1);
        // Filtering occurrence 0 instead kills it: the delta staircase
        // (old state before the updated occurrence).
        let filter0 = TupleFilter {
            pred: Symbol::intern("e"),
            tuple: tup("1, 1"),
            literal_indexes: vec![0],
        };
        let ev0 = BodyEval {
            db: &db,
            reg: &reg,
            filter: Some(&filter0),
            vis: None,
            use_index: true,
        };
        let sols = ev0
            .solutions(&rule.body, FlatSubst::new(), Some((1, &pin)))
            .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn visibility_hides_future_and_expired() {
        let rule = parse_rule("q(X) :- p(X).").unwrap();
        let mut db = Database::new();
        let p = Symbol::intern("p");
        db.relation_mut(p).insert(tup("1"), TupleMeta::at(100));
        db.relation_mut(p).insert(tup("2"), TupleMeta::at(500));
        let reg = BuiltinRegistry::standard();
        let mut windows = BTreeMap::new();
        windows.insert(p, 300u64);
        let ev = BodyEval {
            db: &db,
            reg: &reg,
            filter: None,
            vis: Some(Visibility {
                tau: 350,
                windows: &windows,
            }),
            use_index: true,
        };
        let sols = ev.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        // tau=350: p(1) gen 100 within window (100+300>350), p(2) in future.
        assert_eq!(sols.len(), 1);
        // tau=550: p(1) expired (100+300<=550), p(2) visible (gen 500).
        let ev2 = BodyEval {
            db: &db,
            reg: &reg,
            filter: None,
            vis: Some(Visibility {
                tau: 550,
                windows: &windows,
            }),
            use_index: true,
        };
        let sols = ev2.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].inputs[0].2, tup("2"));
    }

    #[test]
    fn negation_sees_tombstones_under_visibility() {
        let rule = parse_rule("q(X) :- p(X), not s(X).").unwrap();
        let mut db = Database::new();
        let (p, s) = (Symbol::intern("p"), Symbol::intern("s"));
        db.relation_mut(p).insert(tup("1"), TupleMeta::at(0));
        db.relation_mut(s).insert(tup("1"), TupleMeta::at(10));
        db.relation_mut(s).mark_deleted(&tup("1"), 50);
        let reg = BuiltinRegistry::standard();
        let windows = BTreeMap::new();
        // At tau=30 the s-tuple is alive (deleted later): q empty.
        let ev = BodyEval {
            db: &db,
            reg: &reg,
            filter: None,
            vis: Some(Visibility {
                tau: 30,
                windows: &windows,
            }),
            use_index: true,
        };
        assert!(ev
            .solutions(&rule.body, FlatSubst::new(), None)
            .unwrap()
            .is_empty());
        // At tau=60 the s-tuple is deleted: q(1) holds.
        let ev = BodyEval {
            db: &db,
            reg: &reg,
            filter: None,
            vis: Some(Visibility {
                tau: 60,
                windows: &windows,
            }),
            use_index: true,
        };
        assert_eq!(
            ev.solutions(&rule.body, FlatSubst::new(), None)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn order_body_puts_checks_after_binders() {
        let rule = parse_rule("q(L) :- not cov(L), veh(L), dist(L, L) <= 5.").unwrap();
        let order = order_body(&rule.body, None);
        // veh (idx 1) first, then the bound check/negation in some order.
        assert_eq!(order[0], 1);
        assert!(order.contains(&0) && order.contains(&2));
    }

    #[test]
    fn order_body_with_pin_starts_at_pin() {
        let rule = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let order = order_body(&rule.body, Some(1));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn builtin_pred_in_body() {
        use std::sync::Arc;
        let mut reg = BuiltinRegistry::standard();
        reg.register_pred(
            "even",
            Arc::new(|args: &[Term]| Ok(matches!(args, [Term::Int(i)] if i % 2 == 0))),
        );
        let rule = parse_rule("q(X) :- p(X), even(X).").unwrap();
        let rule = sensorlog_logic::safety::resolve_builtins(&rule, &reg);
        let db = db_with(&["p(1)", "p(2)", "p(3)", "p(4)"]);
        let ev = BodyEval::new(&db, &reg);
        let sols = ev.solutions(&rule.body, FlatSubst::new(), None).unwrap();
        assert_eq!(sols.len(), 2);
    }
}
