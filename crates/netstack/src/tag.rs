//! TAG-style in-network aggregation (cited as \[32\] in the paper):
//! partial aggregates combine up a gathering tree, so the root receives one
//! value per epoch at O(n) total messages instead of O(n·depth) for naive
//! per-reading forwarding.

use crate::tree::GatherTree;
use sensorlog_netsim::{App, Ctx, MsgMeta, NodeId, SimConfig, Simulator, Topology};

/// Aggregate operators with distributive/algebraic partial states.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum TagOp {
    Min,
    Max,
    Sum,
    Count,
    Avg,
}

/// Partial aggregate state: (sum, count, min, max) covers all five ops.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Partial {
    pub sum: f64,
    pub count: u64,
    pub min: f64,
    pub max: f64,
}

impl Partial {
    pub fn of(v: f64) -> Partial {
        Partial {
            sum: v,
            count: 1,
            min: v,
            max: v,
        }
    }

    pub fn merge(self, o: Partial) -> Partial {
        Partial {
            sum: self.sum + o.sum,
            count: self.count + o.count,
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    pub fn finish(self, op: TagOp) -> f64 {
        match op {
            TagOp::Min => self.min,
            TagOp::Max => self.max,
            TagOp::Sum => self.sum,
            TagOp::Count => self.count as f64,
            TagOp::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
pub struct PartialMsg {
    pub partial: Partial,
}

impl MsgMeta for PartialMsg {
    fn size_bytes(&self) -> usize {
        28
    }
    fn kind(&self) -> &'static str {
        "tag"
    }
}

/// One TAG epoch: leaves send immediately; interior nodes wait for all
/// children, merge, and forward (synchronized by child counting — the
/// loss-free case; synopsis diffusion would handle losses, future work as
/// in the paper).
pub struct TagNode {
    pub id: NodeId,
    pub parent: Option<NodeId>,
    pub expected_children: usize,
    pub reading: f64,
    acc: Option<Partial>,
    received: usize,
    pub result: Option<Partial>,
}

impl TagNode {
    fn maybe_forward(&mut self, ctx: &mut Ctx<PartialMsg>) {
        if self.received == self.expected_children {
            // No accumulator yet means a child's partial beat our own
            // start event; wait for on_start to fold in our reading.
            let Some(partial) = self.acc else { return };
            match self.parent {
                Some(p) => ctx.send(p, PartialMsg { partial }),
                None => self.result = Some(partial),
            }
        }
    }
}

impl App for TagNode {
    type Msg = PartialMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PartialMsg>) {
        let own = Partial::of(self.reading);
        self.acc = Some(match self.acc {
            Some(acc) => acc.merge(own), // children that raced our start
            None => own,
        });
        self.maybe_forward(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<PartialMsg>, _from: NodeId, msg: PartialMsg) {
        // A child's partial can, in principle, arrive before our own start
        // event: merge into whatever we have instead of panicking.
        self.acc = Some(match self.acc {
            Some(acc) => acc.merge(msg.partial),
            None => msg.partial,
        });
        self.received += 1;
        self.maybe_forward(ctx);
    }
}

/// Run one TAG epoch over `readings` (indexed by node); returns the root's
/// partial and the total message count.
pub fn run_epoch(
    topo: &Topology,
    tree: &GatherTree,
    readings: &[f64],
    config: SimConfig,
) -> (Partial, u64) {
    assert_eq!(readings.len(), topo.len());
    // `make_app` is now `'static` (restartable nodes need the factory for
    // the node's whole lifetime), so hand it owned per-node init data
    // instead of borrowing `tree` and `readings`.
    let init: Vec<(Option<NodeId>, usize, f64)> = topo
        .nodes()
        .map(|id| {
            (
                tree.parent[id.index()],
                tree.children(id).len(),
                readings[id.index()],
            )
        })
        .collect();
    let mut sim = Simulator::new(topo.clone(), config, move |id, _| {
        let (parent, expected_children, reading) = init[id.index()];
        TagNode {
            id,
            parent,
            expected_children,
            reading,
            acc: None,
            received: 0,
            result: None,
        }
    });
    sim.run_to_quiescence(10_000_000);
    let root_result = sim
        .node(tree.root)
        .result
        .expect("root must finish in a loss-free epoch");
    (root_result, sim.metrics.total_tx())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GatherTree;

    #[test]
    fn epoch_aggregates_exactly() {
        let topo = Topology::square_grid(4);
        let tree = GatherTree::bfs(&topo, NodeId(0));
        let readings: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let (p, msgs) = run_epoch(&topo, &tree, &readings, SimConfig::default());
        assert_eq!(p.finish(TagOp::Sum), 120.0);
        assert_eq!(p.finish(TagOp::Count), 16.0);
        assert_eq!(p.finish(TagOp::Min), 0.0);
        assert_eq!(p.finish(TagOp::Max), 15.0);
        assert!((p.finish(TagOp::Avg) - 7.5).abs() < 1e-9);
        // TAG sends exactly one message per non-root node.
        assert_eq!(msgs, 15);
    }

    #[test]
    fn tag_beats_naive_forwarding() {
        let topo = Topology::square_grid(6);
        let tree = GatherTree::bfs(&topo, NodeId(0));
        let readings = vec![1.0; 36];
        let (_, tag_msgs) = run_epoch(&topo, &tree, &readings, SimConfig::default());
        // Naive: each reading travels depth hops to the root.
        let naive: u64 = topo.nodes().map(|n| tree.depth[n.index()] as u64).sum();
        assert!(tag_msgs < naive, "TAG {tag_msgs} !< naive {naive}");
    }

    #[test]
    fn partial_merge_laws() {
        let a = Partial::of(3.0);
        let b = Partial::of(5.0).merge(Partial::of(1.0));
        let ab = a.merge(b);
        let ba = b.merge(a);
        assert_eq!(ab, ba); // commutative
        assert_eq!(ab.count, 3);
        assert_eq!(ab.min, 1.0);
        assert_eq!(ab.max, 5.0);
        assert_eq!(ab.sum, 9.0);
    }
}
