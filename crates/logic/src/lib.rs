//! # sensorlog-logic
//!
//! Language frontend of the *sensorlog* deductive framework for programming
//! sensor networks (reproduction of Gupta, Zhu & Xu, ICDE 2009).
//!
//! The framework uses full first-order logic: Datalog extended with function
//! symbols in predicate arguments (Turing complete), restricted negation,
//! and head aggregates (Sec. II-B of the paper). This crate provides:
//!
//! * [`term`] / [`ast`] — terms with function symbols & list sugar, rules,
//!   programs with `.window`/`.output`/`.base`/`.stage` directives;
//! * [`parser`] — the concrete syntax;
//! * [`unify`] — matching and unification (the term-matching operator);
//! * [`builtin`] — procedural built-in predicates and functions;
//! * [`safety`] — rule safety (footnote 3);
//! * [`depgraph`] / [`stratify`] — dependency graph and stratification;
//! * [`xy`] — XY-stratification (Sec. IV-C);
//! * [`magic`] — magic-set transformation (Sec. V);
//! * [`mod@analyze`] — one-shot validation + classification.
//!
//! ## Quick example
//!
//! ```
//! use sensorlog_logic::parser::parse_program;
//! use sensorlog_logic::builtin::BuiltinRegistry;
//! use sensorlog_logic::analyze::{analyze, ProgramClass};
//!
//! let prog = parse_program(r#"
//!     .window veh 30000.
//!     .output uncov.
//!     cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T),
//!                   dist(L1, L2) <= 50.
//!     uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
//! "#).unwrap();
//! let analysis = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
//! assert_eq!(analysis.class, ProgramClass::NonRecursive);
//! ```

pub mod absint;
pub mod analyze;
pub mod ast;
pub mod boundness;
pub mod builtin;
pub mod depgraph;
pub mod diag;
pub mod flat;
pub mod intern;
pub mod lexer;
pub mod magic;
pub mod parser;
pub mod safety;
pub mod span;
pub mod stratify;
pub mod symbol;
pub mod term;
pub mod unify;
pub mod xy;

pub use analyze::{analyze, Analysis, AnalyzeError, ProgramClass};
pub use ast::{AggFunc, AggSpec, Atom, CmpOp, Literal, Program, Rule};
pub use builtin::{BuiltinError, BuiltinRegistry};
pub use flat::FlatSubst;
pub use intern::ConstId;
pub use parser::{parse_fact, parse_facts, parse_program, parse_rule, parse_term, ParseError};
pub use span::{RuleSpans, Span};
pub use symbol::Symbol;
pub use term::{Term, Tuple};
