//! XY-stratification (Sec. IV-C).
//!
//! A program with recursion through negation can still be evaluated
//! bottom-up when its derived tables partition into *sub-tables* (by the
//! value of a distinguished **stage argument**) such that the dependency
//! graph over sub-tables is acyclic — the paper's (slightly generalized)
//! notion of XY-stratified programs \[43\].
//!
//! For each recursive SCC with internal negation we search for a stage
//! position per predicate such that in every rule with head in the SCC:
//!
//! * an SCC body literal whose stage is syntactically `head_stage − k`
//!   (k > 0) references a **lower** stage (a *Y*-relationship, always fine);
//! * an SCC body literal at the **same** stage (*X*-relationship)
//!   contributes an edge to the stage-local dependency graph, which must be
//!   acyclic;
//! * an SCC body literal whose stage variable is only *constrained* below
//!   the head stage by a comparison (`(D+1) > D'`, as in the paper's logicH
//!   program) also counts as a lower stage — this is the paper's
//!   generalization over the original definition;
//! * anything else (stage above head, un-analyzable stage) is rejected.
//!
//! The certified evaluation order within a stage is the topological order of
//! the stage-local graph — e.g. `(H'_d, H_d)` for logicH, matching the
//! paper's `H0, H'1, H1, H'2, …` schedule.

use crate::ast::{CmpOp, Literal, Program, Rule};
use crate::depgraph::DepGraph;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Normalized stage expression: a constant or `var + offset`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StageExpr {
    Const(i64),
    Linear(Symbol, i64),
}

/// Extract a stage expression from a term, if it has the supported shape.
pub fn stage_expr(t: &Term) -> Option<StageExpr> {
    match t {
        Term::Int(c) => Some(StageExpr::Const(*c)),
        Term::Var(v) => Some(StageExpr::Linear(*v, 0)),
        Term::App(f, args) if args.len() == 2 => {
            let fname = f.as_str();
            match (&args[0], &args[1], fname) {
                (Term::Var(v), Term::Int(k), "add") => Some(StageExpr::Linear(*v, *k)),
                (Term::Int(k), Term::Var(v), "add") => Some(StageExpr::Linear(*v, *k)),
                (Term::Var(v), Term::Int(k), "sub") => Some(StageExpr::Linear(*v, -k)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// How a body literal's stage relates to its rule's head stage.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StageRel {
    /// Body stage strictly below head stage.
    Lower,
    /// Body stage equals head stage.
    Same,
}

/// Like [`StageRel`], but distinguishing *how* a lower stage was proved —
/// the distinction the frontier-width analysis (`crate::absint`) rests on.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StageRelDetail {
    /// Body stage equals head stage.
    Same,
    /// Body stage is syntactically `head − k` (k > 0): the rule reads
    /// exactly one fixed earlier sub-table per head stage.
    LowerOffset(i64),
    /// Body stage is only *constrained* below the head stage by a
    /// comparison (`(D+1) > D'`): the body ranges over **all** earlier
    /// stages — a cumulative read, as in logicH's `hp` marker.
    LowerCmp,
}

impl StageRelDetail {
    pub fn coarse(self) -> StageRel {
        match self {
            StageRelDetail::Same => StageRel::Same,
            _ => StageRel::Lower,
        }
    }
}

/// Relation of a body stage expression to the head stage expression under
/// `rule`'s comparison constraints. `None` = indeterminate.
pub fn relate_detail(head: StageExpr, body: StageExpr, rule: &Rule) -> Option<StageRelDetail> {
    match (head, body) {
        (StageExpr::Linear(hv, ho), StageExpr::Linear(bv, bo)) if hv == bv => match ho - bo {
            d if d > 0 => Some(StageRelDetail::LowerOffset(d)),
            0 => Some(StageRelDetail::Same),
            _ => None,
        },
        (StageExpr::Const(hc), StageExpr::Const(bc)) => match hc - bc {
            d if d > 0 => Some(StageRelDetail::LowerOffset(d)),
            0 => Some(StageRelDetail::Same),
            _ => None,
        },
        _ => {
            // Look for a comparison proving body < head, e.g. `(D+1) > D'`.
            for lit in &rule.body {
                if let Literal::Cmp(op, l, r) = lit {
                    let (le, re) = (stage_expr(l), stage_expr(r));
                    let proves = match op {
                        CmpOp::Gt => le == Some(head) && re == Some(body),
                        CmpOp::Lt => le == Some(body) && re == Some(head),
                        _ => false,
                    };
                    if proves {
                        return Some(StageRelDetail::LowerCmp);
                    }
                }
            }
            None
        }
    }
}

/// Certified XY-stratification of one SCC.
#[derive(Clone, Debug)]
pub struct XyInfo {
    /// The SCC's predicates.
    pub scc: Vec<Symbol>,
    /// Stage argument position per predicate.
    pub stage_pos: BTreeMap<Symbol, usize>,
    /// Evaluation order of the SCC predicates *within* a stage
    /// (topological order of the stage-local dependency graph).
    pub stage_order: Vec<Symbol>,
}

/// Why the XY check failed.
#[derive(Clone, Debug, PartialEq)]
pub enum XyError {
    /// Aggregates inside a recursive-with-negation SCC are unsupported.
    AggregateInScc { rule_id: usize, span: Span },
    /// No assignment of stage positions satisfies the discipline.
    NoStageAssignment { scc: Vec<Symbol>, detail: String },
    /// The candidate search space exceeded the brute-force cap and no
    /// `.stage` hints were provided.
    TooManyCandidates { scc: Vec<Symbol> },
}

impl fmt::Display for XyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XyError::AggregateInScc { rule_id, span } => write!(
                f,
                "rule #{rule_id} at {span}: aggregates are not allowed in a recursive component with negation"
            ),
            XyError::NoStageAssignment { scc, detail } => write!(
                f,
                "component {{{}}} is not XY-stratified: {detail}",
                scc.iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            XyError::TooManyCandidates { scc } => {
                write!(
                f,
                "component {{{}}} too large for stage-position search; add `.stage pred N.` hints",
                scc.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            )
            }
        }
    }
}

impl std::error::Error for XyError {}

const SEARCH_CAP: usize = 4096;

/// Check XY-stratification of the SCC `scc` of `prog`, searching for stage
/// positions (honoring `.stage` hints).
pub fn check_scc(prog: &Program, scc: &[Symbol]) -> Result<XyInfo, XyError> {
    let scc_set: BTreeSet<Symbol> = scc.iter().copied().collect();
    let rules: Vec<&Rule> = prog
        .rules
        .iter()
        .filter(|r| scc_set.contains(&r.head.pred))
        .collect();
    for r in &rules {
        if r.agg.is_some()
            && r.body.iter().any(
                |l| matches!(l, Literal::Pos(a) | Literal::Neg(a) if scc_set.contains(&a.pred)),
            )
        {
            return Err(XyError::AggregateInScc {
                rule_id: r.id,
                span: r.spans.rule,
            });
        }
    }

    // Candidate stage positions per predicate (hint pins it; otherwise all
    // positions, tried right-to-left since stages conventionally come last).
    let mut candidates: Vec<(Symbol, Vec<usize>)> = Vec::new();
    for &p in scc {
        if let Some(&h) = prog.stage_hints.get(&p) {
            candidates.push((p, vec![h]));
            continue;
        }
        let arity = prog.arity_of(p).unwrap_or(0);
        if arity == 0 {
            return Err(XyError::NoStageAssignment {
                scc: scc.to_vec(),
                detail: format!("predicate {p} has arity 0 and cannot carry a stage argument"),
            });
        }
        candidates.push((p, (0..arity).rev().collect()));
    }
    let space: usize = candidates
        .iter()
        .map(|(_, v)| v.len())
        .try_fold(1usize, |a, b| a.checked_mul(b))
        .unwrap_or(usize::MAX);
    if space > SEARCH_CAP {
        return Err(XyError::TooManyCandidates { scc: scc.to_vec() });
    }

    let mut last_detail = String::from("no candidate stage positions");
    let mut assignment: BTreeMap<Symbol, usize> = BTreeMap::new();
    if try_assignments(
        &candidates,
        0,
        &mut assignment,
        &rules,
        &scc_set,
        &mut last_detail,
    ) {
        let stage_pos = assignment;
        let stage_order = stage_local_order(&rules, &scc_set, &stage_pos)
            .expect("acyclicity was verified during the search");
        return Ok(XyInfo {
            scc: scc.to_vec(),
            stage_pos,
            stage_order,
        });
    }
    Err(XyError::NoStageAssignment {
        scc: scc.to_vec(),
        detail: last_detail,
    })
}

fn try_assignments(
    candidates: &[(Symbol, Vec<usize>)],
    i: usize,
    assignment: &mut BTreeMap<Symbol, usize>,
    rules: &[&Rule],
    scc_set: &BTreeSet<Symbol>,
    last_detail: &mut String,
) -> bool {
    if i == candidates.len() {
        return match verify_assignment(rules, scc_set, assignment) {
            Ok(()) => true,
            Err(detail) => {
                *last_detail = detail;
                false
            }
        };
    }
    let (pred, ref positions) = candidates[i];
    for &pos in positions {
        assignment.insert(pred, pos);
        if try_assignments(candidates, i + 1, assignment, rules, scc_set, last_detail) {
            return true;
        }
    }
    assignment.remove(&pred);
    false
}

/// Relation of an SCC body literal's stage to the head stage, given the
/// rule's comparison constraints. `None` = indeterminate (reject).
fn relate(
    head: StageExpr,
    body: StageExpr,
    rule: &Rule,
    pos: &BTreeMap<Symbol, usize>,
) -> Option<StageRel> {
    let _ = pos;
    relate_detail(head, body, rule).map(StageRelDetail::coarse)
}

fn head_stage(rule: &Rule, pos: &BTreeMap<Symbol, usize>) -> Result<StageExpr, String> {
    let p = rule.head.pred;
    let idx = pos[&p];
    let arg = rule
        .head
        .args
        .get(idx)
        .ok_or_else(|| format!("rule #{}: head of {p} lacks argument {idx}", rule.id))?;
    stage_expr(arg).ok_or_else(|| {
        format!(
            "rule #{}: head stage argument `{arg}` of {p} is not a stage expression",
            rule.id
        )
    })
}

fn verify_assignment(
    rules: &[&Rule],
    scc_set: &BTreeSet<Symbol>,
    pos: &BTreeMap<Symbol, usize>,
) -> Result<(), String> {
    for rule in rules {
        let hstage = head_stage(rule, pos)?;
        for lit in &rule.body {
            let (atom, negated) = match lit {
                Literal::Pos(a) => (a, false),
                Literal::Neg(a) => (a, true),
                _ => continue,
            };
            if !scc_set.contains(&atom.pred) {
                continue;
            }
            let idx = pos[&atom.pred];
            let arg = atom.args.get(idx).ok_or_else(|| {
                format!(
                    "rule #{}: subgoal {} lacks argument {idx}",
                    rule.id, atom.pred
                )
            })?;
            let bstage = stage_expr(arg).ok_or_else(|| {
                format!(
                    "rule #{}: stage argument `{arg}` of subgoal {} is not a stage expression",
                    rule.id, atom.pred
                )
            })?;
            match relate(hstage, bstage, rule, pos) {
                Some(StageRel::Lower) => {}
                Some(StageRel::Same) => {
                    // Recorded by stage_local_order; nothing else to check
                    // here except that negation at the same stage is only
                    // legal if the local graph is acyclic (checked below).
                    let _ = negated;
                }
                None => {
                    return Err(format!(
                        "rule #{}: stage of subgoal {} is not provably ≤ the head stage",
                        rule.id, atom.pred
                    ));
                }
            }
        }
    }
    // Stage-local dependency graph must be acyclic.
    stage_local_order(rules, scc_set, pos).map(|_| ())
}

/// Topological order of the SCC predicates under same-stage (X) edges;
/// errors with a description if the stage-local graph has a cycle.
fn stage_local_order(
    rules: &[&Rule],
    scc_set: &BTreeSet<Symbol>,
    pos: &BTreeMap<Symbol, usize>,
) -> Result<Vec<Symbol>, String> {
    // edge head -> body for every Same-stage literal
    let mut edges: BTreeMap<Symbol, BTreeSet<Symbol>> = BTreeMap::new();
    for &p in scc_set {
        edges.entry(p).or_default();
    }
    for rule in rules {
        let hstage = head_stage(rule, pos).expect("already verified");
        for lit in &rule.body {
            let atom = match lit {
                Literal::Pos(a) | Literal::Neg(a) => a,
                _ => continue,
            };
            if !scc_set.contains(&atom.pred) {
                continue;
            }
            let bstage = stage_expr(&atom.args[pos[&atom.pred]]).expect("verified");
            if relate(hstage, bstage, rule, pos) == Some(StageRel::Same) {
                edges.entry(rule.head.pred).or_default().insert(atom.pred);
            }
        }
    }
    // Kahn's algorithm; order = dependencies (bodies) first.
    let mut indeg: BTreeMap<Symbol, usize> = edges.keys().map(|&p| (p, 0)).collect();
    for deps in edges.values() {
        for &d in deps {
            *indeg.entry(d).or_insert(0) += 1;
        }
    }
    // Nodes with indegree 0 are "depended on by nobody at the same stage";
    // we emit dependencies first, so process reversed edges.
    let mut order: Vec<Symbol> = Vec::new();
    let mut ready: Vec<Symbol> = indeg
        .iter()
        .filter(|(p, _)| edges[*p].is_empty())
        .map(|(&p, _)| p)
        .collect();
    let mut remaining: BTreeMap<Symbol, usize> =
        edges.iter().map(|(&p, deps)| (p, deps.len())).collect();
    // reverse adjacency: dep -> heads that depend on it
    let mut rev: BTreeMap<Symbol, Vec<Symbol>> = BTreeMap::new();
    for (&h, deps) in &edges {
        for &d in deps {
            rev.entry(d).or_default().push(h);
        }
    }
    while let Some(p) = ready.pop() {
        order.push(p);
        for &h in rev.get(&p).into_iter().flatten() {
            let c = remaining.get_mut(&h).expect("known node");
            *c -= 1;
            if *c == 0 {
                ready.push(h);
            }
        }
    }
    if order.len() != edges.len() {
        return Err("stage-local dependency graph has a cycle".into());
    }
    Ok(order)
}

/// Convenience: run the XY check over every SCC of `prog` that has internal
/// negative edges; returns the certified infos, or the first failure.
pub fn check_program(prog: &Program) -> Result<Vec<XyInfo>, XyError> {
    let g = DepGraph::build(prog);
    let mut out = Vec::new();
    for scc in g.sccs() {
        if !g.internal_negative_edges(&scc).is_empty() {
            out.push(check_scc(prog, &scc)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_term};

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const LOGICH: &str = r#"
        h(a, a, 0).
        h(a, X, 1) :- g(a, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;

    #[test]
    fn stage_expr_shapes() {
        assert_eq!(
            stage_expr(&parse_term("5").unwrap()),
            Some(StageExpr::Const(5))
        );
        assert_eq!(
            stage_expr(&parse_term("D").unwrap()),
            Some(StageExpr::Linear(sym("D"), 0))
        );
        assert_eq!(
            stage_expr(&parse_term("D + 1").unwrap()),
            Some(StageExpr::Linear(sym("D"), 1))
        );
        assert_eq!(
            stage_expr(&parse_term("D - 2").unwrap()),
            Some(StageExpr::Linear(sym("D"), -2))
        );
        assert_eq!(stage_expr(&parse_term("D * 2").unwrap()), None);
        assert_eq!(stage_expr(&parse_term("f(D)").unwrap()), None);
    }

    #[test]
    fn logich_is_xy_stratified() {
        let p = parse_program(LOGICH).unwrap();
        let infos = check_program(&p).unwrap();
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(info.stage_pos[&sym("h")], 2);
        assert_eq!(info.stage_pos[&sym("hp")], 1);
        // Within a stage, hp must be evaluated before h (h negates hp).
        let ih = info
            .stage_order
            .iter()
            .position(|&p| p == sym("h"))
            .unwrap();
        let ihp = info
            .stage_order
            .iter()
            .position(|&p| p == sym("hp"))
            .unwrap();
        assert!(ihp < ih);
    }

    #[test]
    fn logich_with_hints() {
        let src = format!(".stage h 2.\n.stage hp 1.\n{LOGICH}");
        let p = parse_program(&src).unwrap();
        assert!(check_program(&p).is_ok());
    }

    #[test]
    fn wrong_hint_fails() {
        let src = format!(".stage h 0.\n.stage hp 0.\n{LOGICH}");
        let p = parse_program(&src).unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn win_move_is_not_xy() {
        // The classic non-stratifiable win/move program has no stage
        // argument: must be rejected.
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn same_stage_negative_cycle_rejected() {
        // p and q negate each other at the same stage: stage-local cycle.
        let p = parse_program(
            r#"
            p(X, S + 1) :- base(X, S), not q(X, S + 1).
            q(X, S + 1) :- base(X, S), not p(X, S + 1).
            p(X, S) :- q(X, S), base(X, S).
            "#,
        )
        .unwrap();
        let err = check_program(&p).unwrap_err();
        assert!(matches!(err, XyError::NoStageAssignment { .. }));
    }

    #[test]
    fn pure_y_recursion_passes() {
        // Counting-up recursion with negation against the previous stage.
        let p = parse_program(
            r#"
            s(X, 0) :- init(X).
            s(X, T + 1) :- s(X, T), not stop(X, T).
            stop(X, T) :- s(X, T), limit(X, T).
            "#,
        )
        .unwrap();
        // stop is not in the same SCC as s?  stop depends on s, s negates
        // stop: they form one SCC with a negative edge.
        let infos = check_program(&p).unwrap();
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(info.stage_pos[&sym("s")], 1);
        assert_eq!(info.stage_pos[&sym("stop")], 1);
    }

    #[test]
    fn positive_only_sccs_not_checked() {
        let p = parse_program(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        )
        .unwrap();
        assert!(check_program(&p).unwrap().is_empty());
    }

    #[test]
    fn trajectory_program_is_xy_by_length() {
        // Example 2 shape: traj staged by path length.
        let p = parse_program(
            r#"
            traj(R, 1) :- report(R), not notstart(R).
            traj(cons(X, R), L + 1) :- traj(R, L), report(X), not used(X, L + 1).
            used(X, L + 1) :- traj(R, L), report(X), pick(R, X).
            "#,
        )
        .unwrap();
        assert!(check_program(&p).is_ok());
    }

    #[test]
    fn zero_arity_in_scc_errors() {
        let p = parse_program(
            r#"
            flag :- base(X), not other.
            other :- base(X), not flag.
            "#,
        )
        .unwrap();
        let err = check_program(&p).unwrap_err();
        assert!(matches!(err, XyError::NoStageAssignment { .. }));
    }
}
