//! Oracle checking: compare a distributed run's results against the
//! centralized batch engine on the same net fact set (the correctness claim
//! of Theorems 1–3 at quiescence).

use crate::deploy::{Deployment, WorkloadEvent};
use sensorlog_eval::relation::Database;
use sensorlog_eval::{Engine, UpdateKind};
use sensorlog_logic::{Symbol, Tuple};
use std::collections::BTreeSet;

/// Completeness/soundness report for one output predicate.
#[derive(Clone, Debug)]
pub struct OracleReport {
    pub pred: Symbol,
    pub expected: usize,
    pub found: usize,
    pub missing: Vec<Tuple>,
    pub spurious: Vec<Tuple>,
}

impl OracleReport {
    pub fn exact(&self) -> bool {
        self.missing.is_empty() && self.spurious.is_empty()
    }

    /// |found ∩ expected| / |expected| — the Fig. 9 completeness metric.
    pub fn completeness(&self) -> f64 {
        if self.expected == 0 {
            return 1.0;
        }
        (self.expected - self.missing.len()) as f64 / self.expected as f64
    }

    /// |found ∩ expected| / |found| — soundness (1.0 = no spurious tuples).
    pub fn soundness(&self) -> f64 {
        if self.found == 0 {
            return 1.0;
        }
        (self.found - self.spurious.len()) as f64 / self.found as f64
    }
}

/// The net EDB after applying `events` in order (inserts minus deletes),
/// ignoring windows — valid when the run horizon is shorter than every
/// window.
pub fn net_edb(events: &[WorkloadEvent]) -> Database {
    let mut db = Database::new();
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|e| e.at);
    for ev in sorted {
        match ev.kind {
            UpdateKind::Insert => {
                db.insert(ev.pred, ev.tuple);
            }
            UpdateKind::Delete => {
                db.remove(ev.pred, &ev.tuple);
            }
        }
    }
    db
}

/// Expected quiescent result of `pred` for the deployment's program over
/// the net EDB (static facts from empty-body rules already live in the
/// program itself).
pub fn expected_results(d: &Deployment, events: &[WorkloadEvent], pred: Symbol) -> BTreeSet<Tuple> {
    let engine = Engine::new(d.prog.analysis.clone(), d.prog.reg.clone());
    let edb = net_edb(events);
    let out = engine.run(&edb).expect("oracle evaluation");
    out.sorted(pred).into_iter().collect()
}

/// Compare the deployment's gathered results against the oracle.
pub fn check(d: &Deployment, events: &[WorkloadEvent], pred: Symbol) -> OracleReport {
    let expected = expected_results(d, events, pred);
    let found = d.results(pred);
    let missing: Vec<Tuple> = expected.difference(&found).cloned().collect();
    let spurious: Vec<Tuple> = found.difference(&expected).cloned().collect();
    OracleReport {
        pred,
        expected: expected.len(),
        found: found.len(),
        missing,
        spurious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;
    use sensorlog_netsim::NodeId;

    fn ev(at: u64, pred: &str, v: i64, kind: UpdateKind) -> WorkloadEvent {
        WorkloadEvent {
            at,
            node: NodeId(0),
            pred: Symbol::intern(pred),
            tuple: Tuple::new(vec![Term::Int(v)]),
            kind,
        }
    }

    #[test]
    fn net_edb_applies_in_order() {
        let events = vec![
            ev(1, "a", 1, UpdateKind::Insert),
            ev(2, "a", 2, UpdateKind::Insert),
            ev(3, "a", 1, UpdateKind::Delete),
        ];
        let db = net_edb(&events);
        assert_eq!(db.len_of(Symbol::intern("a")), 1);
        assert!(db.contains(Symbol::intern("a"), &Tuple::new(vec![Term::Int(2)])));
    }

    #[test]
    fn report_metrics() {
        let r = OracleReport {
            pred: Symbol::intern("q"),
            expected: 4,
            found: 4,
            missing: vec![Tuple::new(vec![Term::Int(9)])],
            spurious: vec![Tuple::new(vec![Term::Int(7)])],
        };
        assert!(!r.exact());
        assert!((r.completeness() - 0.75).abs() < 1e-9);
        assert!((r.soundness() - 0.75).abs() < 1e-9);
        let empty = OracleReport {
            pred: Symbol::intern("q"),
            expected: 0,
            found: 0,
            missing: vec![],
            spurious: vec![],
        };
        assert!(empty.exact());
        assert_eq!(empty.completeness(), 1.0);
    }
}
