//! In-network aggregate queries (Sec. IV-C): "We can use specialized
//! distributed techniques such as TAG \[32\] … for evaluation of incremental
//! aggregates."
//!
//! The GPA runtime deliberately rejects head aggregates
//! ([`crate::plan::CompileError::AggregatesUnsupported`]); this module is
//! the prescribed route: a *global aggregate query* — one rule whose head
//! aggregates a single base stream — compiles onto the TAG gathering-tree
//! substrate, with the centralized engine as the semantics oracle.
//!
//! Semantics note: TAG folds the reading *multiset*, while the declarative
//! head aggregate folds *distinct* values (all-solutions set semantics).
//! The two coincide whenever readings are distinct — which node-keyed
//! streams guarantee by construction.

use sensorlog_eval::{Database, Engine, EvalError};
use sensorlog_logic::analyze;
use sensorlog_logic::ast::{AggFunc, Literal, Program};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{NodeId, SimConfig, Topology};
use sensorlog_netstack::tag::{run_epoch, TagOp};
use sensorlog_netstack::tree::GatherTree;
use std::fmt;

/// A recognized global aggregate query.
#[derive(Clone, Debug, PartialEq)]
pub struct AggQuery {
    pub head: Symbol,
    pub op: TagOp,
    /// The base stream the aggregate ranges over.
    pub source: Symbol,
    /// Which argument of the source holds the aggregated value.
    pub value_col: usize,
    /// Source arity.
    pub arity: usize,
}

/// Why a program is not a TAG-compilable aggregate query.
#[derive(Clone, Debug, PartialEq)]
pub enum AggCompileError {
    NotSingleRule,
    NoAggregate,
    GroupByUnsupported,
    BodyNotSingleStream,
    ValueNotAPlainVariable,
}

impl fmt::Display for AggCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AggCompileError::NotSingleRule => "expected exactly one rule",
            AggCompileError::NoAggregate => "the rule head carries no aggregate",
            AggCompileError::GroupByUnsupported => {
                "grouped aggregates are not TAG-compilable (group keys need GPA hashing)"
            }
            AggCompileError::BodyNotSingleStream => {
                "the body must be a single positive base-stream subgoal"
            }
            AggCompileError::ValueNotAPlainVariable => {
                "the aggregated term must be a variable of the source stream"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for AggCompileError {}

fn tag_op(f: AggFunc) -> TagOp {
    match f {
        AggFunc::Count => TagOp::Count,
        AggFunc::Sum => TagOp::Sum,
        AggFunc::Min => TagOp::Min,
        AggFunc::Max => TagOp::Max,
        AggFunc::Avg => TagOp::Avg,
    }
}

/// Recognize `q(op<V>) :- s(…, V, …).` — the global-aggregate shape.
pub fn compile_aggregate(prog: &Program) -> Result<AggQuery, AggCompileError> {
    if prog.rules.len() != 1 {
        return Err(AggCompileError::NotSingleRule);
    }
    let rule = &prog.rules[0];
    let agg = rule.agg.as_ref().ok_or(AggCompileError::NoAggregate)?;
    if !rule.head.args.is_empty() {
        return Err(AggCompileError::GroupByUnsupported);
    }
    let atoms: Vec<_> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    if atoms.len() != 1 || rule.body.len() != 1 {
        return Err(AggCompileError::BodyNotSingleStream);
    }
    let atom = atoms[0];
    let Term::Var(v) = &agg.term else {
        return Err(AggCompileError::ValueNotAPlainVariable);
    };
    let value_col = atom
        .args
        .iter()
        .position(|a| matches!(a, Term::Var(u) if u == v))
        .ok_or(AggCompileError::ValueNotAPlainVariable)?;
    Ok(AggQuery {
        head: rule.head.pred,
        op: tag_op(agg.func),
        source: atom.pred,
        value_col,
        arity: atom.args.len(),
    })
}

/// Result of one aggregate epoch.
#[derive(Clone, Copy, Debug)]
pub struct AggRun {
    pub value: f64,
    pub messages: u64,
}

/// Run the query over per-node readings via TAG (one reading per node).
pub fn run_tag(
    query: &AggQuery,
    topo: &Topology,
    root: NodeId,
    readings: &[f64],
    config: SimConfig,
) -> AggRun {
    let tree = GatherTree::bfs(topo, root);
    let (partial, messages) = run_epoch(topo, &tree, readings, config);
    AggRun {
        value: partial.finish(query.op),
        messages,
    }
}

/// The baseline: every reading travels to the root, which aggregates
/// centrally. Message count = Σ hop-distance(node, root).
pub fn run_central_collection(
    query: &AggQuery,
    topo: &Topology,
    root: NodeId,
    readings: &[f64],
) -> AggRun {
    let tree = GatherTree::bfs(topo, root);
    let messages: u64 = topo.nodes().map(|n| tree.depth[n.index()] as u64).sum();
    // Semantically identical; compute via the same fold.
    let mut acc = sensorlog_netstack::tag::Partial::of(readings[0]);
    for &r in &readings[1..] {
        acc = acc.merge(sensorlog_netstack::tag::Partial::of(r));
    }
    AggRun {
        value: acc.finish(query.op),
        messages,
    }
}

/// Oracle: evaluate the same program with the centralized deductive engine
/// over the readings as facts.
pub fn oracle_value(src: &str, query: &AggQuery, readings: &[f64]) -> Result<f64, EvalError> {
    let prog =
        sensorlog_logic::parse_program(src).map_err(|e| EvalError::Internal(e.to_string()))?;
    let reg = BuiltinRegistry::standard();
    let analysis = analyze(&prog, &reg)?;
    let engine = Engine::new(analysis, reg);
    let mut edb = Database::new();
    for (i, &r) in readings.iter().enumerate() {
        // Fill non-value columns with the node index.
        let args: Vec<Term> = (0..query.arity)
            .map(|c| {
                if c == query.value_col {
                    Term::float(r)
                } else {
                    Term::Int(i as i64)
                }
            })
            .collect();
        edb.insert(query.source, Tuple::new(args));
    }
    let out = engine.run(&edb)?;
    let rows = out.sorted(query.head);
    rows.first()
        .and_then(|t| t.get(0).as_f64())
        .ok_or_else(|| EvalError::Internal("aggregate produced no row".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parse_program;

    const AVG: &str = ".output mean.\nmean(avg<V>) :- reading(N, V).\n";

    #[test]
    fn recognizes_global_aggregates() {
        let q = compile_aggregate(&parse_program(AVG).unwrap()).unwrap();
        assert_eq!(q.op, TagOp::Avg);
        assert_eq!(q.source, Symbol::intern("reading"));
        assert_eq!(q.value_col, 1);
        assert_eq!(q.arity, 2);
    }

    #[test]
    fn rejects_non_aggregate_shapes() {
        let err = |src: &str| compile_aggregate(&parse_program(src).unwrap()).unwrap_err();
        assert_eq!(err("q(X) :- p(X)."), AggCompileError::NoAggregate);
        assert_eq!(
            err("q(G, min<V>) :- p(G, V)."),
            AggCompileError::GroupByUnsupported
        );
        assert_eq!(
            err("q(min<V>) :- p(V), r(V)."),
            AggCompileError::BodyNotSingleStream
        );
        assert_eq!(
            err("q(min<V>) :- p(V + 1)."),
            AggCompileError::ValueNotAPlainVariable
        );
    }

    #[test]
    fn tag_matches_oracle_and_central() {
        let q = compile_aggregate(&parse_program(AVG).unwrap()).unwrap();
        let topo = Topology::square_grid(5);
        // Distinct readings: the set/bag semantic gap (module doc) vanishes.
        let readings: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let root = NodeId(0);
        let tag = run_tag(&q, &topo, root, &readings, SimConfig::default());
        let central = run_central_collection(&q, &topo, root, &readings);
        let oracle = oracle_value(AVG, &q, &readings).unwrap();
        assert!((tag.value - oracle).abs() < 1e-9);
        assert!((central.value - oracle).abs() < 1e-9);
        // TAG sends exactly n−1 partials; central pays the hop sum.
        assert_eq!(tag.messages, 24);
        assert!(central.messages > tag.messages);
    }

    #[test]
    fn all_five_ops() {
        let readings: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0];
        let topo = Topology::square_grid(3);
        for (src, expect) in [
            ("q(min<V>) :- r(N, V).", 1.0),
            ("q(max<V>) :- r(N, V).", 9.0),
            ("q(sum<V>) :- r(N, V).", 36.0),
            ("q(count<V>) :- r(N, V).", 9.0),
            ("q(avg<V>) :- r(N, V).", 4.0),
        ] {
            let q = compile_aggregate(&parse_program(src).unwrap()).unwrap();
            let run = run_tag(&q, &topo, NodeId(0), &readings, SimConfig::default());
            assert!(
                (run.value - expect).abs() < 1e-9,
                "{src}: got {} want {expect}",
                run.value
            );
        }
    }
}
