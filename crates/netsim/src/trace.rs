//! Deterministic event tracing: journal, replay check, run summaries.
//!
//! Every simulator event — send attempt, delivery, drop, timer, node
//! failure — can be journaled as a structured [`TraceRecord`] carrying the
//! simulated time and a monotonic trace sequence number. The journal of a
//! seeded run is a complete, canonical transcript: re-running the same
//! configuration must reproduce it byte-for-byte (see
//! [`Journal::to_text`]), which turns "the run is deterministic" from a
//! hope into an assertable property and makes divergence *localizable* —
//! [`ReplayChecker`] pinpoints the first record where a re-run departs
//! from a recorded journal.
//!
//! Tracing is off by default and costs nothing when disabled: the
//! simulator holds an `Option<Box<dyn TraceSink>>` and every emission
//! site is `if let Some(sink) = …` around a closure that *constructs* the
//! record, so a disabled run pays one predictable branch per event and
//! never allocates or formats anything. Benches run with tracing off.

use crate::sim::SimTime;
use crate::topology::NodeId;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Why a message did not reach its destination.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Lost on the air (Bernoulli link loss) with no retry budget.
    Loss,
    /// Destination node had crashed before delivery.
    DeadNode,
    /// Every ARQ retry was lost (only reported when `retries > 0`).
    Retries,
    /// The link was administratively down (network partition).
    Partition,
}

impl DropReason {
    /// Dense index for per-reason counter arrays.
    pub const COUNT: usize = 4;

    pub fn index(self) -> usize {
        match self {
            DropReason::Loss => 0,
            DropReason::DeadNode => 1,
            DropReason::Retries => 2,
            DropReason::Partition => 3,
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::Loss => "loss",
            DropReason::DeadNode => "dead",
            DropReason::Retries => "retries",
            DropReason::Partition => "partition",
        })
    }
}

/// One structured simulator event.
///
/// Message payloads are represented by their [`MsgMeta`](crate::MsgMeta)
/// kind and size, not their contents: the trace layer must not require
/// `Msg: Debug` and the (kind, bytes, endpoints, time) tuple is already
/// enough to detect any ordering or scheduling divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node's `on_start` callback ran.
    Start { node: NodeId },
    /// One transmission attempt (each ARQ retry is its own record).
    Send {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
        attempt: u32,
    },
    /// A message reached its destination's `on_message`.
    Deliver {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
    },
    /// A transmission attempt or scheduled delivery was dropped.
    Drop {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        reason: DropReason,
    },
    /// A timer fired at `node`.
    Timer { node: NodeId, tag: u64 },
    /// A node was crashed via `fail_node` or a fault schedule.
    NodeFail { node: NodeId },
    /// A crashed node was restarted with fresh application state.
    NodeRestart { node: NodeId },
    /// The bidirectional link `a<->b` went down (partition).
    LinkDown { a: NodeId, b: NodeId },
    /// The bidirectional link `a<->b` came back up.
    LinkUp { a: NodeId, b: NodeId },
    /// Per-link loss probability override, in parts-per-million
    /// (`ppm == u32::MAX` clears the override). Integer so the journal
    /// stays `Eq`/hashable.
    LinkLoss { a: NodeId, b: NodeId, ppm: u32 },
    /// Message-duplication window: until `until`, each delivery is
    /// duplicated with probability `ppm / 1e6`.
    DupWindow { until: SimTime, ppm: u32 },
    /// Reordering window: until `until`, each delivery gets extra uniform
    /// jitter in `[0, jitter)` on top of the hop delay.
    ReorderWindow { until: SimTime, jitter: SimTime },
}

/// A journaled event: monotonic trace sequence number + simulated time +
/// the event itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub seq: u64,
    pub at: SimTime,
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    /// Canonical single-line rendering; [`Journal::to_text`] is the
    /// concatenation of these, so two runs are byte-identical iff their
    /// rendered journals are equal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08} {:>8} ", self.seq, self.at)?;
        match &self.event {
            TraceEvent::Start { node } => write!(f, "start {node}"),
            TraceEvent::Send {
                from,
                to,
                kind,
                bytes,
                attempt,
            } => write!(f, "send {from}->{to} {kind} {bytes}B try{attempt}"),
            TraceEvent::Deliver {
                from,
                to,
                kind,
                bytes,
            } => write!(f, "deliver {from}->{to} {kind} {bytes}B"),
            TraceEvent::Drop {
                from,
                to,
                kind,
                reason,
            } => write!(f, "drop {from}->{to} {kind} {reason}"),
            TraceEvent::Timer { node, tag } => write!(f, "timer {node} tag={tag}"),
            TraceEvent::NodeFail { node } => write!(f, "fail {node}"),
            TraceEvent::NodeRestart { node } => write!(f, "restart {node}"),
            TraceEvent::LinkDown { a, b } => write!(f, "link-down {a}<->{b}"),
            TraceEvent::LinkUp { a, b } => write!(f, "link-up {a}<->{b}"),
            TraceEvent::LinkLoss { a, b, ppm } => write!(f, "link-loss {a}<->{b} {ppm}ppm"),
            TraceEvent::DupWindow { until, ppm } => write!(f, "dup-window until={until} {ppm}ppm"),
            TraceEvent::ReorderWindow { until, jitter } => {
                write!(f, "reorder-window until={until} jitter={jitter}")
            }
        }
    }
}

/// Receiver of trace records. Implementations must not assume anything
/// about call frequency; the simulator calls `record` once per event in
/// event order.
pub trait TraceSink {
    fn record(&mut self, rec: TraceRecord);
}

/// Discards everything. Attaching this is equivalent to (but costlier
/// than) not attaching a sink at all; it exists for tests and for APIs
/// that want a sink unconditionally.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A recorded run: the seed it was produced under plus every record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    /// Simulator RNG seed of the recorded run.
    pub seed: u64,
    pub records: Vec<TraceRecord>,
}

impl Journal {
    /// Canonical textual rendering. Byte-identical across runs iff the
    /// runs produced identical event sequences.
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut s = String::with_capacity(self.records.len() * 48 + 16);
        let _ = writeln!(s, "seed={}", self.seed);
        for r in &self.records {
            let _ = writeln!(s, "{r}");
        }
        s
    }

    /// FNV-1a hash of [`Journal::to_text`] — a compact fingerprint for
    /// logging alongside experiment rows.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_text().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Aggregate counters for experiment tables.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in &self.records {
            s.absorb(r);
        }
        s
    }

    /// First index at which `self` and `other` disagree (record-wise),
    /// or `None` when one is a prefix of the other of equal length.
    pub fn first_divergence(&self, other: &Journal) -> Option<usize> {
        let n = self.records.len().min(other.records.len());
        (0..n)
            .find(|&i| self.records[i] != other.records[i])
            .or_else(|| (self.records.len() != other.records.len()).then_some(n))
    }

    /// Serialize to JSONL: a header object, then one object per record.
    /// The format is stable and hand-parsed by [`Journal::from_jsonl`], so
    /// a journal written by one process replays byte-identically in a
    /// later one.
    pub fn to_jsonl(&self) -> String {
        use fmt::Write;
        let mut s = String::with_capacity(self.records.len() * 72 + 64);
        let _ = writeln!(
            s,
            r#"{{"type":"journal","seed":{},"records":{}}}"#,
            self.seed,
            self.records.len()
        );
        for r in &self.records {
            let _ = write!(s, r#"{{"type":"rec","seq":{},"at":{},"#, r.seq, r.at);
            match &r.event {
                TraceEvent::Start { node } => {
                    let _ = write!(s, r#""ev":"start","node":{}"#, node.0);
                }
                TraceEvent::Send {
                    from,
                    to,
                    kind,
                    bytes,
                    attempt,
                } => {
                    let _ = write!(
                        s,
                        r#""ev":"send","from":{},"to":{},"kind":{},"bytes":{},"attempt":{}"#,
                        from.0,
                        to.0,
                        json_escape(kind),
                        bytes,
                        attempt
                    );
                }
                TraceEvent::Deliver {
                    from,
                    to,
                    kind,
                    bytes,
                } => {
                    let _ = write!(
                        s,
                        r#""ev":"deliver","from":{},"to":{},"kind":{},"bytes":{}"#,
                        from.0,
                        to.0,
                        json_escape(kind),
                        bytes
                    );
                }
                TraceEvent::Drop {
                    from,
                    to,
                    kind,
                    reason,
                } => {
                    let _ = write!(
                        s,
                        r#""ev":"drop","from":{},"to":{},"kind":{},"reason":"{reason}""#,
                        from.0,
                        to.0,
                        json_escape(kind)
                    );
                }
                TraceEvent::Timer { node, tag } => {
                    let _ = write!(s, r#""ev":"timer","node":{},"tag":{}"#, node.0, tag);
                }
                TraceEvent::NodeFail { node } => {
                    let _ = write!(s, r#""ev":"fail","node":{}"#, node.0);
                }
                TraceEvent::NodeRestart { node } => {
                    let _ = write!(s, r#""ev":"restart","node":{}"#, node.0);
                }
                TraceEvent::LinkDown { a, b } => {
                    let _ = write!(s, r#""ev":"linkdown","a":{},"b":{}"#, a.0, b.0);
                }
                TraceEvent::LinkUp { a, b } => {
                    let _ = write!(s, r#""ev":"linkup","a":{},"b":{}"#, a.0, b.0);
                }
                TraceEvent::LinkLoss { a, b, ppm } => {
                    let _ = write!(
                        s,
                        r#""ev":"linkloss","a":{},"b":{},"ppm":{}"#,
                        a.0, b.0, ppm
                    );
                }
                TraceEvent::DupWindow { until, ppm } => {
                    let _ = write!(s, r#""ev":"dupwin","until":{until},"ppm":{ppm}"#);
                }
                TraceEvent::ReorderWindow { until, jitter } => {
                    let _ = write!(s, r#""ev":"reorderwin","until":{until},"jitter":{jitter}"#);
                }
            }
            let _ = writeln!(s, "}}");
        }
        s
    }

    /// Parse a journal previously produced by [`Journal::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Journal, JournalParseError> {
        let err = |line: usize, msg: &str| JournalParseError {
            line: line + 1,
            msg: msg.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (hline, header) = lines.next().ok_or_else(|| err(0, "empty journal file"))?;
        if field_str(header, "type").as_deref() != Some("journal") {
            return Err(err(hline, "first line is not a journal header"));
        }
        let seed = field_u64(header, "seed").ok_or_else(|| err(hline, "header missing seed"))?;
        let declared = field_u64(header, "records")
            .ok_or_else(|| err(hline, "header missing record count"))?;
        let mut records = Vec::with_capacity(declared as usize);
        for (lineno, line) in lines {
            if field_str(line, "type").as_deref() != Some("rec") {
                return Err(err(lineno, "expected a rec object"));
            }
            let seq = field_u64(line, "seq").ok_or_else(|| err(lineno, "missing seq"))?;
            let at = field_u64(line, "at").ok_or_else(|| err(lineno, "missing at"))?;
            let ev = field_str(line, "ev").ok_or_else(|| err(lineno, "missing ev"))?;
            let node_of = |key: &str| -> Result<NodeId, JournalParseError> {
                field_u64(line, key)
                    .map(|n| NodeId(n as u32))
                    .ok_or_else(|| err(lineno, &format!("missing {key}")))
            };
            let kind_of = || -> Result<&'static str, JournalParseError> {
                field_str(line, "kind")
                    .map(|k| intern_kind(&k))
                    .ok_or_else(|| err(lineno, "missing kind"))
            };
            let event = match ev.as_str() {
                "start" => TraceEvent::Start {
                    node: node_of("node")?,
                },
                "send" => TraceEvent::Send {
                    from: node_of("from")?,
                    to: node_of("to")?,
                    kind: kind_of()?,
                    bytes: field_u64(line, "bytes").ok_or_else(|| err(lineno, "missing bytes"))?
                        as usize,
                    attempt: field_u64(line, "attempt")
                        .ok_or_else(|| err(lineno, "missing attempt"))?
                        as u32,
                },
                "deliver" => TraceEvent::Deliver {
                    from: node_of("from")?,
                    to: node_of("to")?,
                    kind: kind_of()?,
                    bytes: field_u64(line, "bytes").ok_or_else(|| err(lineno, "missing bytes"))?
                        as usize,
                },
                "drop" => TraceEvent::Drop {
                    from: node_of("from")?,
                    to: node_of("to")?,
                    kind: kind_of()?,
                    reason: match field_str(line, "reason").as_deref() {
                        Some("loss") => DropReason::Loss,
                        Some("dead") => DropReason::DeadNode,
                        Some("retries") => DropReason::Retries,
                        Some("partition") => DropReason::Partition,
                        _ => return Err(err(lineno, "bad drop reason")),
                    },
                },
                "timer" => TraceEvent::Timer {
                    node: node_of("node")?,
                    tag: field_u64(line, "tag").ok_or_else(|| err(lineno, "missing tag"))?,
                },
                "fail" => TraceEvent::NodeFail {
                    node: node_of("node")?,
                },
                "restart" => TraceEvent::NodeRestart {
                    node: node_of("node")?,
                },
                "linkdown" => TraceEvent::LinkDown {
                    a: node_of("a")?,
                    b: node_of("b")?,
                },
                "linkup" => TraceEvent::LinkUp {
                    a: node_of("a")?,
                    b: node_of("b")?,
                },
                "linkloss" => TraceEvent::LinkLoss {
                    a: node_of("a")?,
                    b: node_of("b")?,
                    ppm: field_u64(line, "ppm").ok_or_else(|| err(lineno, "missing ppm"))? as u32,
                },
                "dupwin" => TraceEvent::DupWindow {
                    until: field_u64(line, "until").ok_or_else(|| err(lineno, "missing until"))?,
                    ppm: field_u64(line, "ppm").ok_or_else(|| err(lineno, "missing ppm"))? as u32,
                },
                "reorderwin" => TraceEvent::ReorderWindow {
                    until: field_u64(line, "until").ok_or_else(|| err(lineno, "missing until"))?,
                    jitter: field_u64(line, "jitter")
                        .ok_or_else(|| err(lineno, "missing jitter"))?,
                },
                other => return Err(err(lineno, &format!("unknown event {other:?}"))),
            };
            records.push(TraceRecord { seq, at, event });
        }
        if records.len() as u64 != declared {
            return Err(JournalParseError {
                line: 1,
                msg: format!(
                    "header declared {declared} records, file contains {}",
                    records.len()
                ),
            });
        }
        Ok(Journal { seed, records })
    }

    /// Write the JSONL form to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Load a journal from a JSONL file written by [`Journal::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Journal> {
        let text = std::fs::read_to_string(path)?;
        Journal::from_jsonl(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// A malformed journal file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalParseError {
    /// 1-based line number.
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JournalParseError {}

/// Re-intern a message kind read from disk. Known kinds map to the
/// workspace's static literals; unseen ones are leaked once and reused
/// (bounded by the number of *distinct* kinds, not records).
fn intern_kind(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "store", "probe", "result", "centroid", "msg", "ping", "hb", "live",
    ];
    if let Some(&k) = KNOWN.iter().find(|&&k| k == s) {
        return k;
    }
    use std::sync::Mutex;
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().expect("kind interner poisoned");
    if let Some(&k) = extra.iter().find(|&&k| k == s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Raw value slice for `"key":` in a single-line JSON object.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let mut escaped = false;
        for (i, ch) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                return Some(&inner[..i]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    if !raw.contains('\\') {
        return Some(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            Some(c) => out.push(c),
            None => return None,
        }
    }
    Some(out)
}

/// Per-run aggregate of a [`Journal`] — the numbers experiment tables
/// want (message counts by kind, drops, timer volume).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub sends: u64,
    pub delivers: u64,
    pub drops_loss: u64,
    pub drops_dead: u64,
    pub drops_retries: u64,
    pub drops_partition: u64,
    pub timers: u64,
    pub node_failures: u64,
    pub node_restarts: u64,
    /// Link-level fault events (down/up/loss-override/dup/reorder).
    pub link_faults: u64,
    pub sends_by_kind: BTreeMap<&'static str, u64>,
}

impl TraceSummary {
    /// Fold one record into the counters.
    pub fn absorb(&mut self, rec: &TraceRecord) {
        match &rec.event {
            TraceEvent::Start { .. } => {}
            TraceEvent::Send { kind, .. } => {
                self.sends += 1;
                *self.sends_by_kind.entry(kind).or_insert(0) += 1;
            }
            TraceEvent::Deliver { .. } => self.delivers += 1,
            TraceEvent::Drop { reason, .. } => match reason {
                DropReason::Loss => self.drops_loss += 1,
                DropReason::DeadNode => self.drops_dead += 1,
                DropReason::Retries => self.drops_retries += 1,
                DropReason::Partition => self.drops_partition += 1,
            },
            TraceEvent::Timer { .. } => self.timers += 1,
            TraceEvent::NodeFail { .. } => self.node_failures += 1,
            TraceEvent::NodeRestart { .. } => self.node_restarts += 1,
            TraceEvent::LinkDown { .. }
            | TraceEvent::LinkUp { .. }
            | TraceEvent::LinkLoss { .. }
            | TraceEvent::DupWindow { .. }
            | TraceEvent::ReorderWindow { .. } => self.link_faults += 1,
        }
    }
}

/// Shared handle to a streaming [`TraceSummary`] — accumulates counters in
/// constant memory, never storing records. The right sink for long
/// experiment runs where only the aggregate matters; use
/// [`SharedJournal`] when the full transcript is needed.
#[derive(Clone, Default)]
pub struct SharedSummary(Rc<RefCell<TraceSummary>>);

impl SharedSummary {
    pub fn new() -> SharedSummary {
        SharedSummary::default()
    }

    /// Snapshot of the counters so far.
    pub fn snapshot(&self) -> TraceSummary {
        self.0.borrow().clone()
    }
}

impl TraceSink for SharedSummary {
    fn record(&mut self, rec: TraceRecord) {
        self.0.borrow_mut().absorb(&rec);
    }
}

/// Shared handle to a [`Journal`] being written. Clone it, hand one clone
/// to the simulator as the sink, keep the other to read the journal after
/// the run (the simulator owns its sink, so a shared cell is the ergonomic
/// way to get the data back out).
#[derive(Clone, Default)]
pub struct SharedJournal(Rc<RefCell<Journal>>);

impl SharedJournal {
    pub fn new(seed: u64) -> SharedJournal {
        SharedJournal(Rc::new(RefCell::new(Journal {
            seed,
            records: Vec::new(),
        })))
    }

    /// Snapshot of the journal so far.
    pub fn snapshot(&self) -> Journal {
        self.0.borrow().clone()
    }

    /// Take the journal out, leaving an empty one behind.
    pub fn take(&self) -> Journal {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

impl TraceSink for SharedJournal {
    fn record(&mut self, rec: TraceRecord) {
        self.0.borrow_mut().records.push(rec);
    }
}

/// Verifies a re-run against a recorded journal record-by-record. The
/// first mismatch is retained (expected vs actual) rather than panicking,
/// so callers can report it with context; `result()` at the end also
/// catches truncated re-runs.
pub struct ReplayChecker {
    expected: Journal,
    next: usize,
    divergence: Option<ReplayDivergence>,
}

/// The first point where a replay departed from the recorded journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    pub index: usize,
    /// `None` when the replay produced more records than were recorded.
    pub expected: Option<TraceRecord>,
    /// `None` when the replay ended before the recorded journal did.
    pub actual: Option<TraceRecord>,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "replay diverged at record {}:", self.index)?;
        match &self.expected {
            Some(r) => writeln!(f, "  expected: {r}")?,
            None => writeln!(f, "  expected: <end of journal>")?,
        }
        match &self.actual {
            Some(r) => write!(f, "  actual:   {r}"),
            None => write!(f, "  actual:   <replay ended>"),
        }
    }
}

impl ReplayChecker {
    pub fn new(expected: Journal) -> ReplayChecker {
        ReplayChecker {
            expected,
            next: 0,
            divergence: None,
        }
    }

    /// `Ok(())` when every record matched and the replay covered the whole
    /// journal; otherwise the first divergence.
    pub fn result(&self) -> Result<(), ReplayDivergence> {
        if let Some(d) = &self.divergence {
            return Err(d.clone());
        }
        if self.next < self.expected.records.len() {
            return Err(ReplayDivergence {
                index: self.next,
                expected: Some(self.expected.records[self.next].clone()),
                actual: None,
            });
        }
        Ok(())
    }
}

impl TraceSink for ReplayChecker {
    fn record(&mut self, rec: TraceRecord) {
        if self.divergence.is_some() {
            return; // only the first divergence is interesting
        }
        match self.expected.records.get(self.next) {
            Some(exp) if *exp == rec => self.next += 1,
            Some(exp) => {
                self.divergence = Some(ReplayDivergence {
                    index: self.next,
                    expected: Some(exp.clone()),
                    actual: Some(rec),
                });
            }
            None => {
                self.divergence = Some(ReplayDivergence {
                    index: self.next,
                    expected: None,
                    actual: Some(rec),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, at: SimTime, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    fn sample_journal() -> Journal {
        Journal {
            seed: 7,
            records: vec![
                rec(0, 0, TraceEvent::Start { node: NodeId(0) }),
                rec(
                    1,
                    0,
                    TraceEvent::Send {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "ping",
                        bytes: 8,
                        attempt: 0,
                    },
                ),
                rec(
                    2,
                    12,
                    TraceEvent::Deliver {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "ping",
                        bytes: 8,
                    },
                ),
                rec(
                    3,
                    20,
                    TraceEvent::Timer {
                        node: NodeId(1),
                        tag: 4,
                    },
                ),
                rec(
                    4,
                    21,
                    TraceEvent::Drop {
                        from: NodeId(1),
                        to: NodeId(0),
                        kind: "ping",
                        reason: DropReason::Loss,
                    },
                ),
                rec(5, 30, TraceEvent::NodeFail { node: NodeId(1) }),
            ],
        }
    }

    #[test]
    fn text_rendering_is_stable() {
        let j = sample_journal();
        let text = j.to_text();
        assert!(text.starts_with("seed=7\n"));
        assert!(text.contains("send n0->n1 ping 8B try0"));
        assert!(text.contains("drop n1->n0 ping loss"));
        assert_eq!(text, j.to_text(), "rendering must be a pure function");
        assert_eq!(j.content_hash(), j.content_hash());
    }

    #[test]
    fn summary_counts_by_kind() {
        let s = sample_journal().summary();
        assert_eq!(s.sends, 1);
        assert_eq!(s.delivers, 1);
        assert_eq!(s.drops_loss, 1);
        assert_eq!(s.drops_dead, 0);
        assert_eq!(s.timers, 1);
        assert_eq!(s.node_failures, 1);
        assert_eq!(s.sends_by_kind["ping"], 1);
    }

    #[test]
    fn replay_checker_accepts_identical_stream() {
        let j = sample_journal();
        let mut c = ReplayChecker::new(j.clone());
        for r in &j.records {
            c.record(r.clone());
        }
        assert!(c.result().is_ok());
    }

    #[test]
    fn replay_checker_flags_mismatch_and_truncation() {
        let j = sample_journal();
        // Mismatch at index 1.
        let mut c = ReplayChecker::new(j.clone());
        c.record(j.records[0].clone());
        c.record(rec(
            1,
            0,
            TraceEvent::Timer {
                node: NodeId(9),
                tag: 0,
            },
        ));
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 1);
        assert!(d.expected.is_some() && d.actual.is_some());
        assert!(format!("{d}").contains("diverged at record 1"));
        // Truncated replay.
        let mut c = ReplayChecker::new(j.clone());
        c.record(j.records[0].clone());
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 1);
        assert!(d.actual.is_none());
        // Overlong replay.
        let mut c = ReplayChecker::new(Journal::default());
        c.record(j.records[0].clone());
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 0);
        assert!(d.expected.is_none());
    }

    #[test]
    fn first_divergence_positions() {
        let a = sample_journal();
        assert_eq!(a.first_divergence(&a), None);
        let mut b = a.clone();
        b.records[2].at += 1;
        assert_eq!(a.first_divergence(&b), Some(2));
        let mut c = a.clone();
        c.records.pop();
        assert_eq!(a.first_divergence(&c), Some(5));
    }

    #[test]
    fn shared_summary_streams_counters() {
        let shared = SharedSummary::new();
        let mut sink = shared.clone();
        for r in sample_journal().records {
            sink.record(r);
        }
        assert_eq!(shared.snapshot(), sample_journal().summary());
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let back = Journal::from_jsonl(&text).unwrap();
        assert_eq!(j, back);
        assert_eq!(j.to_text(), back.to_text());
        assert_eq!(j.content_hash(), back.content_hash());
        // Kinds come back as the canonical static literals.
        if let TraceEvent::Send { kind, .. } = &back.records[1].event {
            assert_eq!(*kind, "ping");
        } else {
            panic!("record 1 should be a send");
        }
    }

    #[test]
    fn jsonl_unknown_kind_is_interned_once() {
        let j = Journal {
            seed: 1,
            records: vec![
                rec(
                    0,
                    0,
                    TraceEvent::Send {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "exotic",
                        bytes: 1,
                        attempt: 0,
                    },
                ),
                rec(
                    1,
                    5,
                    TraceEvent::Deliver {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "exotic",
                        bytes: 1,
                    },
                ),
            ],
        };
        let back = Journal::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(j, back);
        let (k0, k1) = match (&back.records[0].event, &back.records[1].event) {
            (TraceEvent::Send { kind: a, .. }, TraceEvent::Deliver { kind: b, .. }) => (*a, *b),
            _ => panic!("unexpected events"),
        };
        // Same leaked allocation reused, not one leak per record.
        assert!(std::ptr::eq(k0, k1));
    }

    #[test]
    fn jsonl_parse_errors_carry_line_numbers() {
        assert!(Journal::from_jsonl("").is_err());
        let e = Journal::from_jsonl("{\"type\":\"rec\"}\n").unwrap_err();
        assert_eq!(e.line, 1);
        let good = sample_journal().to_jsonl();
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        let e = Journal::from_jsonl(&truncated).unwrap_err();
        assert!(e.msg.contains("declared"), "{e}");
        let mut garbled = good.clone();
        garbled.push_str("{\"type\":\"rec\",\"seq\":9,\"at\":9,\"ev\":\"warp\"}\n");
        assert!(Journal::from_jsonl(&garbled).is_err());
    }

    #[test]
    fn save_and_load_files() {
        let j = sample_journal();
        let path = std::env::temp_dir().join("sensorlog_trace_unit.jsonl");
        j.save(&path).unwrap();
        let back = Journal::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(j, back);
    }

    #[test]
    fn shared_journal_round_trip() {
        let shared = SharedJournal::new(3);
        let mut sink = shared.clone();
        sink.record(rec(0, 0, TraceEvent::Start { node: NodeId(0) }));
        assert_eq!(shared.snapshot().records.len(), 1);
        let j = shared.take();
        assert_eq!(j.seed, 3);
        assert_eq!(j.records.len(), 1);
        assert!(shared.snapshot().records.is_empty());
    }
}
