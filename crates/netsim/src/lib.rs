//! # sensorlog-netsim
//!
//! Deterministic discrete-event sensor-network simulator — the substitution
//! for TOSSIM (see DESIGN.md). The paper's evaluation metrics are functions
//! of the message-passing schedule (communication cost, load balance,
//! latency, correctness under loss), which this simulator reproduces with:
//!
//! * unit-disk radio over [`topology::Topology`] (grids and random
//!   geometric graphs);
//! * bounded, jittered per-hop delays (Theorems 1–3 assume bounded delays);
//! * Bernoulli and per-link (asymmetric) message loss;
//! * per-node clock skew bounded by τc;
//! * per-node / per-kind message, byte and energy accounting
//!   ([`metrics::Metrics`]).
//!
//! Nodes implement [`sim::App`]; the harness injects sensor readings via
//! [`sim::Simulator::invoke`].

pub mod metrics;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod wheel;

pub use metrics::{EnergyModel, Metrics, NodeCounters};
pub use sim::{App, Ctx, MsgMeta, Sched, SchedStats, SimConfig, SimTime, Simulator};
pub use topology::{NodeId, Topology, TopologyKind};
pub use trace::{
    DropReason, Journal, ReplayChecker, SharedJournal, SharedSummary, TraceEvent, TraceRecord,
    TraceSink, TraceSummary,
};
pub use wheel::TimerWheel;
