//! Recursive-descent parser for the rule language.
//!
//! ```text
//! program   := (directive | rule)*
//! directive := '.' IDENT … '.'          (.window p N. | .output p. | .base p. | .stage p N.)
//! rule      := head (':-' literal (',' literal)*)? '.'
//! head      := IDENT '(' headarg (',' headarg)* ')' | IDENT
//! headarg   := AGG '<' term '>' | term  (AGG ∈ count,sum,min,max,avg)
//! literal   := 'not' atom | term (CMP term)?
//! term      := additive with + - * / %, primary:
//!              INT | FLOAT | STRING | VAR | '_' | IDENT('(' terms ')')?
//!              | '[' terms ('|' term)? ']' | '(' term ')' | '-' primary
//! ```
//!
//! Anonymous variables `_` become fresh variables `_G0`, `_G1`, … scoped to
//! the rule. Arithmetic desugars into the function symbols `add`, `sub`,
//! `mul`, `div`, `mod`, `neg`.

use crate::ast::{AggFunc, AggSpec, Atom, CmpOp, Literal, Program, Rule};
use crate::lexer::{lex, LexError, Spanned, Token};
use crate::span::{RuleSpans, Span};
use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// Parse error with source line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a full program (directives + rules).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parse a single rule, e.g. for tests and REPL-style use.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let r = p.rule(0)?;
    p.expect_eof()?;
    Ok(r)
}

/// Parse a single ground fact `p(c1, …, cn).` into its predicate and tuple.
pub fn parse_fact(src: &str) -> Result<(Symbol, Vec<Term>), ParseError> {
    let mut p = Parser::new(src)?;
    let atom = p.atom()?;
    p.eat(&Token::Dot).ok();
    p.expect_eof()?;
    for t in &atom.args {
        if !t.is_ground() {
            return Err(ParseError {
                line: 0,
                message: format!("fact argument {t} is not ground"),
            });
        }
    }
    Ok((atom.pred, atom.args))
}

/// Parse a sequence of ground facts `p(c1, …). q(d1, …).` — whitespace,
/// newlines and `%` comments between facts are fine.
pub fn parse_facts(src: &str) -> Result<Vec<(Symbol, Vec<Term>)>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !matches!(p.peek(), Token::Eof) {
        let atom = p.atom()?;
        p.eat(&Token::Dot)?;
        for t in &atom.args {
            if !t.is_ground() {
                return Err(ParseError {
                    line: 0,
                    message: format!("fact argument {t} is not ground"),
                });
            }
        }
        out.push((atom.pred, atom.args));
    }
    Ok(out)
}

/// Parse a single term (used in tests and builtin registration helpers).
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    p.expect_eof()?;
    Ok(t)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    fresh: u32,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            fresh: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    /// Span of the token about to be consumed.
    fn cur_span(&self) -> Span {
        self.toks[self.pos].span()
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span()
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn eat(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{t}', found '{}'", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input at '{}'", self.peek()))
        }
    }

    fn fresh_var(&mut self) -> Term {
        let v = Term::var(&format!("_G{}", self.fresh));
        self.fresh += 1;
        v
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Token::Eof => break,
                Token::Dot => self.directive(&mut prog)?,
                _ => {
                    let id = prog.rules.len();
                    let rule = self.rule(id)?;
                    prog.rules.push(rule);
                }
            }
        }
        Ok(prog)
    }

    fn directive(&mut self, prog: &mut Program) -> Result<(), ParseError> {
        self.eat(&Token::Dot)?;
        let name = match self.bump() {
            Token::Ident(s) => s,
            other => return self.err(format!("expected directive name, found '{other}'")),
        };
        match name.as_str() {
            "window" => {
                let pred = self.pred_name()?;
                let n = self.int_lit()?;
                if n < 0 {
                    return self.err("window range must be non-negative");
                }
                prog.windows.insert(pred, n as u64);
            }
            "output" => {
                let pred = self.pred_name()?;
                prog.outputs.push(pred);
            }
            "base" => {
                let pred = self.pred_name()?;
                prog.declared_base.insert(pred);
            }
            "stage" => {
                let pred = self.pred_name()?;
                let n = self.int_lit()?;
                if n < 0 {
                    return self.err("stage index must be non-negative");
                }
                prog.stage_hints.insert(pred, n as usize);
            }
            "holddown" => {
                let pred = self.pred_name()?;
                let n = self.int_lit()?;
                if n < 0 {
                    return self.err("holddown must be non-negative");
                }
                prog.holddowns.insert(pred, n as u64);
            }
            other => return self.err(format!("unknown directive '.{other}'")),
        }
        self.eat(&Token::Dot)
    }

    fn pred_name(&mut self) -> Result<Symbol, ParseError> {
        match self.bump() {
            Token::Ident(s) => Ok(Symbol::intern(&s)),
            other => self.err(format!("expected predicate name, found '{other}'")),
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Token::Int(i) => Ok(i),
            other => self.err(format!("expected integer, found '{other}'")),
        }
    }

    fn rule(&mut self, id: usize) -> Result<Rule, ParseError> {
        self.fresh = 0;
        let start = self.cur_span();
        let (head, agg) = self.head()?;
        let head_span = start.cover(self.prev_span());
        let mut body = Vec::new();
        let mut lit_spans = Vec::new();
        if self.peek() == &Token::ColonDash {
            self.bump();
            loop {
                let lit_start = self.cur_span();
                body.push(self.literal()?);
                lit_spans.push(lit_start.cover(self.prev_span()));
                if self.peek() == &Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::Dot)?;
        Ok(Rule {
            id,
            head,
            body,
            agg,
            spans: RuleSpans {
                rule: start.cover(self.prev_span()),
                head: head_span,
                lits: lit_spans,
            },
        })
    }

    fn head(&mut self) -> Result<(Atom, Option<AggSpec>), ParseError> {
        let pred = self.pred_name()?;
        let mut args = Vec::new();
        let mut agg = None;
        if self.peek() == &Token::LParen {
            self.bump();
            if self.peek() != &Token::RParen {
                loop {
                    // Aggregate arg: count<X> etc.
                    if let (Token::Ident(name), Token::Lt) = (self.peek(), self.peek2()) {
                        if let Some(func) = AggFunc::from_name(name) {
                            let pos = args.len() + usize::from(agg.is_some());
                            if agg.is_some() {
                                return self.err("at most one aggregate per head");
                            }
                            self.bump(); // name
                            self.bump(); // '<'
                            let term = self.term()?;
                            self.eat(&Token::Gt)?;
                            agg = Some(AggSpec { func, pos, term });
                            if self.peek() == &Token::Comma {
                                self.bump();
                                continue;
                            }
                            break;
                        }
                    }
                    args.push(self.term()?);
                    if self.peek() == &Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Token::RParen)?;
        }
        Ok((Atom { pred, args }, agg))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if let Token::Ident(s) = self.peek() {
            if s == "not" {
                self.bump();
                let atom = self.atom()?;
                return Ok(Literal::Neg(atom));
            }
        }
        let lhs = self.term()?;
        let op = match self.peek() {
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            Token::EqEq => Some(CmpOp::Eq),
            Token::Ne => Some(CmpOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.term()?;
            return Ok(Literal::Cmp(op, lhs, rhs));
        }
        // A bare term used as a literal must be a predicate application (or a
        // zero-arity predicate written as a bare identifier).
        match lhs {
            Term::App(pred, args) => Ok(Literal::Pos(Atom {
                pred,
                args: args.to_vec(),
            })),
            Term::Atom(pred) => Ok(Literal::Pos(Atom {
                pred,
                args: Vec::new(),
            })),
            other => self.err(format!("'{other}' cannot be used as a subgoal")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let pred = self.pred_name()?;
        let mut args = Vec::new();
        if self.peek() == &Token::LParen {
            self.bump();
            if self.peek() != &Token::RParen {
                loop {
                    args.push(self.term()?);
                    if self.peek() == &Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Token::RParen)?;
        }
        Ok(Atom { pred, args })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.additive()
    }

    fn additive(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let f = match self.peek() {
                Token::Plus => "add",
                Token::Minus => "sub",
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Term::app(f, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.primary()?;
        loop {
            let f = match self.peek() {
                Token::Star => "mul",
                Token::Slash => "div",
                _ => break,
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = Term::app(f, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Token::Int(i) => Ok(Term::Int(i)),
            Token::Float(x) => Ok(Term::float(x)),
            Token::Str(s) => Ok(Term::str(&s)),
            Token::Minus => {
                let inner = self.primary()?;
                Ok(match inner {
                    Term::Int(i) => Term::Int(-i),
                    Term::Float(f) => Term::float(-f.get()),
                    other => Term::app("neg", vec![other]),
                })
            }
            Token::Var(v) => {
                if v == "_" {
                    Ok(self.fresh_var())
                } else {
                    Ok(Term::var(&v))
                }
            }
            Token::Ident(name) => {
                if self.peek() == &Token::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.term()?);
                            if self.peek() == &Token::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Token::RParen)?;
                    Ok(Term::App(Symbol::intern(&name), args.into()))
                } else {
                    Ok(Term::atom(&name))
                }
            }
            Token::LParen => {
                let t = self.term()?;
                self.eat(&Token::RParen)?;
                Ok(t)
            }
            Token::LBracket => {
                if self.peek() == &Token::RBracket {
                    self.bump();
                    return Ok(Term::nil());
                }
                let mut items = vec![self.term()?];
                let mut tail = None;
                loop {
                    match self.peek() {
                        Token::Comma => {
                            self.bump();
                            items.push(self.term()?);
                        }
                        Token::Pipe => {
                            self.bump();
                            tail = Some(self.term()?);
                            break;
                        }
                        _ => break,
                    }
                }
                self.eat(&Token::RBracket)?;
                Ok(Term::list(items, tail))
            }
            other => self.err(format!("unexpected token '{other}' in term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;

    #[test]
    fn parses_example1_battlefield() {
        // Example 1 of the paper: negated subgoals.
        let src = r#"
            .window veh 30000.
            .output uncov.
            cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T),
                          dist(L1, L2) <= 50.
            uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.windows[&Symbol::intern("veh")], 30000);
        assert_eq!(p.outputs, vec![Symbol::intern("uncov")]);
        assert!(matches!(p.rules[1].body[0], Literal::Neg(_)));
        // dist(...) <= 50 must be a comparison over a function term
        assert!(matches!(p.rules[0].body[2], Literal::Cmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn parses_example3_shortest_path_tree() {
        // Example 3 (logicH), with _ anonymous vars and d+1 arithmetic.
        let src = r#"
            h(A, x, 1) :- g(A, x).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 3);
        // Anonymous vars expand to distinct fresh variables.
        let r1 = &p.rules[1];
        let mut vars = Vec::new();
        for l in &r1.body {
            l.collect_vars(&mut vars);
        }
        let anon: Vec<_> = vars
            .iter()
            .filter(|v| v.as_str().starts_with("_G"))
            .collect();
        assert_eq!(anon.len(), 2);
        assert_ne!(anon[0], anon[1]);
        // d+1 desugars to add(D, 1)
        let head_arg = &p.rules[2].head.args[2];
        assert_eq!(
            head_arg,
            &Term::app("add", vec![Term::var("D"), Term::Int(1)])
        );
    }

    #[test]
    fn parses_example2_lists() {
        let src = r#"
            traj([R1, R2]) :- report(R1), report(R2), close(R1, R2), not notstart(R1).
            traj([X | R1]) :- traj(R1), report(X).
        "#;
        let p = parse_program(src).unwrap();
        let head = &p.rules[0].head.args[0];
        assert_eq!(head.as_list().map(|l| l.len()), Some(2));
        let head2 = &p.rules[1].head.args[0];
        assert!(head2.as_list().is_none()); // improper [X | R1]
    }

    #[test]
    fn parses_aggregates() {
        let r = parse_rule("shortest(Y, min<D>) :- path(Y, D).").unwrap();
        let agg = r.agg.unwrap();
        assert_eq!(agg.func, AggFunc::Min);
        assert_eq!(agg.pos, 1);
        assert_eq!(agg.term, Term::var("D"));
        assert_eq!(r.head.args.len(), 1);
    }

    #[test]
    fn agg_in_middle_position() {
        let r = parse_rule("q(A, count<X>, B) :- p(A, X, B).").unwrap();
        let agg = r.agg.unwrap();
        assert_eq!(agg.pos, 1);
        assert_eq!(r.head.args.len(), 2);
    }

    #[test]
    fn rejects_two_aggregates() {
        assert!(parse_rule("q(min<X>, max<Y>) :- p(X, Y).").is_err());
    }

    #[test]
    fn facts_parse() {
        let (pred, args) = parse_fact(r#"veh("enemy", 3, 100)"#).unwrap();
        assert_eq!(pred, Symbol::intern("veh"));
        assert_eq!(args, vec![Term::str("enemy"), Term::Int(3), Term::Int(100)]);
        assert!(parse_fact("veh(X)").is_err()); // non-ground
    }

    #[test]
    fn zero_arity_predicates() {
        let r = parse_rule("alarm :- trigger.").unwrap();
        assert_eq!(r.head.args.len(), 0);
        assert!(matches!(&r.body[0], Literal::Pos(a) if a.args.is_empty()));
    }

    #[test]
    fn arithmetic_precedence() {
        let t = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(
            t,
            Term::app(
                "add",
                vec![
                    Term::Int(1),
                    Term::app("mul", vec![Term::Int(2), Term::Int(3)])
                ]
            )
        );
        let t = parse_term("(1 + 2) * 3").unwrap();
        assert_eq!(
            t,
            Term::app(
                "mul",
                vec![
                    Term::app("add", vec![Term::Int(1), Term::Int(2)]),
                    Term::Int(3)
                ]
            )
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_term("-5").unwrap(), Term::Int(-5));
        assert_eq!(parse_term("-1.5").unwrap(), Term::float(-1.5));
        assert_eq!(
            parse_term("-X").unwrap(),
            Term::app("neg", vec![Term::var("X")])
        );
    }

    #[test]
    fn error_messages_carry_lines() {
        let err = parse_program("foo(X).\nbar(").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn fact_with_trailing_dot() {
        let (pred, args) = parse_fact("g(1, 2).").unwrap();
        assert_eq!(pred, Symbol::intern("g"));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn display_then_reparse_is_stable() {
        let src = r#"
            .window s 1000.
            q(X, Y) :- s(X, Z), s(Z, Y), X != Y, not bad(X).
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1.rules, p2.rules);
        assert_eq!(p1.windows, p2.windows);
    }
}
