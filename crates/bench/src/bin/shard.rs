//! Region-sharded scheduler scaling curve, exported as `BENCH_shard.json`.
//!
//! ```text
//! shard [--quick] [--out BENCH_shard.json]
//! ```
//!
//! One deployment — logicH (the Example 3 shortest-path tree) on a
//! 100k-node grid with the network's own links as the `g` workload — run
//! under the single-wheel oracle and under `Sched::Shard` at 1/2/4/8
//! workers. For every configuration the journal hash must match the
//! oracle byte-for-byte (the determinism contract of
//! `tests/trace_stability.rs`, enforced here too), so the curve compares
//! *execution strategies*, never models.
//!
//! All edges inject simultaneously (spacing 0) so every region has work
//! in every window — id-sequential injection would walk a wavefront
//! through one region at a time and serialize the partition.
//!
//! Two speedup figures, both reported:
//!
//! * **model** — `shard_work_ns / shard_crit_ns`: summed per-region busy
//!   time over the summed per-window critical path (the max busy region
//!   of each window). This is what the 4 workers actually buy — the
//!   parallel speedup a host with ≥ workers cores reaches — measured
//!   from the real windowed execution with worker threads off so
//!   thread-spawn noise never pollutes the busy-time clocks (on a
//!   1-core CI host that is also the only honest configuration). The
//!   acceptance gate (`speedup_at_4_workers ≥ 2`) reads this figure.
//! * **wall** — measured wall-clock against the single-wheel oracle,
//!   per run. The sharded backend wins even single-threaded (k small
//!   wheels with shallow spill tiers beat one wheel holding the whole
//!   network's pending set); on a multi-core host the model factor
//!   stacks on top of it.
//!
//! `--quick` shrinks the grid so CI proves the harness end-to-end (runs,
//! journals match, JSON parses) in seconds; the committed
//! `BENCH_shard.json` comes from a full run.

use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_netsim::{Sched, SimConfig, Topology};
use std::process::ExitCode;
use std::time::Instant;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

struct Run {
    workers: u64,
    wall_s: f64,
    hash: u64,
    records: usize,
    windows: u64,
    cross_msgs: u64,
    serial_events: u64,
    regions: u64,
    work_ns: u64,
    crit_ns: u64,
}

impl Run {
    fn model_speedup(&self) -> f64 {
        if self.crit_ns == 0 {
            1.0
        } else {
            self.work_ns as f64 / self.crit_ns as f64
        }
    }
}

/// One full deployment under `sched`; threading off so the per-region
/// busy-time clocks measure region work, not spawn overhead.
fn run_case(cols: u32, rows: u32, horizon: u64, sched: Sched, label: &str) -> Run {
    let topo = Topology::grid(cols, rows);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.05,
            seed: 17,
            sched,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg)
        .expect("bench program compiles");
    d.set_shard_threading(false);
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 0));
    let t0 = Instant::now();
    d.run(horizon);
    let wall_s = t0.elapsed().as_secs_f64();
    let j = journal.take();
    let s = d.sched_stats();
    let workers = match sched {
        Sched::Shard { workers } => workers as u64,
        _ => 0,
    };
    eprintln!(
        "{label}: wall {wall_s:.2}s, {} records, {} windows, model {:.2}x",
        j.records.len(),
        s.shard_windows,
        if s.shard_crit_ns > 0 {
            s.shard_work_ns as f64 / s.shard_crit_ns as f64
        } else {
            1.0
        }
    );
    Run {
        workers,
        wall_s,
        hash: j.content_hash(),
        records: j.records.len(),
        windows: s.shard_windows,
        cross_msgs: s.shard_cross_msgs,
        serial_events: s.shard_serial_events,
        regions: s.shard_regions,
        work_ns: s.shard_work_ns,
        crit_ns: s.shard_crit_ns,
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_shard.json".into());

    // 100_000 nodes full; a 30×20 grid quick. The horizon covers tree
    // convergence after the simultaneous edge injection at t=100.
    let (cols, rows, horizon): (u32, u32, u64) = if quick {
        (30, 20, 400_000)
    } else {
        (400, 250, 4_000_000)
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let baseline = run_case(cols, rows, horizon, Sched::Wheel, "wheel");
    let mut runs: Vec<Run> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let label = format!("shard{workers}");
        let r = run_case(cols, rows, horizon, Sched::Shard { workers }, &label);
        if r.hash != baseline.hash || r.records != baseline.records {
            eprintln!(
                "shard: {label} journal diverged from the wheel oracle \
                 ({} records, hash {:016x} vs {} / {:016x})",
                r.records, r.hash, baseline.records, baseline.hash
            );
            return ExitCode::FAILURE;
        }
        runs.push(r);
    }

    let at4 = runs
        .iter()
        .find(|r| r.workers == 4)
        .expect("4-worker run present");
    let speedup_at_4 = at4.model_speedup();
    let wall_at_4 = baseline.wall_s / at4.wall_s;

    // Hand-rolled JSON — stable field order, no external deps.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"shard\",\n  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"nodes\": {},\n  \"grid\": [{cols}, {rows}],\n  \"horizon_ms\": {horizon},\n",
        cols as u64 * rows as u64
    ));
    s.push_str(&format!(
        "  \"host_cores\": {host_cores},\n  \"oracle\": {{\"backend\": \"wheel\", \
         \"wall_s\": {:.3}, \"records\": {}, \"hash\": \"{:016x}\"}},\n",
        baseline.wall_s, baseline.records, baseline.hash
    ));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"regions\": {}, \"wall_s\": {:.3}, \
             \"wall_speedup_vs_wheel\": {:.2}, \"model_speedup\": {:.2}, \
             \"windows\": {}, \"cross_msgs\": {}, \"serial_events\": {}, \
             \"work_ms\": {:.1}, \"crit_ms\": {:.1}, \"journal_matches_oracle\": true}}{}\n",
            r.workers,
            r.regions,
            r.wall_s,
            baseline.wall_s / r.wall_s,
            r.model_speedup(),
            r.windows,
            r.cross_msgs,
            r.serial_events,
            r.work_ns as f64 / 1e6,
            r.crit_ns as f64 / 1e6,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"speedup_at_4_workers\": {speedup_at_4:.2},\n  \
         \"wall_speedup_at_4_workers\": {wall_at_4:.2}\n}}\n"
    ));

    if let Err(e) = std::fs::write(&out_path, &s) {
        eprintln!("shard: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "shard OK: {} runs, model speedup at 4 workers {:.2}x (wall {:.2}x) -> {out_path}",
        runs.len(),
        speedup_at_4,
        wall_at_4
    );
    if speedup_at_4 < 2.0 && !quick {
        eprintln!("shard: model speedup at 4 workers below the 2x acceptance gate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
