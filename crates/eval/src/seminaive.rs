//! Batch bottom-up evaluation: semi-naive fixpoint with stratified negation
//! and XY-staged evaluation (Secs. III-B and IV-C).
//!
//! The engine walks the program's SCCs in dependency order (negated and
//! aggregate dependencies fully computed before use) and evaluates each SCC:
//!
//! * non-recursive — a single pass over its rules;
//! * recursive, negation-free within the SCC — classical semi-naive
//!   iteration pinning each recursive subgoal occurrence to the delta;
//! * XY-stratified — stage-by-stage evaluation binding each rule's head
//!   stage variable to the current stage, visiting predicates in the
//!   certified stage-local order (the paper's `H0, H'1, H1, H'2, …`
//!   schedule).
//!
//! The batch engine is the correctness *oracle* for both the incremental
//! engine and the distributed runtime.

use crate::aggregate::aggregate_rule;
use crate::error::EvalError;
use crate::eval_body::{instantiate_head, BodyEval, Solution};
use crate::lineage::LineageLog;
use crate::relation::{Database, TupleMeta};
use sensorlog_logic::analyze::Analysis;
use sensorlog_logic::ast::{Literal, Rule};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::depgraph::DepGraph;
use sensorlog_logic::flat::FlatSubst;
use sensorlog_logic::intern::{self, Val};
use sensorlog_logic::xy::{stage_expr, StageExpr, XyInfo};
use sensorlog_logic::{analyze, Symbol, Tuple};
use sensorlog_telemetry::Profiler;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Resource guards for evaluation. Function symbols make the language
/// Turing-complete, so a runaway program must hit a limit, not hang.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Max semi-naive iterations per SCC.
    pub max_iterations: usize,
    /// Max stages per XY component.
    pub max_stages: usize,
    /// Max total derived tuples.
    pub max_tuples: usize,
    /// Probe positive literals through the planner-registered relation
    /// indexes. `false` forces filtered scans — the A/B baseline the
    /// scheduler bench compares against.
    pub use_index: bool,
    /// Record per-firing lineage (rule id, substitution, premise atoms →
    /// derived atom) into a [`crate::lineage::LineageLog`]. Consumed via
    /// [`Engine::run_with_lineage`]; plain [`Engine::run`] ignores it and
    /// pays nothing.
    pub record_lineage: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_iterations: 100_000,
            max_stages: 100_000,
            max_tuples: 10_000_000,
            use_index: true,
            record_lineage: false,
        }
    }
}

/// Batch engine: analysis + builtins + limits.
pub struct Engine {
    pub analysis: Analysis,
    pub reg: BuiltinRegistry,
    pub config: EvalConfig,
    /// Phase profiler (disabled by default; wire a live one via
    /// [`Profiler`] to time semi-naive rounds and XY stages).
    pub profiler: Profiler,
    sccs: Vec<Vec<Symbol>>,
}

impl Engine {
    pub fn new(analysis: Analysis, reg: BuiltinRegistry) -> Engine {
        let g = DepGraph::build(&analysis.program);
        let sccs = g.sccs();
        Engine {
            analysis,
            reg,
            config: EvalConfig::default(),
            profiler: Profiler::disabled(),
            sccs,
        }
    }

    /// Parse + analyze + build in one step.
    pub fn from_source(src: &str, reg: BuiltinRegistry) -> Result<Engine, EvalError> {
        let prog =
            sensorlog_logic::parse_program(src).map_err(|e| EvalError::Internal(e.to_string()))?;
        let analysis = analyze(&prog, &reg)?;
        Ok(Engine::new(analysis, reg))
    }

    pub fn with_config(mut self, config: EvalConfig) -> Engine {
        self.config = config;
        self
    }

    /// Evaluate the program over `edb`, returning the full database
    /// (EDB + all derived relations).
    pub fn run(&self, edb: &Database) -> Result<Database, EvalError> {
        self.run_inner(edb, &mut None)
    }

    /// Evaluate with per-firing lineage capture: every Definition-2
    /// derivation (rule id, substitution witness, premise atoms → head
    /// atom) lands in the returned [`LineageLog`], with the input EDB
    /// recorded as leaf records. Honors [`EvalConfig::record_lineage`] in
    /// spirit — this is the entry point that actually collects; plain
    /// [`run`](Engine::run) never pays for lineage.
    pub fn run_with_lineage(&self, edb: &Database) -> Result<(Database, LineageLog), EvalError> {
        let mut log = LineageLog::new();
        for pred in edb.preds() {
            if let Some(rel) = edb.relation(pred) {
                for (t, _) in rel.iter() {
                    log.record_edb(pred, t, 1, 0);
                }
            }
        }
        let mut lin = Some(log);
        let db = self.run_inner(edb, &mut lin)?;
        Ok((db, lin.expect("lineage log survives evaluation")))
    }

    fn run_inner(
        &self,
        edb: &Database,
        lin: &mut Option<LineageLog>,
    ) -> Result<Database, EvalError> {
        let mut db = edb.clone();
        if self.config.use_index {
            crate::planner::register_program_indexes(&mut db, &self.analysis.program.rules);
        }
        let prog = &self.analysis.program;
        let idb = prog.idb_preds();
        for scc in &self.sccs {
            let has_rules = scc.iter().any(|p| idb.contains(p));
            if !has_rules {
                continue;
            }
            let scc_set: BTreeSet<Symbol> = scc.iter().copied().collect();
            let rules: Vec<&Rule> = prog
                .rules
                .iter()
                .filter(|r| scc_set.contains(&r.head.pred))
                .collect();
            if let Some(info) = self
                .analysis
                .xy
                .iter()
                .find(|i| i.scc.iter().any(|p| scc_set.contains(p)))
            {
                self.eval_xy(&mut db, &rules, info, lin)?;
            } else if is_recursive_unit(&rules, &scc_set) {
                self.eval_seminaive(&mut db, &rules, &scc_set, lin)?;
            } else {
                self.eval_once(&mut db, &rules, lin)?;
            }
            if db.total_tuples() > self.config.max_tuples {
                return Err(EvalError::LimitExceeded {
                    what: "derived tuples",
                    limit: self.config.max_tuples,
                });
            }
        }
        Ok(db)
    }

    /// Single pass for a non-recursive SCC (negation/aggregates allowed —
    /// everything they reference is already complete).
    fn eval_once(
        &self,
        db: &mut Database,
        rules: &[&Rule],
        lin: &mut Option<LineageLog>,
    ) -> Result<(), EvalError> {
        let _span = self.profiler.span("eval.once");
        // Two-phase: compute all head tuples against the pre-pass state,
        // then insert, so rules for the same head don't see each other's
        // output mid-pass (they couldn't depend on it: same-SCC and
        // non-recursive means no rule references the head).
        let mut pending: Vec<(Symbol, Tuple)> = Vec::new();
        for rule in rules {
            let mut ev = BodyEval::new(db, &self.reg);
            ev.use_index = self.config.use_index;
            let sols = ev.solutions(&rule.body, FlatSubst::new(), None)?;
            if rule.agg.is_some() {
                let outs = aggregate_rule(rule, &sols, &self.reg)?;
                if let Some(log) = lin.as_mut() {
                    note_aggregate(log, rule, &sols, &outs);
                }
                for t in outs {
                    pending.push((rule.head.pred, t));
                }
            } else {
                for sol in &sols {
                    let t = instantiate_head(rule, &sol.subst, &self.reg)?;
                    if let Some(log) = lin.as_mut() {
                        note_firing(log, rule, sol, &t);
                    }
                    pending.push((rule.head.pred, t));
                }
            }
        }
        for (p, t) in pending {
            db.relation_mut(p).insert(t, TupleMeta::default());
        }
        Ok(())
    }

    /// Classical semi-naive fixpoint for a recursive, internally
    /// negation-free SCC.
    fn eval_seminaive(
        &self,
        db: &mut Database,
        rules: &[&Rule],
        scc_set: &BTreeSet<Symbol>,
        lin: &mut Option<LineageLog>,
    ) -> Result<(), EvalError> {
        // Round 0: full evaluation of every rule.
        let round0_span = self.profiler.span("eval.seminaive.round");
        let mut delta: HashMap<Symbol, Vec<Tuple>> = HashMap::new();
        let mut round0: Vec<(Symbol, Tuple)> = Vec::new();
        for rule in rules {
            let mut ev = BodyEval::new(db, &self.reg);
            ev.use_index = self.config.use_index;
            let sols = ev.solutions(&rule.body, FlatSubst::new(), None)?;
            debug_assert!(rule.agg.is_none(), "aggregates cannot be recursive");
            for sol in &sols {
                let t = instantiate_head(rule, &sol.subst, &self.reg)?;
                if let Some(log) = lin.as_mut() {
                    note_firing(log, rule, sol, &t);
                }
                round0.push((rule.head.pred, t));
            }
        }
        for (p, t) in round0 {
            if db.relation_mut(p).insert(t.clone(), TupleMeta::default()) {
                delta.entry(p).or_default().push(t);
            }
        }
        drop(round0_span);

        let mut iterations = 0usize;
        while delta.values().any(|v| !v.is_empty()) {
            let _round = self.profiler.span("eval.seminaive.round");
            iterations += 1;
            if iterations > self.config.max_iterations {
                return Err(EvalError::LimitExceeded {
                    what: "semi-naive iterations",
                    limit: self.config.max_iterations,
                });
            }
            let mut produced: Vec<(Symbol, Tuple)> = Vec::new();
            for rule in rules {
                for (idx, lit) in rule.body.iter().enumerate() {
                    let atom = match lit {
                        Literal::Pos(a) if scc_set.contains(&a.pred) => a,
                        _ => continue,
                    };
                    let empty = Vec::new();
                    let dts = delta.get(&atom.pred).unwrap_or(&empty);
                    for dt in dts {
                        let mut ev = BodyEval::new(db, &self.reg);
                        ev.use_index = self.config.use_index;
                        let sols = ev.solutions(&rule.body, FlatSubst::new(), Some((idx, dt)))?;
                        for sol in &sols {
                            let t = instantiate_head(rule, &sol.subst, &self.reg)?;
                            if let Some(log) = lin.as_mut() {
                                note_firing(log, rule, sol, &t);
                            }
                            produced.push((rule.head.pred, t));
                        }
                    }
                }
            }
            let mut next: HashMap<Symbol, Vec<Tuple>> = HashMap::new();
            for (p, t) in produced {
                if db.relation_mut(p).insert(t.clone(), TupleMeta::default()) {
                    next.entry(p).or_default().push(t);
                }
            }
            if db.total_tuples() > self.config.max_tuples {
                return Err(EvalError::LimitExceeded {
                    what: "derived tuples",
                    limit: self.config.max_tuples,
                });
            }
            delta = next;
        }
        Ok(())
    }

    /// Stage-by-stage evaluation of an XY-stratified component.
    fn eval_xy(
        &self,
        db: &mut Database,
        rules: &[&Rule],
        info: &XyInfo,
        lin: &mut Option<LineageLog>,
    ) -> Result<(), EvalError> {
        let scc_set: BTreeSet<Symbol> = info.scc.iter().copied().collect();
        // Import rules (no SCC subgoal in the body) run once up front: they
        // bootstrap the staged tables (base cases like `h(a, a, 0).`).
        let (import, staged): (Vec<&&Rule>, Vec<&&Rule>) = rules.iter().partition(|r| {
            !r.body.iter().any(
                |l| matches!(l, Literal::Pos(a) | Literal::Neg(a) if scc_set.contains(&a.pred)),
            )
        });
        for rule in &import {
            let mut ev = BodyEval::new(db, &self.reg);
            ev.use_index = self.config.use_index;
            let sols = ev.solutions(&rule.body, FlatSubst::new(), None)?;
            for sol in &sols {
                let t = instantiate_head(rule, &sol.subst, &self.reg)?;
                if let Some(log) = lin.as_mut() {
                    note_firing(log, rule, sol, &t);
                }
                db.relation_mut(rule.head.pred)
                    .insert(t, TupleMeta::default());
            }
        }

        // Stage bounds from the tuples present so far.
        let (lo, mut hi) = match self.stage_bounds(db, info) {
            Some(b) => b,
            None => return Ok(()), // nothing to stage from
        };
        let mut stage = lo;
        let mut stages_run = 0usize;
        // Visit stages in order; `hi` grows as higher-stage tuples appear.
        while stage <= hi + 1 {
            let _stage_span = self.profiler.span("eval.xy.stage");
            stages_run += 1;
            if stages_run > self.config.max_stages {
                return Err(EvalError::LimitExceeded {
                    what: "XY stages",
                    limit: self.config.max_stages,
                });
            }
            for &pred in &info.stage_order {
                for rule in &staged {
                    if rule.head.pred != pred {
                        continue;
                    }
                    let hpos = info.stage_pos[&pred];
                    let hexpr = stage_expr(&rule.head.args[hpos]).ok_or_else(|| {
                        EvalError::Internal(format!("rule #{} lost its stage shape", rule.id))
                    })?;
                    let mut seed = FlatSubst::new();
                    match hexpr {
                        StageExpr::Const(c) => {
                            if c != stage {
                                continue;
                            }
                        }
                        StageExpr::Linear(v, off) => {
                            seed.bind(v, intern::intern_int(stage - off));
                        }
                    }
                    let mut ev = BodyEval::new(db, &self.reg);
                    ev.use_index = self.config.use_index;
                    let sols = ev.solutions(&rule.body, seed, None)?;
                    let mut new_tuples = Vec::new();
                    for sol in &sols {
                        let t = instantiate_head(rule, &sol.subst, &self.reg)?;
                        if let Some(log) = lin.as_mut() {
                            note_firing(log, rule, sol, &t);
                        }
                        new_tuples.push(t);
                    }
                    for t in new_tuples {
                        if let Val::Int(s) = intern::entry(t.id(hpos)).val {
                            if db.relation_mut(pred).insert(t, TupleMeta::default()) {
                                hi = hi.max(s);
                            }
                        } else {
                            return Err(EvalError::Internal(format!(
                                "non-integer stage value in {pred} tuple"
                            )));
                        }
                    }
                }
            }
            if db.total_tuples() > self.config.max_tuples {
                return Err(EvalError::LimitExceeded {
                    what: "derived tuples",
                    limit: self.config.max_tuples,
                });
            }
            stage += 1;
        }
        Ok(())
    }

    /// (min, max) stage value among current SCC tuples.
    fn stage_bounds(&self, db: &Database, info: &XyInfo) -> Option<(i64, i64)> {
        let mut bounds: Option<(i64, i64)> = None;
        for (&pred, &pos) in &info.stage_pos {
            if let Some(rel) = db.relation(pred) {
                for t in rel.tuples() {
                    if let Val::Int(s) = intern::entry(t.id(pos)).val {
                        bounds = Some(match bounds {
                            None => (s, s),
                            Some((lo, hi)) => (lo.min(s), hi.max(s)),
                        });
                    }
                }
            }
        }
        bounds
    }
}

/// Record one non-aggregate firing into the lineage log (batch evaluation
/// is timeless: `tau = 0`).
fn note_firing(log: &mut LineageLog, rule: &Rule, sol: &Solution, head: &Tuple) {
    // Lineage witnesses are boxed (display/export boundary).
    let witness = intern::boundary(|| sol.subst.to_subst());
    log.record_firing(
        rule.id,
        1,
        rule.head.pred,
        head,
        &sol.inputs,
        Some(&witness),
        0,
    );
}

/// Record an aggregate rule's group firings: each output tuple is supported
/// by the union of the contributing solutions' inputs (there is no single
/// substitution witness for a group).
fn note_aggregate(log: &mut LineageLog, rule: &Rule, sols: &[Solution], outs: &[Tuple]) {
    let mut prem: Vec<(usize, Symbol, Tuple)> =
        sols.iter().flat_map(|s| s.inputs.iter().cloned()).collect();
    prem.sort();
    prem.dedup();
    for t in outs {
        log.record_firing(rule.id, 1, rule.head.pred, t, &prem, None, 0);
    }
}

fn is_recursive_unit(rules: &[&Rule], scc_set: &BTreeSet<Symbol>) -> bool {
    scc_set.len() > 1
        || rules.iter().any(|r| {
            r.body.iter().any(
                |l| matches!(l, Literal::Pos(a) | Literal::Neg(a) if scc_set.contains(&a.pred)),
            )
        })
}

/// Effective sliding-window range per predicate: declared `.window` for base
/// streams, and for derived predicates the maximum over their rules of the
/// body predicates' effective windows ("implicit temporal correlation",
/// Sec. IV-C). `None` = unbounded.
pub fn effective_windows(analysis: &Analysis) -> BTreeMap<Symbol, u64> {
    let prog = &analysis.program;
    let mut out: BTreeMap<Symbol, u64> = prog.windows.clone();
    // Propagate along SCC dependency order until fixpoint (cheap: programs
    // are small).
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &prog.rules {
            if out.contains_key(&rule.head.pred) {
                continue;
            }
            let mut acc: Option<u64> = None;
            let mut all_bounded = true;
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    match out.get(&a.pred) {
                        Some(&w) => acc = Some(acc.map_or(w, |x: u64| x.max(w))),
                        None => all_bounded = false,
                    }
                }
            }
            if all_bounded {
                if let Some(w) = acc {
                    out.insert(rule.head.pred, w);
                    changed = true;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parser::parse_fact;
    use sensorlog_logic::Term;

    fn engine(src: &str) -> Engine {
        Engine::from_source(src, BuiltinRegistry::standard()).unwrap()
    }

    fn db(facts: &[&str]) -> Database {
        let mut d = Database::new();
        for f in facts {
            let (p, args) = parse_fact(f).unwrap();
            d.insert(p, Tuple::new(args));
        }
        d
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    #[test]
    fn nonrecursive_negation() {
        let e = engine(
            r#"
            cov(L) :- enemy(L), friendly(F), dist(L, F) <= 5.
            uncov(L) :- not cov(L), enemy(L).
            "#,
        );
        let out = e
            .run(&db(&["enemy(10)", "enemy(100)", "friendly(12)"]))
            .unwrap();
        assert_eq!(out.sorted(sym("cov")), vec![tup("10")]);
        assert_eq!(out.sorted(sym("uncov")), vec![tup("100")]);
    }

    #[test]
    fn transitive_closure() {
        let e = engine(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        );
        let out = e
            .run(&db(&["e(1, 2)", "e(2, 3)", "e(3, 4)", "e(4, 2)"]))
            .unwrap();
        // 1 reaches 2,3,4; 2,3,4 reach each other (cycle 2-3-4).
        assert_eq!(out.len_of(sym("t")), 3 + 9);
        assert!(out.contains(sym("t"), &tup("1, 4")));
        assert!(out.contains(sym("t"), &tup("4, 4")));
        assert!(!out.contains(sym("t"), &tup("2, 1")));
    }

    #[test]
    fn mutual_recursion() {
        let e = engine(
            r#"
            even(X) :- zero(X).
            even(Y) :- odd(X), succ(X, Y).
            odd(Y) :- even(X), succ(X, Y).
            "#,
        );
        let out = e
            .run(&db(&[
                "zero(0)",
                "succ(0,1)",
                "succ(1,2)",
                "succ(2,3)",
                "succ(3,4)",
            ]))
            .unwrap();
        assert_eq!(out.sorted(sym("even")), vec![tup("0"), tup("2"), tup("4")]);
        assert_eq!(out.sorted(sym("odd")), vec![tup("1"), tup("3")]);
    }

    #[test]
    fn stratified_negation_over_recursion() {
        let e = engine(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            unreach(Y) :- node(Y), not t(1, Y).
            "#,
        );
        let out = e
            .run(&db(&[
                "e(1, 2)", "e(2, 3)", "e(5, 6)", "node(2)", "node(3)", "node(6)",
            ]))
            .unwrap();
        assert_eq!(out.sorted(sym("unreach")), vec![tup("6")]);
    }

    #[test]
    fn logich_shortest_path_tree() {
        // Example 3: BFS tree from root 0 over an undirected path graph
        // 0 - 1 - 2 - 3 plus a shortcut 0 - 2.
        let e = engine(
            r#"
            h(0, 0, 0).
            h(0, X, 1) :- g(0, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
            "#,
        );
        let mut facts = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (0, 2)] {
            facts.push(format!("g({a}, {b})"));
            facts.push(format!("g({b}, {a})"));
        }
        let fact_refs: Vec<&str> = facts.iter().map(String::as_str).collect();
        let out = e.run(&db(&fact_refs)).unwrap();
        let h = out.sorted(sym("h"));
        // Depths: 0@0, 1@1, 2@1, 3@2. No vertex at depth > its BFS depth.
        assert!(h.contains(&tup("0, 0, 0")));
        assert!(h.contains(&tup("0, 1, 1")));
        assert!(h.contains(&tup("0, 2, 1")));
        assert!(h.contains(&tup("2, 3, 2")));
        // hp blocks re-adding vertex 2 at depth 2 (via 1).
        assert!(!h
            .iter()
            .any(|t| t.get(1) == Term::Int(2) && t.get(2) == Term::Int(2)));
        // And vertex 1 at depth 2 (via 2).
        assert!(!h
            .iter()
            .any(|t| t.get(1) == Term::Int(1) && t.get(2) == Term::Int(2)));
        // Every reachable vertex appears exactly at its BFS depth.
        let depth_of = |v: i64| {
            h.iter()
                .filter(|t| t.get(1) == Term::Int(v))
                .map(|t| t.get(2).as_i64().unwrap())
                .min()
                .unwrap()
        };
        assert_eq!(depth_of(3), 2);
    }

    #[test]
    fn aggregates_over_recursion() {
        let e = engine(
            r#"
            p(Y, 1) :- e(1, Y).
            p(Y, D + 1) :- p(X, D), e(X, Y), D < 10.
            best(Y, min<D>) :- p(Y, D).
            "#,
        );
        let out = e.run(&db(&["e(1, 2)", "e(2, 3)", "e(1, 3)"])).unwrap();
        assert!(out.contains(sym("best"), &tup("3, 1")));
        assert!(out.contains(sym("best"), &tup("2, 1")));
    }

    #[test]
    fn function_symbols_build_lists() {
        // len_ok bounds recursion: only lists up to length 2 extended.
        let mut reg = BuiltinRegistry::standard();
        reg.register_pred(
            "len_ok",
            std::sync::Arc::new(|args: &[Term]| {
                fn len(t: &Term) -> usize {
                    match t {
                        Term::App(f, a) if f.as_str() == "cons" => 1 + len(&a[1]),
                        _ => 0,
                    }
                }
                Ok(len(&args[0]) < 3)
            }),
        );
        let prog = sensorlog_logic::parse_program(
            r#"
            path(Y, cons(Y, nil())) :- start(Y).
            path(Y, cons(Y, P)) :- path(X, P), e(X, Y), len_ok(P).
            "#,
        )
        .unwrap();
        let analysis = analyze(&prog, &reg).unwrap();
        let e = Engine::new(analysis, reg);
        let out = e.run(&db(&["start(1)", "e(1, 2)", "e(2, 3)"])).unwrap();
        assert!(out.len_of(sym("path")) >= 3);
    }

    #[test]
    fn runaway_recursion_hits_limit() {
        let e = engine(
            r#"
            p(f(X)) :- p(X).
            p(X) :- seed(X).
            "#,
        )
        .with_config(EvalConfig {
            max_iterations: 50,
            ..EvalConfig::default()
        });
        let err = e.run(&db(&["seed(0)"])).unwrap_err();
        assert!(matches!(err, EvalError::LimitExceeded { .. }));
    }

    #[test]
    fn effective_windows_propagate() {
        let e = engine(
            r#"
            .window a 100.
            .window b 200.
            q(X) :- a(X), b(X).
            r(X) :- q(X).
            "#,
        );
        let w = effective_windows(&e.analysis);
        assert_eq!(w.get(&sym("q")), Some(&200));
        assert_eq!(w.get(&sym("r")), Some(&200));
    }

    #[test]
    fn unwindowed_base_leaves_derived_unbounded() {
        let e = engine(
            r#"
            .window a 100.
            q(X) :- a(X), c(X).
            "#,
        );
        let w = effective_windows(&e.analysis);
        assert_eq!(w.get(&sym("q")), None);
    }

    #[test]
    fn lineage_capture_is_well_founded() {
        use crate::lineage::EDB_RULE;
        let e = engine(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        );
        let (out, log) = e.run_with_lineage(&db(&["e(1, 2)", "e(2, 3)"])).unwrap();
        assert_eq!(out.len_of(sym("t")), 3);
        // EDB leaves are recorded.
        assert!(log.records.iter().any(|r| r.rule_id == EDB_RULE));
        // Every derived t-tuple has a live derivation with real premises,
        // and t(1,3) is derived from t(1,2) + e(2,3).
        let live = log.live_derivations();
        let t13 = log.lookup(sym("t"), &tup("1, 3")).unwrap();
        let ds = &live[&t13];
        assert!(ds
            .iter()
            .any(|(rule, prem)| *rule != EDB_RULE && prem.len() == 2));
        let (rule_id, prem) = ds.iter().find(|(r, _)| *r != EDB_RULE).unwrap();
        assert!(*rule_id < e.analysis.program.rules.len());
        let names: Vec<&str> = prem
            .iter()
            .map(|p| log.resolve(*p).unwrap().0.as_str())
            .collect();
        assert!(names.contains(&"t") && names.contains(&"e"));
        // Firing records carry a substitution witness.
        assert!(log
            .records
            .iter()
            .any(|r| r.rule_id != EDB_RULE && !r.subst.is_empty()));
        // Plain `run` pays nothing and the flag alone changes no results.
        let cfg = EvalConfig {
            record_lineage: true,
            ..EvalConfig::default()
        };
        let e2 = engine(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        )
        .with_config(cfg);
        let out2 = e2.run(&db(&["e(1, 2)", "e(2, 3)"])).unwrap();
        assert_eq!(out2.sorted(sym("t")), out.sorted(sym("t")));
    }

    #[test]
    fn empty_edb_empty_idb() {
        let e = engine("q(X) :- p(X).");
        let out = e.run(&Database::new()).unwrap();
        assert_eq!(out.len_of(sym("q")), 0);
    }
}
