//! End-to-end tests of the distributed deductive engine: every GPA
//! strategy must converge to the centralized oracle's quiescent result
//! (Theorems 1–3), across joins, negation, deletions, recursion, clock
//! skew, and the XY shortest-path-tree program.

use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog_core::oracle;
use sensorlog_core::workload::{graph_edges, UniformStreams};
use sensorlog_core::{PassMode, RtConfig, Strategy};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{parse_fact, Symbol, Term, Tuple};
use sensorlog_netsim::{NodeId, SimConfig, Topology};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn tuple(src: &str) -> Tuple {
    let (_, args) = parse_fact(src).unwrap();
    Tuple::new(args)
}

fn ev(at: u64, node: u32, pred: &str, fact: &str, kind: UpdateKind) -> WorkloadEvent {
    WorkloadEvent {
        at,
        node: NodeId(node),
        pred: sym(pred),
        tuple: tuple(fact),
        kind,
    }
}

fn config_with(strategy: Strategy) -> DeployConfig {
    DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        ..DeployConfig::default()
    }
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Perpendicular { band_width: 1.0 },
        Strategy::NaiveBroadcast,
        Strategy::LocalStorage,
        Strategy::Centroid,
    ]
}

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(X, T), r2(Y, T).
"#;

fn join2_events() -> Vec<WorkloadEvent> {
    vec![
        ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(120, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
        ev(300, 7, "r1", "r1(3, 8)", UpdateKind::Insert),
        ev(410, 12, "r2", "r2(4, 8)", UpdateKind::Insert),
        ev(500, 3, "r2", "r2(5, 9)", UpdateKind::Insert), // no partner
    ]
}

#[test]
fn two_stream_join_matches_oracle_on_all_strategies() {
    for strategy in all_strategies() {
        let topo = Topology::square_grid(4);
        let mut d = Deployment::new(
            JOIN2,
            BuiltinRegistry::standard(),
            topo,
            config_with(strategy),
        )
        .unwrap();
        let events = join2_events();
        d.schedule_all(events.clone());
        d.run(120_000);
        let report = oracle::check(&d, &events, sym("q"));
        assert!(
            report.exact(),
            "{}: missing {:?} spurious {:?}",
            strategy.name(),
            report.missing,
            report.spurious
        );
        assert_eq!(report.expected, 2);
    }
}

#[test]
fn deletion_retracts_join_results() {
    for strategy in all_strategies() {
        let topo = Topology::square_grid(4);
        let mut d = Deployment::new(
            JOIN2,
            BuiltinRegistry::standard(),
            topo,
            config_with(strategy),
        )
        .unwrap();
        let events = vec![
            ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
            ev(120, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
            // Retract the r1 side well after the join completed.
            ev(20_000, 1, "r1", "r1(1, 7)", UpdateKind::Delete),
        ];
        d.schedule_all(events.clone());
        d.run(200_000);
        let report = oracle::check(&d, &events, sym("q"));
        assert!(
            report.exact(),
            "{}: missing {:?} spurious {:?}",
            strategy.name(),
            report.missing,
            report.spurious
        );
        assert_eq!(report.expected, 0, "join result must be retracted");
    }
}

const UNCOV: &str = r#"
    .output uncov.
    cov(L, T) :- veh("enemy", L, T), veh("friendly", F, T), dist(L, F) <= 5.
    uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
"#;

#[test]
fn negation_example1_all_strategies() {
    for strategy in all_strategies() {
        let topo = Topology::square_grid(4);
        let mut d = Deployment::new(
            UNCOV,
            BuiltinRegistry::standard(),
            topo,
            config_with(strategy),
        )
        .unwrap();
        let events = vec![
            // Enemy at 10, covered by friendly at 12.
            ev(10, 2, "veh", r#"veh("enemy", 10, 1)"#, UpdateKind::Insert),
            ev(
                100,
                5,
                "veh",
                r#"veh("friendly", 12, 1)"#,
                UpdateKind::Insert,
            ),
            // Enemy at 100, uncovered.
            ev(200, 9, "veh", r#"veh("enemy", 100, 1)"#, UpdateKind::Insert),
        ];
        d.schedule_all(events.clone());
        d.run(200_000);
        let report = oracle::check(&d, &events, sym("uncov"));
        assert!(
            report.exact(),
            "{}: missing {:?} spurious {:?}",
            strategy.name(),
            report.missing,
            report.spurious
        );
        let results = d.results(sym("uncov"));
        assert!(results.contains(&tuple("x(100, 1)")));
        assert!(!results.contains(&tuple("x(10, 1)")));
    }
}

#[test]
fn negation_blocker_deletion_reraises_alert() {
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        UNCOV,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = vec![
        ev(10, 2, "veh", r#"veh("enemy", 10, 1)"#, UpdateKind::Insert),
        ev(
            100,
            5,
            "veh",
            r#"veh("friendly", 12, 1)"#,
            UpdateKind::Insert,
        ),
        // The friendly leaves much later: alert must come back.
        ev(
            60_000,
            5,
            "veh",
            r#"veh("friendly", 12, 1)"#,
            UpdateKind::Delete,
        ),
    ];
    d.schedule_all(events.clone());
    d.run(400_000);
    let report = oracle::check(&d, &events, sym("uncov"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
    assert!(d.results(sym("uncov")).contains(&tuple("x(10, 1)")));
}

#[test]
fn two_blockers_commute_distributed() {
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        UNCOV,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = vec![
        ev(10, 2, "veh", r#"veh("enemy", 10, 1)"#, UpdateKind::Insert),
        ev(
            5_000,
            5,
            "veh",
            r#"veh("friendly", 11, 1)"#,
            UpdateKind::Insert,
        ),
        ev(
            10_000,
            8,
            "veh",
            r#"veh("friendly", 12, 1)"#,
            UpdateKind::Insert,
        ),
        ev(
            60_000,
            5,
            "veh",
            r#"veh("friendly", 11, 1)"#,
            UpdateKind::Delete,
        ),
        ev(
            120_000,
            8,
            "veh",
            r#"veh("friendly", 12, 1)"#,
            UpdateKind::Delete,
        ),
    ];
    d.schedule_all(events.clone());
    d.run(600_000);
    let report = oracle::check(&d, &events, sym("uncov"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
    assert!(d.results(sym("uncov")).contains(&tuple("x(10, 1)")));
}

#[test]
fn derived_stream_cascades_through_strata() {
    let src = r#"
        .output c.
        a(X) :- base(X).
        b(X) :- a(X), X > 0.
        c(X) :- b(X), not blocked(X).
    "#;
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = vec![
        ev(10, 0, "base", "base(5)", UpdateKind::Insert),
        ev(20, 15, "base", "base(-3)", UpdateKind::Insert),
        ev(30_000, 7, "blocked", "blocked(5)", UpdateKind::Insert),
    ];
    d.schedule_all(events.clone());
    d.run(400_000);
    let report = oracle::check(&d, &events, sym("c"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
    assert_eq!(report.expected, 0); // c(5) blocked, c(-3) filtered by X > 0
}

#[test]
fn multipass_matches_onepass_results() {
    let src = r#"
        .output q.
        q(X, Y, Z) :- r1(X, T), r2(Y, T), r3(Z, T).
    "#;
    let events = vec![
        ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(200, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
        ev(400, 7, "r3", "r3(3, 7)", UpdateKind::Insert),
        ev(600, 9, "r2", "r2(4, 7)", UpdateKind::Insert),
    ];
    let mut results = Vec::new();
    for mode in [PassMode::OnePass, PassMode::MultiPass] {
        let topo = Topology::square_grid(4);
        let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
        cfg.rt.pass_mode = mode;
        let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, cfg).unwrap();
        d.schedule_all(events.clone());
        d.run(200_000);
        let report = oracle::check(&d, &events, sym("q"));
        assert!(
            report.exact(),
            "{mode:?}: missing {:?} spurious {:?}",
            report.missing,
            report.spurious
        );
        results.push(d.results(sym("q")));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0].len(), 2);
}

const JOIN3: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

#[test]
fn pa_beats_centroid_total_cost_on_larger_grid() {
    // The headline claim (Fig. 4 shape): PA's communication grows like
    // O(n^1.5) vs Centroid's concentration at the server, and PA balances
    // load while Centroid hot-spots the center.
    let src = JOIN3;
    let m = 8;
    let w = UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 4_000,
        duration: 20_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        // Selective join: about one partner per key, so result volume stays
        // comparable to input volume (the paper's periodic-gathering regime).
        groups: 256,
        seed: 11,
    };
    let mut loads = Vec::new();
    for strategy in [
        Strategy::Perpendicular { band_width: 1.0 },
        Strategy::Centroid,
    ] {
        let topo = Topology::square_grid(m);
        let mut d = Deployment::new(
            src,
            BuiltinRegistry::standard(),
            topo.clone(),
            config_with(strategy),
        )
        .unwrap();
        let events = w.events(&topo);
        d.schedule_all(events.clone());
        d.run(3_000_000);
        let report = oracle::check(&d, &events, sym("q"));
        assert!(
            report.exact(),
            "{}: missing {} spurious {}",
            strategy.name(),
            report.missing.len(),
            report.spurious.len()
        );
        assert!(report.expected > 0, "workload must produce join results");
        // Both placement strategies must respect the static analyzer's
        // per-predicate storage and communication envelopes.
        let bounds = sensorlog_core::invariants::check_static_bounds(&d);
        assert!(
            bounds.ok(),
            "{}: static bounds violated: {bounds}",
            strategy.name()
        );
        loads.push((
            strategy.name(),
            d.metrics().max_node_load(),
            d.metrics().imbalance(),
        ));
    }
    // PA's hottest node must carry less than Centroid's server.
    assert!(
        loads[0].1 < loads[1].1,
        "PA max load {} !< centroid max load {}",
        loads[0].1,
        loads[1].1
    );
}

#[test]
fn clock_skew_tolerated() {
    let topo = Topology::square_grid(4);
    let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
    cfg.sim.clock_skew_max = 50;
    cfg.rt.tau_c = 50;
    let mut d = Deployment::new(UNCOV, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events = vec![
        ev(10, 2, "veh", r#"veh("enemy", 10, 1)"#, UpdateKind::Insert),
        ev(
            5_000,
            5,
            "veh",
            r#"veh("friendly", 12, 1)"#,
            UpdateKind::Insert,
        ),
        ev(
            40_000,
            9,
            "veh",
            r#"veh("enemy", 100, 1)"#,
            UpdateKind::Insert,
        ),
    ];
    d.schedule_all(events.clone());
    d.run(300_000);
    let report = oracle::check(&d, &events, sym("uncov"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
}

#[test]
fn logich_distributed_builds_bfs_tree() {
    // Example 3 end-to-end: the XY-stratified shortest-path-tree program
    // running in-network must compute BFS depths on a 3x3 grid with root 0.
    let src = r#"
        .output h.
        h(0, 0, 0).
        h(0, X, 1) :- g(0, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;
    let topo = Topology::square_grid(3);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo.clone(),
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    // Edges injected with spacing so storage phases settle.
    let events = graph_edges(&topo, 100, 400);
    d.schedule_all(events.clone());
    d.run(4_000_000);
    let results = d.results(sym("h"));
    // Every node y must appear in h at exactly its BFS depth from node 0.
    for node in topo.nodes() {
        let (x, y) = topo.grid_coords(node).unwrap();
        let depth = (x + y) as i64;
        let at_depth: Vec<&Tuple> = results
            .iter()
            .filter(|t| t.get(1) == Term::Int(node.0 as i64))
            .collect();
        assert!(
            !at_depth.is_empty(),
            "node {node} missing from the tree: {results:?}"
        );
        let min_depth = at_depth
            .iter()
            .map(|t| t.get(2).as_i64().unwrap())
            .min()
            .unwrap();
        assert_eq!(min_depth, depth, "node {node} at wrong depth");
        // No stale deeper entries survive (hp retractions worked).
        let max_depth = at_depth
            .iter()
            .map(|t| t.get(2).as_i64().unwrap())
            .max()
            .unwrap();
        assert_eq!(
            max_depth, depth,
            "node {node} has stale deeper entries: {at_depth:?}"
        );
    }
    // Cross-validate against the static analyzer: no node's per-predicate
    // peak storage nor the network's message total may exceed the bounds
    // `sensorlog check` derives for this program (paper Sec. V).
    let bounds = sensorlog_core::invariants::check_static_bounds(&d);
    assert!(bounds.ok(), "static bounds violated: {bounds}");
}

#[test]
fn message_loss_degrades_completeness_not_soundness_much() {
    let topo = Topology::square_grid(6);
    let w = UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 5_000,
        duration: 20_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        groups: 18,
        seed: 5,
    };
    let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
    cfg.sim.loss_prob = 0.10;
    cfg.sim.seed = 22;
    let topo2 = topo.clone();
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo2, cfg).unwrap();
    let events = w.events(&topo);
    d.schedule_all(events.clone());
    d.run(3_000_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(report.expected > 0, "workload must produce join results");
    // Loss may drop results but fabricated results should be rare.
    assert!(
        report.completeness() > 0.3,
        "completeness {}",
        report.completeness()
    );
    assert!(report.soundness() > 0.7, "soundness {}", report.soundness());
}

#[test]
fn spatial_truncation_preserves_local_joins() {
    // With a spatial radius covering the whole 4x4 grid the truncation is a
    // no-op; results must stay exact.
    let topo = Topology::square_grid(4);
    let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
    cfg.rt.spatial_radius = Some(10.0);
    let mut d = Deployment::new(JOIN2, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events = join2_events();
    d.schedule_all(events.clone());
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(report.exact());
}

#[test]
fn memory_stats_populated() {
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        JOIN2,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    d.schedule_all(join2_events());
    d.run(120_000);
    assert!(d.peak_node_memory() > 0);
    let stats = d.node_stats();
    assert!(stats.iter().any(|s| s.probes_processed > 0));
    assert!(stats.iter().any(|s| s.results_emitted > 0));
    // PA replicates along rows: peak replicas bounded by workload size.
    assert!(stats.iter().all(|s| s.peak_replicas <= 5));
}

#[test]
fn telemetry_reports_sched_and_index_counters() {
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        JOIN2,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Centroid),
    )
    .unwrap();
    d.schedule_all(join2_events());
    d.run(120_000);
    let snap = d.telemetry_snapshot();
    // Every send/timer goes through the scheduler; the wheel backend is
    // the default, so the ring tier must have seen traffic.
    assert!(snap.counter("global", "sched.pushes") > 0);
    assert!(snap.counter("global", "sched.ring_pushes") > 0);
    // The Centroid center runs an incremental engine whose registered
    // join indexes must have been exercised.
    let idx = snap.counter("global", "join.index.hits")
        + snap.counter("global", "join.index.builds")
        + snap.counter("global", "join.index.scans");
    assert!(idx > 0, "no index activity recorded");
}

#[test]
fn geometric_topology_banded_pa() {
    let topo = Topology::random_geometric(25, 4.5, 1.8, 13).unwrap();
    let mut d = Deployment::new(
        JOIN2,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.8 }),
    )
    .unwrap();
    let events = vec![
        ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(200, 20, "r2", "r2(2, 7)", UpdateKind::Insert),
        ev(400, 11, "r1", "r1(3, 8)", UpdateKind::Insert),
    ];
    d.schedule_all(events.clone());
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
}

#[test]
fn fig16_seed_geometric_completeness_is_exact() {
    // Regression for the Fig. 16 completeness gap (0.95 at 50 nodes): a
    // plain vertical band could miss a storage band entirely, so the pair
    // never met. The detour rule in `netstack::regions::join_region` must
    // close the gap — completeness exactly 1.0 on the shipped Fig. 16
    // seed and workload, not merely "close".
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = 50usize;
    let topo = Topology::random_geometric(n, 5.5, 1.7, 97).unwrap();
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.7 },
            tau_s: 4_000,
            tau_j: 8_000,
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 13,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    // The Fig. 16 workload: one reading per node per stream, selective keys.
    let mut rng = StdRng::seed_from_u64(29 + n as u64);
    let mut events = Vec::new();
    let groups = (topo.len() as u32).max(2);
    let mut value = 0i64;
    for node in topo.nodes() {
        for pred in ["r1", "r2"] {
            value += 1;
            events.push(WorkloadEvent {
                at: 500 + rng.gen_range(0..10_000),
                node,
                pred: sym(pred),
                tuple: Tuple::new(vec![
                    Term::Int(node.0 as i64),
                    Term::Int(value),
                    Term::Int(rng.gen_range(0..groups) as i64),
                ]),
                kind: UpdateKind::Insert,
            });
        }
    }
    events.sort_by_key(|e| e.at);
    d.schedule_all(events.clone());
    d.run(60_000_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(report.expected > 0, "workload must produce join results");
    assert!(
        report.exact(),
        "completeness {} soundness {}: missing {:?} spurious {:?}",
        report.completeness(),
        report.soundness(),
        report.missing,
        report.spurious
    );
}

#[test]
fn function_symbols_travel_the_network() {
    let src = r#"
        .output pair.
        pair(pt(X1, Y1), pt(X2, Y2)) :- obs(X1, Y1, T), obs(X2, Y2, T), X1 < X2.
    "#;
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = vec![
        ev(10, 3, "obs", "obs(1, 10, 5)", UpdateKind::Insert),
        ev(200, 12, "obs", "obs(2, 20, 5)", UpdateKind::Insert),
    ];
    d.schedule_all(events.clone());
    d.run(120_000);
    let report = oracle::check(&d, &events, sym("pair"));
    assert!(report.exact());
    let results = d.results(sym("pair"));
    assert_eq!(results.len(), 1);
    assert!(results
        .iter()
        .next()
        .unwrap()
        .get(0)
        .to_string()
        .starts_with("pt("));
}

#[test]
fn windowed_replicas_expire_and_join_respects_window() {
    // Readings live in a 20 s window: a probe arriving after a partner
    // expired must not join with it, and replicas must leave node memory
    // once their retention passes (Sec. IV-B "Tuple Expiry").
    let src = r#"
        .window r1 20000.
        .window r2 20000.
        .output q.
        q(X, Y) :- r1(X, T), r2(Y, T).
    "#;
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = vec![
        // In-window pair: joins.
        ev(1_000, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(5_000, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
        // Out-of-window pair: r1 generated 50 s before the r2 probe.
        ev(10_000, 2, "r1", "r1(3, 8)", UpdateKind::Insert),
        ev(60_000, 13, "r2", "r2(4, 8)", UpdateKind::Insert),
    ];
    d.schedule_all(events);
    d.run(300_000);
    let results = d.results(sym("q"));
    assert!(
        results.contains(&tuple("x(1, 2)")),
        "in-window join missing"
    );
    assert!(
        !results.contains(&tuple("x(3, 4)")),
        "expired tuple must not join: {results:?}"
    );
    // All replicas eventually expire from node memory.
    let leftover: usize = d.sim.nodes().map(|n| n.replica_count()).sum();
    assert_eq!(leftover, 0, "replicas must be dropped after retention");
}

#[test]
fn multipass_handles_negation() {
    // Negation-pending completes must survive U-turns and only emit at the
    // true end of the traversal.
    let src = r#"
        .output q.
        q(X, Y) :- r1(X, T), r2(Y, T), not veto(Y, T).
    "#;
    let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
    cfg.rt.pass_mode = PassMode::MultiPass;
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events = vec![
        ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(200, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
        ev(400, 7, "r2", "r2(3, 7)", UpdateKind::Insert),
        ev(600, 11, "veto", "veto(3, 7)", UpdateKind::Insert),
    ];
    d.schedule_all(events.clone());
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
    let results = d.results(sym("q"));
    assert!(results.contains(&tuple("x(1, 2)")));
    assert!(!results.contains(&tuple("x(1, 3)")), "vetoed pair leaked");
}

#[test]
fn logich_repairs_tree_after_edge_deletion() {
    // Dynamic topology: on a triangle 0-1, 0-2, 1-2, deleting edge 0-2
    // must move node 2 from depth 1 to depth 2 (via 1) — the retraction
    // cascade plus re-derivation of the XY program in-network.
    let src = r#"
        .output h.
        h(0, 0, 0).
        h(0, X, 1) :- g(0, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;
    // 2x2 grid: nodes 0,1 adjacent; 0,2 adjacent; 1,3; 2,3.
    let topo = Topology::square_grid(2);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    // Graph facts: the full 2x2 link set, injected at incident nodes.
    let mut events = Vec::new();
    let mut at = 100;
    for (a, b) in [
        (0u32, 1u32),
        (1, 0),
        (0, 2),
        (2, 0),
        (1, 3),
        (3, 1),
        (2, 3),
        (3, 2),
    ] {
        events.push(ev(at, a, "g", &format!("g({a}, {b})"), UpdateKind::Insert));
        at += 300;
    }
    // Much later: the 0-2 link dies (both directions).
    events.push(ev(60_000_000, 0, "g", "g(0, 2)", UpdateKind::Delete));
    events.push(ev(60_000_500, 2, "g", "g(2, 0)", UpdateKind::Delete));
    d.schedule_all(events.clone());
    d.run(400_000_000);
    let results = d.results(sym("h"));
    let depths_of = |v: i64| -> Vec<i64> {
        results
            .iter()
            .filter(|t| t.get(1) == Term::Int(v))
            .map(|t| t.get(2).as_i64().unwrap())
            .collect()
    };
    // After repair: 0@0, 1@1, 2 now reachable only via 3: 0-1-3-2 => depth 3.
    assert_eq!(depths_of(0), vec![0]);
    assert_eq!(depths_of(1), vec![1]);
    assert_eq!(depths_of(3), vec![2]);
    assert_eq!(
        depths_of(2),
        vec![3],
        "node 2 must re-home via 3: {results:?}"
    );
}

#[test]
fn failure_preserves_soundness() {
    // Killing a node mid-run must never fabricate results.
    let topo = Topology::square_grid(5);
    let mut d = Deployment::new(
        JOIN2,
        BuiltinRegistry::standard(),
        topo,
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    let events = join2_events();
    d.schedule_all(events.clone());
    d.run(300);
    d.fail_node(NodeId(12)); // center of the 5x5 grid
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(
        report.spurious.is_empty(),
        "failure fabricated results: {:?}",
        report.spurious
    );
}

#[test]
fn tombstone_before_replica_is_ordered_correctly() {
    // A deletion whose StoreWalk overtakes (or arrives without) the
    // insert's replica must still suppress joins at probes later than the
    // deletion timestamp. Drive it by deleting immediately after inserting,
    // with jittery delays.
    let mut cfg = config_with(Strategy::Perpendicular { band_width: 1.0 });
    cfg.sim.hop_delay = (1, 120); // heavy jitter: walks interleave
    cfg.sim.seed = 77;
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(JOIN2, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events = vec![
        ev(10, 1, "r1", "r1(1, 7)", UpdateKind::Insert),
        ev(12, 1, "r1", "r1(1, 7)", UpdateKind::Delete), // near-simultaneous
        ev(30_000, 14, "r2", "r2(2, 7)", UpdateKind::Insert),
    ];
    d.schedule_all(events.clone());
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
    assert_eq!(report.expected, 0, "deleted tuple must not join later");
}

#[test]
fn stage_hints_flow_to_distributed_compiler() {
    // Pin the stage positions explicitly; the XY pipeline must behave the
    // same as with auto-detection.
    let src = r#"
        .stage j 1.
        .stage jp 1.
        .output j.
        j(0, 0).
        j(X, 1) :- g(0, X).
        jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
        j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
    "#;
    let topo = Topology::square_grid(3);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo.clone(),
        config_with(Strategy::Perpendicular { band_width: 1.0 }),
    )
    .unwrap();
    d.schedule_all(graph_edges(&topo, 100, 300));
    d.run(200_000_000);
    let results = d.results(sym("j"));
    for node in topo.nodes() {
        let (x, y) = topo.grid_coords(node).unwrap();
        let want = (x + y) as i64;
        let got: Vec<i64> = results
            .iter()
            .filter(|t| t.get(0) == Term::Int(node.0 as i64))
            .map(|t| t.get(1).as_i64().unwrap())
            .collect();
        assert!(got.iter().all(|&d| d == want) && !got.is_empty());
    }
}

#[test]
fn centroid_under_loss_stays_sound() {
    let mut cfg = config_with(Strategy::Centroid);
    cfg.sim.loss_prob = 0.15;
    cfg.sim.seed = 8;
    let topo = Topology::square_grid(5);
    let mut d = Deployment::new(JOIN2, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events = join2_events();
    d.schedule_all(events.clone());
    d.run(200_000);
    let report = oracle::check(&d, &events, sym("q"));
    assert!(
        report.spurious.is_empty(),
        "loss fabricated: {:?}",
        report.spurious
    );
}
