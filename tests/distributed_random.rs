//! Randomized distributed-vs-oracle checks: small deployments with random
//! workloads across strategies and seeds must converge exactly (loss-free).
//! Seeds are fixed for determinism; each case is a full simulated network.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog::core::workload::UniformStreams;
use sensorlog::prelude::*;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

const JOIN3: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

const NEG: &str = r#"
    .output alert.
    cov(V, K)   :- sight(N1, V, K), supp(N2, S, K).
    alert(V, K) :- not cov(V, K), sight(N1, V, K).
"#;

fn run_one(src: &str, output: &str, strategy: Strategy, seed: u64, with_deletes: bool) {
    let topo = Topology::square_grid(4);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed,
            ..SimConfig::default()
        },
        provenance: Provenance::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let preds: Vec<Symbol> = if src == JOIN3 {
        vec![sym("r1"), sym("r2")]
    } else {
        vec![sym("sight"), sym("supp")]
    };
    let events = UniformStreams {
        preds,
        interval: 10_000,
        duration: 20_000,
        delete_fraction: if with_deletes { 0.3 } else { 0.0 },
        delete_lag: 25_000,
        groups: 6,
        seed: seed * 3 + 1,
    }
    .events(&topo);
    d.schedule_all(events.clone());
    d.run(60_000_000);
    let report = oracle::check(&d, &events, sym(output));
    assert!(
        report.exact(),
        "{} seed {seed} deletes {with_deletes}: missing {:?} spurious {:?}",
        strategy.name(),
        report.missing,
        report.spurious
    );
    // Every oracle-expected result must also carry a well-founded proof in
    // the provenance DAG (leaves = live EDB facts), and nothing the
    // network holds may be DAG-unsupported.
    let prov = check_provenance(&d, &[sym(output)]);
    assert!(
        prov.ok(),
        "{} seed {seed} deletes {with_deletes}: provenance violations {:?}",
        strategy.name(),
        prov.violations
    );
}

#[test]
fn random_join_workloads_all_strategies() {
    for seed in [1u64, 2, 3] {
        for strategy in [
            Strategy::Perpendicular { band_width: 1.0 },
            Strategy::NaiveBroadcast,
            Strategy::LocalStorage,
            Strategy::Centroid,
        ] {
            run_one(JOIN3, "q", strategy, seed, false);
        }
    }
}

#[test]
fn random_join_with_deletes_pa() {
    for seed in [4u64, 5, 6, 7] {
        run_one(
            JOIN3,
            "q",
            Strategy::Perpendicular { band_width: 1.0 },
            seed,
            true,
        );
    }
}

#[test]
fn random_negation_with_deletes() {
    for seed in [8u64, 9, 10] {
        for strategy in [
            Strategy::Perpendicular { band_width: 1.0 },
            Strategy::Centroid,
        ] {
            run_one(NEG, "alert", strategy, seed, true);
        }
    }
}

#[test]
fn random_event_storms_same_instant() {
    // Many updates at the *same* millisecond stress the timestamp
    // tie-breaking (Definition 2 ID ordering).
    for seed in [11u64, 12] {
        let topo = Topology::square_grid(4);
        let mut d = Deployment::new(
            JOIN3,
            BuiltinRegistry::standard(),
            topo.clone(),
            DeployConfig::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for burst in 0..3u64 {
            let at = 1_000 + burst * 20_000;
            for _ in 0..10 {
                let node = NodeId(rng.gen_range(0..16));
                let pred = if rng.gen() { sym("r1") } else { sym("r2") };
                let tuple = Tuple::new(vec![
                    Term::Int(node.0 as i64),
                    Term::Int(rng.gen_range(0..1000)),
                    Term::Int(rng.gen_range(0..4)),
                ]);
                events.push(WorkloadEvent {
                    at,
                    node,
                    pred,
                    tuple,
                    kind: UpdateKind::Insert,
                });
            }
        }
        d.schedule_all(events.clone());
        d.run(60_000_000);
        let report = oracle::check(&d, &events, sym("q"));
        assert!(report.expected > 0, "storm must produce joins");
        assert!(
            report.exact(),
            "seed {seed}: missing {:?} spurious {:?}",
            report.missing,
            report.spurious
        );
    }
}

#[test]
fn clock_skew_and_jitter_randomized() {
    for seed in [13u64, 14] {
        let topo = Topology::square_grid(4);
        let cfg = DeployConfig {
            sim: SimConfig {
                seed,
                clock_skew_max: 40,
                hop_delay: (5, 60),
                ..SimConfig::default()
            },
            rt: RtConfig {
                tau_c: 40,
                ..RtConfig::default()
            },
            ..DeployConfig::default()
        };
        let mut d = Deployment::new(NEG, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
        let events = UniformStreams {
            preds: vec![sym("sight"), sym("supp")],
            interval: 12_000,
            duration: 24_000,
            delete_fraction: 0.25,
            delete_lag: 30_000,
            groups: 5,
            seed,
        }
        .events(&topo);
        d.schedule_all(events.clone());
        d.run(120_000_000);
        let report = oracle::check(&d, &events, sym("alert"));
        assert!(
            report.exact(),
            "seed {seed}: missing {:?} spurious {:?}",
            report.missing,
            report.spurious
        );
    }
}
