//! Abstract syntax of deductive programs.
//!
//! A program is a set of rules `H :- G1, …, Gk.` where subgoals may be
//! positive atoms, negated atoms, comparisons over arithmetic terms, or
//! procedural built-in predicates (Sec. II-B). Heads may carry one aggregate
//! argument (`min<D>` etc.), the restricted aggregation form the paper
//! allows.

use crate::span::RuleSpans;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A predicate applied to argument terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    pub pred: Symbol,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Symbol::intern(pred),
            args,
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    pub fn vars(&self) -> Vec<Symbol> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable between arithmetic terms.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    pub fn symbol_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// A body subgoal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// Positive relational subgoal.
    Pos(Atom),
    /// Negated relational subgoal (`not p(…)`).
    Neg(Atom),
    /// Comparison between two (possibly arithmetic) terms. `Eq` with one
    /// side an unbound variable acts as an assignment.
    Cmp(CmpOp, Term, Term),
    /// Procedural built-in predicate (e.g. `close(R1, R2)`), resolved
    /// against the builtin registry during validation.
    Builtin(Atom),
}

impl Literal {
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) | Literal::Builtin(a) => Some(a),
            Literal::Cmp(..) => None,
        }
    }

    pub fn is_positive_rel(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) | Literal::Builtin(a) => a.collect_vars(out),
            Literal::Cmp(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(op, l, r) => write!(f, "{l} {} {r}", op.symbol_str()),
            Literal::Builtin(a) => write!(f, "{a}"),
        }
    }
}

/// Aggregate functions available in rule heads.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    pub fn from_name(s: &str) -> Option<AggFunc> {
        Some(match s {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// Head aggregate: head position `pos` carries `func<term>`; remaining head
/// arguments are the group-by key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AggSpec {
    pub func: AggFunc,
    pub pos: usize,
    pub term: Term,
}

/// A single deductive rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Stable id within the program; derivations record it (Definition 2:
    /// "we also include in the derivation the ID of the rule").
    pub id: usize,
    pub head: Atom,
    pub body: Vec<Literal>,
    pub agg: Option<AggSpec>,
    /// Source spans (metadata only — never part of equality; see
    /// [`crate::span`]). Default for synthetic rules.
    pub spans: RuleSpans,
}

impl Rule {
    /// Positive relational subgoals, in body order.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// Negated relational subgoals, in body order.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// Variables of the head, including the aggregate argument.
    pub fn head_vars(&self) -> Vec<Symbol> {
        let mut v = Vec::new();
        self.head.collect_vars(&mut v);
        if let Some(agg) = &self.agg {
            agg.term.collect_vars(&mut v);
        }
        v
    }

    /// True if any subgoal is negated.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Neg(_)))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(agg) = &self.agg {
            write!(f, "{}(", self.head.pred)?;
            let mut idx = 0;
            let total = self.head.args.len() + 1;
            for pos in 0..total {
                if pos > 0 {
                    write!(f, ", ")?;
                }
                if pos == agg.pos {
                    write!(f, "{}<{}>", agg.func.name(), agg.term)?;
                } else {
                    write!(f, "{}", self.head.args[idx])?;
                    idx += 1;
                }
            }
            write!(f, ")")?;
        } else {
            write!(f, "{}", self.head)?;
        }
        if self.body.is_empty() {
            return write!(f, ".");
        }
        write!(f, " :- ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A parsed program plus its declarations.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub rules: Vec<Rule>,
    /// Sliding-window range per stream predicate, in simulated milliseconds
    /// (`.window pred N.` directive; Sec. II-B "Specification and
    /// Maintenance of Sliding Windows"). Absent ⇒ unbounded stream.
    pub windows: BTreeMap<Symbol, u64>,
    /// Query predicates of interest (`.output pred.`).
    pub outputs: Vec<Symbol>,
    /// Explicitly declared base (extensional) predicates (`.base pred.`).
    /// Predicates never appearing in a head are base implicitly.
    pub declared_base: BTreeSet<Symbol>,
    /// Optional hint for the XY stage argument (`.stage pred N.`,
    /// zero-indexed). Auto-detection searches all positions otherwise.
    pub stage_hints: BTreeMap<Symbol, usize>,
    /// Declared retraction hold-down per derived predicate in simulated
    /// milliseconds (`.holddown pred N.`); overrides the planner default.
    pub holddowns: BTreeMap<Symbol, u64>,
}

impl Program {
    /// Predicates appearing in some rule head (intensional predicates).
    pub fn idb_preds(&self) -> BTreeSet<Symbol> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// Base predicates: declared base plus body predicates never derived.
    pub fn edb_preds(&self) -> BTreeSet<Symbol> {
        let idb = self.idb_preds();
        let mut edb = self.declared_base.clone();
        for r in &self.rules {
            for lit in &r.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    if !idb.contains(&a.pred) {
                        edb.insert(a.pred);
                    }
                }
            }
        }
        edb
    }

    /// All predicates mentioned anywhere.
    pub fn all_preds(&self) -> BTreeSet<Symbol> {
        let mut s = self.idb_preds();
        s.extend(self.edb_preds());
        s
    }

    /// Rules whose head is `pred`.
    pub fn rules_for(&self, pred: Symbol) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.pred == pred)
    }

    /// Arity of a predicate as used in the program (first occurrence wins);
    /// `None` if the predicate never appears.
    pub fn arity_of(&self, pred: Symbol) -> Option<usize> {
        for r in &self.rules {
            if r.head.pred == pred {
                return Some(r.head.args.len() + usize::from(r.agg.is_some()));
            }
            for lit in &r.body {
                if let Some(a) = lit.atom() {
                    if a.pred == pred {
                        return Some(a.args.len());
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, w) in &self.windows {
            writeln!(f, ".window {p} {w}.")?;
        }
        for p in &self.outputs {
            writeln!(f, ".output {p}.")?;
        }
        for p in &self.declared_base {
            writeln!(f, ".base {p}.")?;
        }
        for (p, i) in &self.stage_hints {
            writeln!(f, ".stage {p} {i}.")?;
        }
        for (p, h) in &self.holddowns {
            writeln!(f, ".holddown {p} {h}.")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, args: Vec<Term>) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn rule_display_roundtrips_visually() {
        let r = Rule {
            id: 0,
            head: atom("cov", vec![Term::var("L"), Term::var("T")]),
            body: vec![
                Literal::Pos(atom(
                    "veh",
                    vec![Term::str("enemy"), Term::var("L"), Term::var("T")],
                )),
                Literal::Cmp(
                    CmpOp::Le,
                    Term::app("dist", vec![Term::var("L"), Term::var("L2")]),
                    Term::Int(50),
                ),
            ],
            agg: None,
            spans: RuleSpans::default(),
        };
        let s = r.to_string();
        assert!(s.contains("cov(L, T) :- "));
        assert!(s.contains("dist(L, L2) <= 50"));
    }

    #[test]
    fn agg_head_display() {
        let r = Rule {
            id: 0,
            head: atom("short", vec![Term::var("Y")]),
            body: vec![Literal::Pos(atom(
                "path",
                vec![Term::var("Y"), Term::var("D")],
            ))],
            agg: Some(AggSpec {
                func: AggFunc::Min,
                pos: 1,
                term: Term::var("D"),
            }),
            spans: RuleSpans::default(),
        };
        assert_eq!(r.to_string(), "short(Y, min<D>) :- path(Y, D).");
    }

    #[test]
    fn edb_idb_partition() {
        let mut p = Program::default();
        p.rules.push(Rule {
            id: 0,
            head: atom("cov", vec![Term::var("L")]),
            body: vec![Literal::Pos(atom("veh", vec![Term::var("L")]))],
            agg: None,
            spans: RuleSpans::default(),
        });
        assert!(p.idb_preds().contains(&Symbol::intern("cov")));
        assert!(p.edb_preds().contains(&Symbol::intern("veh")));
        assert!(!p.edb_preds().contains(&Symbol::intern("cov")));
        assert_eq!(p.arity_of(Symbol::intern("cov")), Some(1));
        assert_eq!(p.arity_of(Symbol::intern("missing")), None);
    }

    #[test]
    fn head_vars_include_agg_term() {
        let r = Rule {
            id: 0,
            head: atom("q", vec![Term::var("G")]),
            body: vec![],
            agg: Some(AggSpec {
                func: AggFunc::Sum,
                pos: 1,
                term: Term::var("V"),
            }),
            spans: RuleSpans::default(),
        };
        let vs = r.head_vars();
        assert!(vs.contains(&Symbol::intern("G")));
        assert!(vs.contains(&Symbol::intern("V")));
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }
}
