//! Provenance-plane overhead sweep, exported as `BENCH_prov.json`.
//!
//! ```text
//! prov [--quick] [--out BENCH_prov.json]
//! ```
//!
//! One loss-free logicH deployment (the Example 3 shortest-path tree) run
//! twice — provenance disabled, then enabled — on the same seed. The two
//! journals must be byte-identical (the pure-observer contract of
//! `tests/trace_stability.rs`, enforced here as a process exit code), so
//! the delta between the runs is exactly what the recording plane costs:
//!
//! * **wall overhead** — enabled wall time over disabled wall time;
//! * **record volume** — raw records captured, JSONL bytes, and both
//!   normalized per derived result tuple;
//! * **query cost** — materializing the [`ProvDag`] and answering one
//!   `why` over the largest run, timed separately (paid only on query,
//!   never during the run).
//!
//! The enabled run must also *prove* a sampled derived tuple end-to-end
//! (DAG build → `why` → non-empty critical path), so the smoke doubles as
//! an explain regression. `--quick` shrinks the grid to 50 nodes for CI;
//! the committed `BENCH_prov.json` comes from the full 200-node run.

use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::prov::{to_jsonl, Provenance};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};
use sensorlog_provenance::{critical_path, ProvDag};
use std::process::ExitCode;
use std::time::Instant;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

struct Run {
    wall_s: f64,
    hash: u64,
    journal_records: usize,
    results: usize,
    prov_records: usize,
    prov_bytes: usize,
    records_log: Vec<sensorlog_core::ProvRecord>,
}

fn run_case(cols: u32, rows: u32, horizon: u64, enabled: bool) -> Run {
    let topo = Topology::grid(cols, rows);
    let provenance = if enabled {
        Provenance::enabled()
    } else {
        Provenance::disabled()
    };
    // Loss-free: a lossy tree only partially converges, which would make
    // the per-result normalization meaningless. The pure-observer journal
    // identity below holds at any loss rate regardless.
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 17,
            ..SimConfig::default()
        },
        provenance,
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg)
        .expect("bench program compiles");
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 200));
    let t0 = Instant::now();
    d.run(horizon);
    let wall_s = t0.elapsed().as_secs_f64();
    let j = journal.take();
    let results = d.results(Symbol::intern("h")).len();
    let records_log = d.provenance_records();
    let prov_bytes = if records_log.is_empty() {
        0
    } else {
        to_jsonl(&records_log).len()
    };
    Run {
        wall_s,
        hash: j.content_hash(),
        journal_records: j.records.len(),
        results,
        prov_records: records_log.len(),
        prov_bytes,
        records_log,
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_prov.json".into());

    // 50 nodes quick (the CI smoke), 98 nodes full (the committed
    // artifact). Loss-free logicH convergence cost grows superlinearly
    // with grid depth (hp churn at every tree level), so the full grid
    // stays modest to keep the artifact reproducible in minutes.
    let (cols, rows): (u32, u32) = if quick { (10, 5) } else { (14, 7) };
    let horizon = 2_000_000u64;

    let off = run_case(cols, rows, horizon, false);
    eprintln!(
        "prov off: wall {:.2}s, {} journal records, {} results",
        off.wall_s, off.journal_records, off.results
    );
    let on = run_case(cols, rows, horizon, true);
    eprintln!(
        "prov on:  wall {:.2}s, {} prov records ({} bytes)",
        on.wall_s, on.prov_records, on.prov_bytes
    );

    if on.hash != off.hash || on.journal_records != off.journal_records {
        eprintln!(
            "prov: enabled run perturbed the journal \
             ({} records, hash {:016x} vs {} / {:016x}) — the plane is \
             supposed to be a pure observer",
            on.journal_records, on.hash, off.journal_records, off.hash
        );
        return ExitCode::FAILURE;
    }
    if off.prov_records != 0 {
        eprintln!("prov: disabled plane captured {} records", off.prov_records);
        return ExitCode::FAILURE;
    }
    if on.prov_records == 0 || on.results == 0 {
        eprintln!("prov: enabled run captured nothing to measure");
        return ExitCode::FAILURE;
    }

    // Query cost + explain regression: build the DAG, prove one derived
    // tuple, and require a causally ordered critical path.
    let t0 = Instant::now();
    let dag = ProvDag::build(&on.records_log);
    let build_s = t0.elapsed().as_secs_f64();
    let h = Symbol::intern("h");
    let tuples = dag.live_tuples(h);
    let Some(sample) = tuples.last().map(|t| (*t).clone()) else {
        eprintln!("prov: no live h tuple in the DAG");
        return ExitCode::FAILURE;
    };
    let t0 = Instant::now();
    let Some(proof) = dag.why(h, &sample) else {
        eprintln!("prov: live tuple h{sample} has no proof");
        return ExitCode::FAILURE;
    };
    let why_s = t0.elapsed().as_secs_f64();
    let path = critical_path(&proof);
    if path.is_empty() || path.windows(2).any(|w| w[0].finish_at > w[1].finish_at) {
        eprintln!("prov: critical path of h{sample} is not causally ordered");
        return ExitCode::FAILURE;
    }

    let overhead = if off.wall_s > 0.0 {
        on.wall_s / off.wall_s
    } else {
        1.0
    };
    let per_result = on.prov_records as f64 / on.results as f64;
    let bytes_per_result = on.prov_bytes as f64 / on.results as f64;

    // Hand-rolled JSON — stable field order, no external deps.
    let s = format!(
        "{{\n  \"bench\": \"prov\",\n  \"quick\": {quick},\n  \
         \"nodes\": {},\n  \"grid\": [{cols}, {rows}],\n  \"horizon_ms\": {horizon},\n  \
         \"journal\": {{\"records\": {}, \"hash\": \"{:016x}\", \"identical_off_vs_on\": true}},\n  \
         \"off\": {{\"wall_s\": {:.3}}},\n  \
         \"on\": {{\"wall_s\": {:.3}, \"prov_records\": {}, \"prov_jsonl_bytes\": {}}},\n  \
         \"results\": {},\n  \
         \"records_per_result\": {per_result:.1},\n  \
         \"bytes_per_result\": {bytes_per_result:.1},\n  \
         \"wall_overhead\": {overhead:.3},\n  \
         \"dag_build_s\": {build_s:.3},\n  \
         \"why_s\": {why_s:.4},\n  \
         \"sampled_proof\": {{\"tuple\": \"h{}\", \"depth\": {}, \"critical_steps\": {}}}\n}}\n",
        cols as u64 * rows as u64,
        off.journal_records,
        off.hash,
        off.wall_s,
        on.wall_s,
        on.prov_records,
        on.prov_bytes,
        on.results,
        sample,
        proof_depth(&proof),
        path.len()
    );
    if let Err(e) = std::fs::write(&out_path, &s) {
        eprintln!("prov: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "prov OK: {} records ({:.1}/result, {:.0} B/result), wall x{overhead:.2}, \
         proof depth {} -> {out_path}",
        on.prov_records,
        per_result,
        bytes_per_result,
        proof_depth(&proof)
    );
    ExitCode::SUCCESS
}

fn proof_depth(p: &sensorlog_provenance::ProofNode) -> usize {
    1 + p
        .premises
        .iter()
        .map(|e| proof_depth(&e.premise))
        .max()
        .unwrap_or(0)
}
