//! Per-node durable storage for crash–recovery.
//!
//! A sensor node's volatile state (replicas, owned derivations, in-flight
//! probes) is rebuilt by the network after a restart; what cannot be
//! rebuilt is the node's *own* base facts — nobody else knows what this
//! node sensed. [`DurableStore`] models the node's flash log: every
//! generate/retract of a local fact is appended to a journal tail, and the
//! tail is periodically folded into a checkpoint (the live-fact map) so
//! recovery replays a bounded suffix instead of the whole history.
//!
//! Recovery ([`DurableStore::recover`]) returns the fold of checkpoint +
//! tail: the facts that were live at crash time (with their ORIGINAL
//! tuple ids, so re-announcement is idempotent at replicas and owners), a
//! bounded window of recent deletions (so tombstones a dying node failed
//! to finish propagating get re-sent), and the sequence-number high-water
//! mark (so the new incarnation never re-mints an id the old one used).
//!
//! The store is deliberately tiny and single-purpose: it is *not* a
//! database, just the minimal durable substrate Theorem 3's retraction
//! semantics need to survive a crash.

use crate::tupleid::{FactRecord, TupleId};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::{Symbol, Tuple};
use std::collections::HashMap;

/// Most recent deletions retained for replay at recovery. A restarted
/// node re-propagates these tombstones; anything older has long since
/// finished its delete walk (bounded by τs + τj).
const RECENT_DELETES_CAP: usize = 64;

/// One journaled operation on the node's own facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableOp {
    pub pred: Symbol,
    pub tuple: Tuple,
    pub id: TupleId,
    pub kind: UpdateKind,
    /// Deletion timestamp (deletes only; inserts carry it as `id.ts`).
    pub tau: u64,
}

/// What `recover()` hands the new incarnation.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Facts live at crash time, with their original ids.
    pub facts: Vec<(Symbol, Tuple, TupleId)>,
    /// Recent deletions whose tombstone propagation may have been cut
    /// short by the crash.
    pub recent_deletes: Vec<FactRecord>,
    /// Sequence high-water mark: the new incarnation starts above it.
    pub next_seq: u32,
    /// How many times this store has been recovered (0 on first boot).
    pub boots: u32,
}

/// Checkpoint + journal-tail durable store for one node.
#[derive(Debug, Default)]
pub struct DurableStore {
    /// Folded checkpoint: live facts as of the last fold.
    checkpoint: HashMap<(Symbol, Tuple), TupleId>,
    /// Operations since the last fold, in order.
    tail: Vec<DurableOp>,
    /// Fold the tail into the checkpoint once it reaches this length.
    checkpoint_every: usize,
    /// Ring of recent deletions (newest last), capped.
    recent_deletes: Vec<FactRecord>,
    /// Highest sequence number ever logged.
    seq_high_water: u32,
    /// Completed recoveries.
    boots: u32,
}

impl DurableStore {
    pub fn new(checkpoint_every: usize) -> DurableStore {
        DurableStore {
            checkpoint_every: checkpoint_every.max(1),
            ..DurableStore::default()
        }
    }

    /// Log a locally generated fact.
    pub fn log_insert(&mut self, pred: Symbol, tuple: Tuple, id: TupleId) {
        self.seq_high_water = self.seq_high_water.max(id.seq.saturating_add(1));
        self.tail.push(DurableOp {
            pred,
            tuple,
            id,
            kind: UpdateKind::Insert,
            tau: id.ts,
        });
        self.maybe_fold();
    }

    /// Log a retraction of a locally generated fact.
    pub fn log_delete(&mut self, pred: Symbol, tuple: Tuple, id: TupleId, tau: u64) {
        self.tail.push(DurableOp {
            pred,
            tuple: tuple.clone(),
            id,
            kind: UpdateKind::Delete,
            tau,
        });
        if self.recent_deletes.len() == RECENT_DELETES_CAP {
            self.recent_deletes.remove(0);
        }
        self.recent_deletes
            .push(FactRecord::delete(pred, tuple, id, tau));
        self.maybe_fold();
    }

    /// Record that a sequence number was consumed (ids minted for derived
    /// tuples at owners, not just base facts).
    pub fn note_seq(&mut self, seq: u32) {
        self.seq_high_water = self.seq_high_water.max(seq.saturating_add(1));
    }

    fn maybe_fold(&mut self) {
        if self.tail.len() >= self.checkpoint_every {
            for op in self.tail.drain(..) {
                match op.kind {
                    UpdateKind::Insert => {
                        self.checkpoint.insert((op.pred, op.tuple), op.id);
                    }
                    UpdateKind::Delete => {
                        self.checkpoint.remove(&(op.pred, op.tuple));
                    }
                }
            }
        }
    }

    /// Fold checkpoint + tail into the live-fact view without consuming
    /// anything (what a crash at this instant would recover).
    fn fold(&self) -> HashMap<(Symbol, Tuple), TupleId> {
        let mut live = self.checkpoint.clone();
        for op in &self.tail {
            match op.kind {
                UpdateKind::Insert => {
                    live.insert((op.pred, op.tuple.clone()), op.id);
                }
                UpdateKind::Delete => {
                    live.remove(&(op.pred, op.tuple.clone()));
                }
            }
        }
        live
    }

    /// Recover after a crash: returns the live facts (sorted for
    /// determinism), the recent-deletion window, and the seq high-water.
    /// Bumps the boot counter.
    pub fn recover(&mut self) -> Recovered {
        self.boots += 1;
        let mut facts: Vec<(Symbol, Tuple, TupleId)> = self
            .fold()
            .into_iter()
            .map(|((p, t), id)| (p, t, id))
            .collect();
        facts.sort();
        Recovered {
            facts,
            recent_deletes: self.recent_deletes.clone(),
            next_seq: self.seq_high_water,
            boots: self.boots,
        }
    }

    /// Completed recoveries so far (0 = this node never crashed).
    pub fn boots(&self) -> u32 {
        self.boots
    }

    /// The retained window of recent deletions (oldest first), for
    /// source-driven tombstone refresh.
    pub fn recent_deletes(&self) -> &[FactRecord] {
        &self.recent_deletes
    }

    /// Journal-tail length (ops since the last checkpoint fold).
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;
    use sensorlog_netsim::NodeId;

    fn id(ts: u64, seq: u32) -> TupleId {
        TupleId {
            node: NodeId(3),
            ts,
            seq,
        }
    }

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Term::Int(v)])
    }

    #[test]
    fn recover_folds_checkpoint_and_tail() {
        let p = Symbol::intern("s");
        let mut d = DurableStore::new(2); // fold every 2 ops
        d.log_insert(p, tup(1), id(10, 0));
        d.log_insert(p, tup(2), id(20, 1)); // fold happens here
        d.log_delete(p, tup(1), id(10, 0), 30);
        d.log_insert(p, tup(3), id(40, 2));
        let r = d.recover();
        let live: Vec<i64> = r
            .facts
            .iter()
            .map(|(_, t, _)| match t.get(0) {
                Term::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(live, vec![2, 3]);
        assert_eq!(r.next_seq, 3);
        assert_eq!(r.boots, 1);
        assert_eq!(r.recent_deletes.len(), 1);
        assert_eq!(r.recent_deletes[0].id, id(10, 0));
        // Original ids survive the fold.
        assert!(r.facts.iter().any(|&(_, _, i)| i == id(40, 2)));
    }

    #[test]
    fn recent_deletes_are_capped() {
        let p = Symbol::intern("s");
        let mut d = DurableStore::new(1_000);
        for i in 0..(RECENT_DELETES_CAP as i64 + 10) {
            d.log_insert(p, tup(i), id(i as u64, i as u32));
            d.log_delete(p, tup(i), id(i as u64, i as u32), i as u64 + 1);
        }
        let r = d.recover();
        assert_eq!(r.recent_deletes.len(), RECENT_DELETES_CAP);
        assert!(r.facts.is_empty());
        // The cap drops the *oldest* deletes.
        assert_eq!(
            r.recent_deletes.last().unwrap().tau,
            RECENT_DELETES_CAP as u64 + 10
        );
    }

    #[test]
    fn seq_high_water_survives_checkpointing() {
        let p = Symbol::intern("s");
        let mut d = DurableStore::new(1);
        d.log_insert(p, tup(1), id(5, 7));
        d.note_seq(42);
        let r = d.recover();
        assert_eq!(r.next_seq, 43);
        // A second crash recovers the same facts again.
        let r2 = d.recover();
        assert_eq!(r2.boots, 2);
        assert_eq!(r2.facts, r.facts);
    }
}
