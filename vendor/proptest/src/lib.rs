//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the narrow proptest surface the test-suite uses: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, `prop_oneof!`,
//! ranges, tuples, simple regex string strategies, and
//! `prop::collection::{vec, btree_set}`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking.** A failing case prints its inputs; minimize by hand or
//!   by pinning the printed values in a named regression test (the repo
//!   convention anyway — see `tests/properties.rs`).
//! * **No persistence.** `*.proptest-regressions` files are not read; known
//!   regressions are pinned as explicit `#[test]`s instead.
//! * Generation is deterministic per test: the RNG seed is derived from the
//!   test's module path and name, so failures always reproduce.

use std::rc::Rc;

pub use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test seed: FNV-1a over the fully qualified test name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::*;

    /// A generator of values. Unlike real proptest there is no value tree —
    /// `generate` yields a plain value and nothing shrinks.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Recursive strategies: at each of `depth` levels, flip between the
        /// leaf strategy and one application of `recurse`. The `_desired` and
        /// `_expected_branch` hints are accepted for signature compatibility
        /// and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let rec = recurse(strat).boxed();
                let l = leaf.clone();
                strat = BoxedStrategy {
                    gen: Rc::new(move |rng: &mut TestRng| {
                        if rng.gen::<bool>() {
                            l.generate(rng)
                        } else {
                            rec.generate(rng)
                        }
                    }),
                };
            }
            strat
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// `&str` regex strategies for the subset actually used in tests:
    /// concatenations of literals and character classes, each optionally
    /// quantified with `{n}` or `{m,n}` (e.g. `"[a-z][a-z0-9_]{0,6}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated character class in pattern"));
            match c {
                ']' => return set,
                '-' if prev.is_some() && chars.peek() != Some(&']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    for v in (lo as u32)..=(hi as u32) {
                        set.push(char::from_u32(v).unwrap());
                    }
                }
                _ => {
                    set.push(c);
                    prev = Some(c);
                }
            }
        }
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad quantifier"),
                hi.trim().parse().expect("bad quantifier"),
            ),
            None => {
                let n = spec.trim().parse().expect("bad quantifier");
                (n, n)
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => panic!(
                    "vendored proptest supports only class/literal/{{m,n}} regexes, got {pattern:?}"
                ),
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..n {
                match &atom {
                    Atom::Class(set) => {
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                    Atom::Literal(l) => out.push(*l),
                }
            }
        }
        out
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::{Rng, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times so a
            // narrow element domain cannot loop forever.
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }
}

/// `any::<T>()` for the handful of `Arbitrary` types the tests use.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
}

/// The `proptest!` test-block macro. Each generated test runs `cases`
/// deterministic iterations; on panic it prints the generated inputs (there
/// is no shrinking) and re-raises.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                $crate::seed_for(test_name),
            );
            for case in 0..config.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let mut desc = String::new();
                $(desc.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg
                ));)+
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {test_name}: case {case}/{} failed with inputs:\n{desc}",
                        config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};

    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0i64..5, 10usize..12);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..5).contains(&a));
            assert!((10..12).contains(&b));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_map_and_collections_compose() {
        let mut rng = TestRng::seed_from_u64(3);
        let s =
            crate::collection::btree_set(prop_oneof![0i64..3, (10i64..13).prop_map(|v| v)], 1..6);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() || set.len() < 6);
            assert!(set
                .iter()
                .all(|&v| (0..3).contains(&v) || (10..13).contains(&v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(v in prop::collection::vec((any::<bool>(), 0i64..4), 1..8)) {
            prop_assert!(!v.is_empty());
            for (_, x) in v {
                prop_assert!((0..4).contains(&x));
            }
        }
    }
}
