//! Tokenizer for the rule language.
//!
//! Comments run from `%` or `//` to end of line. Identifiers starting with a
//! lowercase letter are predicate/function/constant names; identifiers
//! starting with an uppercase letter or `_` are variables (`_` alone is the
//! anonymous variable).

use std::fmt;

#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    Ident(String),
    Var(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Pipe,
    ColonDash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Var(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Pipe => write!(f, "|"),
            Token::ColonDash => write!(f, ":-"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source line (1-based) for diagnostics.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Token,
    pub line: u32,
}

/// Lexical error with line information.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` into a vector ending with `Eof`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! push {
        ($t:expr) => {
            out.push(Spanned { tok: $t, line })
        };
    }

    while i < n {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '%' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(Token::LParen);
                i += 1;
            }
            ')' => {
                push!(Token::RParen);
                i += 1;
            }
            '[' => {
                push!(Token::LBracket);
                i += 1;
            }
            ']' => {
                push!(Token::RBracket);
                i += 1;
            }
            ',' => {
                push!(Token::Comma);
                i += 1;
            }
            '|' => {
                push!(Token::Pipe);
                i += 1;
            }
            '+' => {
                push!(Token::Plus);
                i += 1;
            }
            '-' => {
                push!(Token::Minus);
                i += 1;
            }
            '*' => {
                push!(Token::Star);
                i += 1;
            }
            '/' => {
                push!(Token::Slash);
                i += 1;
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b'-' {
                    push!(Token::ColonDash);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected ':-'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Token::Le);
                    i += 2;
                } else {
                    push!(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Token::Ge);
                    i += 2;
                } else {
                    push!(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Token::EqEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "single '=' is not an operator; use '=='".into(),
                    });
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "expected '!='".into(),
                    });
                }
            }
            '.' => {
                push!(Token::Dot);
                i += 1;
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < n => {
                            let esc = bytes[i + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(LexError {
                                        line,
                                        message: format!("unknown escape '\\{other}'"),
                                    })
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LexError {
                                line: start_line,
                                message: "newline in string literal".into(),
                            });
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                push!(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' only continues the number if followed by a digit
                // ("30." is Int(30) then Dot, the rule terminator).
                let mut is_float = false;
                if i + 1 < n && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal {text}"),
                    })?;
                    push!(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("integer literal out of range: {text}"),
                    })?;
                    push!(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let first = text.chars().next().unwrap();
                if first.is_ascii_uppercase() || first == '_' {
                    push!(Token::Var(text.to_owned()));
                } else {
                    push!(Token::Ident(text.to_owned()));
                }
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_rule_tokens() {
        let t = toks("cov(L, T) :- veh(\"enemy\", L, T).");
        assert_eq!(t[0], Token::Ident("cov".into()));
        assert_eq!(t[1], Token::LParen);
        assert_eq!(t[2], Token::Var("L".into()));
        assert!(t.contains(&Token::ColonDash));
        assert!(t.contains(&Token::Str("enemy".into())));
        assert_eq!(t[t.len() - 2], Token::Dot);
        assert_eq!(t[t.len() - 1], Token::Eof);
    }

    #[test]
    fn numbers_and_dot_disambiguation() {
        // "30." must lex as Int(30), Dot — the rule terminator.
        let t = toks(".window veh 30.");
        assert!(t.contains(&Token::Int(30)));
        assert_eq!(t.iter().filter(|x| **x == Token::Dot).count(), 2);
        let t = toks("x(1.5).");
        assert!(t.contains(&Token::Float(1.5)));
    }

    #[test]
    fn comparison_operators() {
        let t = toks("X <= 5, Y >= 2, Z < 1, W > 0, A == B, C != D");
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Lt));
        assert!(t.contains(&Token::Gt));
        assert!(t.contains(&Token::EqEq));
        assert!(t.contains(&Token::Ne));
    }

    #[test]
    fn comments_skipped() {
        let t = toks("% whole line\nfoo(X). // trailing\nbar(Y).");
        assert_eq!(t.iter().filter(|x| matches!(x, Token::Ident(_))).count(), 2);
    }

    #[test]
    fn primed_variables() {
        // d' style names from the paper are allowed via trailing quote.
        let t = toks("h(D, D')");
        assert!(matches!(&t[4], Token::Var(s) if s == "D'"));
    }

    #[test]
    fn variables_vs_identifiers() {
        let t = toks("foo Bar _baz _");
        assert_eq!(t[0], Token::Ident("foo".into()));
        assert_eq!(t[1], Token::Var("Bar".into()));
        assert_eq!(t[2], Token::Var("_baz".into()));
        assert_eq!(t[3], Token::Var("_".into()));
    }

    #[test]
    fn string_escapes() {
        let t = toks(r#"p("a\nb\"c")"#);
        assert!(t.contains(&Token::Str("a\nb\"c".into())));
    }

    #[test]
    fn errors_reported_with_line() {
        let err = lex("foo(X).\n@").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a = b").is_err());
    }

    #[test]
    fn list_tokens() {
        let t = toks("traj([X | R1, R2])");
        assert!(t.contains(&Token::LBracket));
        assert!(t.contains(&Token::Pipe));
        assert!(t.contains(&Token::RBracket));
    }
}
