//! Program compilation for the distributed runtime (Sec. V: "the user
//! specified logic-program is … translated into appropriate code which
//! represents distributed bottom-up incremental evaluation").
//!
//! The compiled [`DistProgram`] is downloaded into every node: rules with
//! occurrence tables, effective sliding windows, the output set, and the
//! per-predicate finalize-holddown (Sec. IV-C: "we need to wait for an
//! appropriate time before actually finalizing a derived fact (since it may
//! be retracted/deleted later)"). XY components get staggered holddowns
//! following the certified stage-local order, so retractions (`hp`) settle
//! before the tuples they block (`h`) propagate.

use sensorlog_logic::analyze::Analysis;
use sensorlog_logic::ast::Literal;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A body-literal occurrence of some predicate.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OccRef {
    pub rule_idx: usize,
    pub lit_idx: usize,
    pub negated: bool,
}

/// Distributed-compilation error.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Head aggregates are not compiled in-network in this runtime; the
    /// paper routes them to specialized distributed techniques (TAG \[32\],
    /// synopsis diffusion \[23\]) — see `sensorlog_netstack::tag`.
    AggregatesUnsupported {
        rule_id: usize,
    },
    Analyze(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::AggregatesUnsupported { rule_id } => write!(
                f,
                "rule #{rule_id}: aggregates are evaluated via the TAG substrate, not the GPA runtime"
            ),
            CompileError::Analyze(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiled program every node runs.
#[derive(Debug)]
pub struct DistProgram {
    pub analysis: Analysis,
    pub reg: BuiltinRegistry,
    /// Effective sliding windows per predicate (ms); absent = unbounded.
    pub windows: BTreeMap<Symbol, u64>,
    /// pred → body occurrences across all rules.
    pub occurrences: HashMap<Symbol, Vec<OccRef>>,
    /// Derived predicates.
    pub idb: BTreeSet<Symbol>,
    /// Query predicates (`.output`); defaults to all IDB preds if empty.
    pub outputs: Vec<Symbol>,
    /// Per-predicate finalize holddown (ms) applied by owner nodes before
    /// propagating a liveness transition.
    pub holddown: BTreeMap<Symbol, u64>,
    /// Ground facts from empty-body rules, injected at owners at t = 0.
    pub static_facts: Vec<(Symbol, sensorlog_logic::Tuple)>,
}

/// Timing inputs for holddown staggering.
#[derive(Copy, Clone, Debug)]
pub struct PlanTiming {
    /// Base holddown for every derived predicate (ms).
    pub holddown_base: u64,
    /// Additional stagger per stage-local-order step for XY predicates:
    /// roughly τs + τc + τj (one full update round trip).
    pub xy_stagger: u64,
}

impl Default for PlanTiming {
    fn default() -> Self {
        PlanTiming {
            holddown_base: 100,
            xy_stagger: 2_000,
        }
    }
}

/// Compile an analyzed program for distributed execution.
pub fn compile(
    analysis: Analysis,
    reg: BuiltinRegistry,
    timing: PlanTiming,
) -> Result<DistProgram, CompileError> {
    let prog = &analysis.program;
    for r in &prog.rules {
        if r.agg.is_some() {
            return Err(CompileError::AggregatesUnsupported { rule_id: r.id });
        }
    }

    let mut occurrences: HashMap<Symbol, Vec<OccRef>> = HashMap::new();
    let mut static_facts = Vec::new();
    for (rule_idx, r) in prog.rules.iter().enumerate() {
        if r.body.is_empty() {
            // Ground fact rule.
            let ground = r.head.args.iter().all(|t| t.is_ground());
            if ground {
                let terms: Vec<_> = r
                    .head
                    .args
                    .iter()
                    .map(|t| reg.eval_term(t))
                    .collect::<Result<_, _>>()
                    .map_err(|e| CompileError::Analyze(e.to_string()))?;
                static_facts.push((r.head.pred, sensorlog_logic::Tuple::new(terms)));
            }
            continue;
        }
        for (lit_idx, lit) in r.body.iter().enumerate() {
            match lit {
                Literal::Pos(a) => occurrences.entry(a.pred).or_default().push(OccRef {
                    rule_idx,
                    lit_idx,
                    negated: false,
                }),
                Literal::Neg(a) => occurrences.entry(a.pred).or_default().push(OccRef {
                    rule_idx,
                    lit_idx,
                    negated: true,
                }),
                _ => {}
            }
        }
    }

    let windows = sensorlog_eval::effective_windows(&analysis);
    let idb = prog.idb_preds();
    let outputs = if prog.outputs.is_empty() {
        idb.iter().copied().collect()
    } else {
        prog.outputs.clone()
    };

    // Holddowns: base for every derived pred; XY components staggered by
    // stage-local order (later = waits longer, so its retractors land
    // first).
    let mut holddown: BTreeMap<Symbol, u64> = BTreeMap::new();
    for &p in &idb {
        holddown.insert(p, timing.holddown_base);
    }
    for info in &analysis.xy {
        for (i, &p) in info.stage_order.iter().enumerate() {
            holddown.insert(p, timing.holddown_base + i as u64 * timing.xy_stagger);
        }
    }
    // `.holddown` declarations override the computed defaults.
    for (&p, &ms) in &analysis.program.holddowns {
        if idb.contains(&p) {
            holddown.insert(p, ms);
        }
    }

    Ok(DistProgram {
        analysis,
        reg,
        windows,
        occurrences,
        idb,
        outputs,
        holddown,
        static_facts,
    })
}

/// Parse + analyze + compile from source.
pub fn compile_source(
    src: &str,
    reg: BuiltinRegistry,
    timing: PlanTiming,
) -> Result<DistProgram, CompileError> {
    let prog =
        sensorlog_logic::parse_program(src).map_err(|e| CompileError::Analyze(e.to_string()))?;
    let analysis =
        sensorlog_logic::analyze(&prog, &reg).map_err(|e| CompileError::Analyze(e.to_string()))?;
    compile(analysis, reg, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const UNCOV: &str = r#"
        .window veh 60000.
        .output uncov.
        cov(L, T) :- veh("enemy", L, T), veh("friendly", F, T), dist(L, F) <= 5.
        uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
    "#;

    #[test]
    fn compiles_uncov() {
        let p = compile_source(UNCOV, BuiltinRegistry::standard(), PlanTiming::default()).unwrap();
        assert_eq!(p.outputs, vec![sym("uncov")]);
        assert_eq!(p.occurrences[&sym("veh")].len(), 3);
        assert_eq!(p.occurrences[&sym("cov")].len(), 1);
        assert!(p.occurrences[&sym("cov")][0].negated);
        assert_eq!(p.windows[&sym("veh")], 60_000);
        assert_eq!(p.windows[&sym("cov")], 60_000); // inherited
        assert!(p.holddown.contains_key(&sym("cov")));
        assert!(p.static_facts.is_empty());
    }

    #[test]
    fn xy_holddowns_staggered() {
        let src = r#"
            h(0, 0, 0).
            h(0, X, 1) :- g(0, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#;
        let p = compile_source(src, BuiltinRegistry::standard(), PlanTiming::default()).unwrap();
        // h must wait longer than hp (its retractor).
        assert!(p.holddown[&sym("h")] > p.holddown[&sym("hp")]);
        // Static fact h(0,0,0) extracted.
        assert_eq!(p.static_facts.len(), 1);
        assert_eq!(p.static_facts[0].0, sym("h"));
    }

    #[test]
    fn declared_holddown_overrides_default() {
        let src = r#"
            .holddown h 2100.
            h(0, 0, 0).
            h(0, X, 1) :- g(0, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#;
        let p = compile_source(src, BuiltinRegistry::standard(), PlanTiming::default()).unwrap();
        // Declared value wins for h; hp keeps its computed stagger.
        assert_eq!(p.holddown[&sym("h")], 2_100);
        assert_eq!(p.holddown[&sym("hp")], 100);
        // A declaration matching the defaults is behavior-neutral.
        let undeclared = compile_source(
            &src.replace(".holddown h 2100.\n", ""),
            BuiltinRegistry::standard(),
            PlanTiming::default(),
        )
        .unwrap();
        assert_eq!(p.holddown, undeclared.holddown);
    }

    #[test]
    fn rejects_aggregates() {
        let src = "best(min<V>) :- m(V).";
        assert!(matches!(
            compile_source(src, BuiltinRegistry::standard(), PlanTiming::default()),
            Err(CompileError::AggregatesUnsupported { .. })
        ));
    }

    #[test]
    fn outputs_default_to_idb() {
        let p = compile_source(
            "q(X) :- p(X).",
            BuiltinRegistry::standard(),
            PlanTiming::default(),
        )
        .unwrap();
        assert_eq!(p.outputs, vec![sym("q")]);
    }
}
