//! Property tests: trie index maintenance is equivalent to rebuild, and
//! probes equal fresh scans under interleaved insert/delete.
//!
//! After every random batch of inserts and deletes, the contents of a
//! maintained trie (built once, updated through `insert`/`remove`) must
//! equal a trie built from scratch on a fresh clone of the same tuples —
//! same tuples, same canonical order. This is the invariant that lets
//! `Relation::select` serve probes from a long-lived index without ever
//! re-scanning, and the oracle that justifies deleting the per-signature
//! hash-index store.

use proptest::collection::vec;
use proptest::prelude::*;
use sensorlog_eval::relation::{Relation, TupleMeta};
use sensorlog_logic::intern::{self, ConstId};
use sensorlog_logic::{Symbol, Term, Tuple};

fn tup(a: i64, b: i64, c: i64) -> Tuple {
    Tuple::from_ids(vec![
        intern::intern_int(a),
        intern::intern_int(b),
        intern::intern_int(c),
    ])
}

fn id(n: i64) -> ConstId {
    intern::intern_int(n)
}

/// One random mutation: insert (true) or delete (false) of a small tuple.
fn op() -> impl Strategy<Value = (bool, i64, i64, i64)> {
    (any::<bool>(), 0i64..6, 0i64..6, 0i64..6)
}

/// Rebuild-from-scratch reference: clone drops built tries but keeps the
/// registration, so the first probe rebuilds from current tuples only.
fn fresh_contents(r: &Relation, cols: &[usize]) -> Vec<Tuple> {
    let f = r.clone();
    let mut sink = Vec::new();
    // Probe with a key that may or may not exist — the probe forces the
    // build; contents are read back independently of the key.
    let key: Vec<ConstId> = cols.iter().map(|_| id(0)).collect();
    f.select(cols, &key, &mut sink);
    f.index_contents(cols)
        .expect("registered index builds on first probe")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn maintained_trie_equals_fresh_rebuild(batches in vec(vec(op(), 1..20), 1..8)) {
        let mut r = Relation::new();
        r.register_index(&[0]);
        r.register_index(&[1, 2]);
        // Force both tries to exist before any mutation.
        let mut sink = Vec::new();
        r.select(&[0], &[id(0)], &mut sink);
        r.select(&[1, 2], &[id(0), id(0)], &mut sink);

        for batch in &batches {
            for &(ins, a, b, c) in batch {
                if ins {
                    r.insert(tup(a, b, c), TupleMeta::default());
                } else {
                    r.remove(&tup(a, b, c));
                }
            }
            for cols in [&[0usize][..], &[1usize, 2][..]] {
                let maintained = r.index_contents(cols)
                    .expect("maintained trie stays built across mutations");
                let rebuilt = fresh_contents(&r, cols);
                prop_assert_eq!(&maintained, &rebuilt);
            }
            // Canonical order: within any probe (permuted columns fixed),
            // results come back in Tuple order.
            for key in 0i64..6 {
                let mut probed = Vec::new();
                r.select(&[1, 2], &[id(key), id(key)], &mut probed);
                let mut sorted = probed.clone();
                sorted.sort();
                prop_assert_eq!(probed, sorted);
            }
        }
    }

    #[test]
    fn probe_results_match_scan(ops in vec(op(), 0..60), key in 0i64..6) {
        let mut r = Relation::new();
        r.register_index(&[1]);
        for &(ins, a, b, c) in &ops {
            if ins {
                r.insert(tup(a, b, c), TupleMeta::default());
            } else {
                r.remove(&tup(a, b, c));
            }
        }
        let mut probed = Vec::new();
        r.select(&[1], &[id(key)], &mut probed);
        let scanned: Vec<Tuple> = r
            .tuples()
            .filter(|t| t.id(1) == id(key))
            .cloned()
            .collect();
        prop_assert_eq!(probed, scanned, "trie probe must equal filtered scan");
    }

    /// Mixed value sorts (ints, strings, compound terms) and mixed arities
    /// share one trie: probes must still equal fresh scans.
    #[test]
    fn mixed_sort_probe_matches_scan(
        ops in vec((any::<bool>(), 0u8..3, 0i64..4), 0..50),
        kind in 0u8..3,
        key in 0i64..4,
    ) {
        let mk = |kind: u8, v: i64| -> Term {
            match kind {
                0 => Term::Int(v),
                1 => Term::Str(Symbol::intern(&format!("s{v}"))),
                _ => Term::App(Symbol::intern("p"), vec![Term::Int(v)].into()),
            }
        };
        let mut r = Relation::new();
        r.register_index(&[0]);
        for &(ins, k, v) in &ops {
            let t = Tuple::new(vec![mk(k, v), Term::Int(v)]);
            if ins {
                r.insert(t, TupleMeta::default());
            } else {
                r.remove(&t);
            }
        }
        let kt = mk(kind, key);
        let kid = intern::intern_term(&kt).expect("ground key interns");
        let mut probed = Vec::new();
        r.select(&[0], &[kid], &mut probed);
        let scanned: Vec<Tuple> = r
            .tuples()
            .filter(|t| t.id(0) == kid)
            .cloned()
            .collect();
        prop_assert_eq!(probed, scanned);
    }
}
