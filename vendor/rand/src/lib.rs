//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow API surface it actually uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, and `Rng::gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — the same construction real
//! `rand` uses for seeding — so streams are high-quality and fully
//! deterministic for a fixed seed, which is all the simulator needs.
//! It makes no attempt to be statistically identical to upstream `StdRng`
//! (that is ChaCha12); seeds recorded in tests are tied to *this*
//! implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be sampled uniformly with `rng.gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1): 53 random mantissa bits scaled by 2^-53.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `rng.gen_range` accepts. A single generic impl per range
/// shape (rather than one impl per element type) so the literal range type
/// unifies with the expected output type during inference, matching real
/// `rand`'s `gen_range(0..16)` ergonomics.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` or `[lo, hi]` depending on `inclusive`.
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Unbiased integer in `[0, span)` by rejection sampling (Lemire-style
/// threshold would be overkill here; the plain rejection loop terminates
/// in ≤ 2 expected iterations).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f32::sample(rng) * (hi - lo)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the workhorse generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

pub mod rngs {
    /// Drop-in name for `rand::rngs::StdRng` (xoshiro256** underneath).
    pub type StdRng = super::Xoshiro256StarStar;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_interval_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
