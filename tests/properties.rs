//! Property-based tests over the core data structures and engine
//! invariants (proptest).

use proptest::prelude::*;
use proptest::strategy::Strategy;
use sensorlog::prelude::*;
use std::collections::BTreeSet;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

// ---------------------------------------------------------------------
// Term generation
// ---------------------------------------------------------------------

/// Ground terms up to depth 3.
fn ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Term::Int),
        (-100.0f64..100.0).prop_map(Term::float),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::atom(&s)),
        "[a-zA-Z0-9 _]{0,8}".prop_map(|s| Term::str(&s)),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (
                "[a-z][a-z0-9_]{0,4}",
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(f, args)| Term::app(&f, args)),
            prop::collection::vec(inner, 0..4).prop_map(|items| Term::list(items, None)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity on ground terms.
    #[test]
    fn term_display_parse_roundtrip(t in ground_term()) {
        let printed = t.to_string();
        let reparsed = sensorlog::logic::parse_term(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(reparsed, t);
    }

    /// Ground facts survive the fact-parser roundtrip.
    #[test]
    fn fact_roundtrip(args in prop::collection::vec(ground_term(), 1..4)) {
        let tuple = Tuple::new(args);
        let printed = format!("p{tuple}.");
        let (p, parsed) = parse_fact(&printed).unwrap();
        prop_assert_eq!(p, sym("p"));
        prop_assert_eq!(Tuple::new(parsed), tuple);
    }

    /// match_term(pattern, apply(pattern, σ)) succeeds for any ground σ.
    #[test]
    fn match_after_apply(x in ground_term(), y in ground_term()) {
        use sensorlog::logic::unify::{match_term, Subst};
        let pattern = Term::app("f", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let mut s = Subst::new();
        s.bind(sym("X"), x);
        s.bind(sym("Y"), y);
        let value = s.apply(&pattern);
        let mut s2 = Subst::new();
        prop_assert!(match_term(&pattern, &value, &mut s2));
        prop_assert_eq!(s2.get(sym("X")), s.get(sym("X")));
    }
}

// ---------------------------------------------------------------------
// Transitive closure: batch == reference closure == incremental
// ---------------------------------------------------------------------

fn reference_closure(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let mut closure: BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<_> = closure.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(c, d) in &snapshot {
                if b == c && closure.insert((a, d)) {
                    added = true;
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

const TC: &str = r#"
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
"#;

fn tuple2(a: i64, b: i64) -> Tuple {
    Tuple::new(vec![Term::Int(a), Term::Int(b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Semi-naive TC equals the quadratic reference closure.
    #[test]
    fn batch_tc_equals_reference(
        edges in prop::collection::btree_set((0i64..8, 0i64..8), 0..20)
    ) {
        let edges: Vec<(i64, i64)> = edges.into_iter().collect();
        let engine = Engine::from_source(TC, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(a, b) in &edges {
            edb.insert(sym("e"), tuple2(a, b));
        }
        let out = engine.run(&edb).unwrap();
        let got: BTreeSet<(i64, i64)> = out
            .sorted(sym("t"))
            .iter()
            .map(|t| (t.get(0).as_i64().unwrap(), t.get(1).as_i64().unwrap()))
            .collect();
        prop_assert_eq!(got, reference_closure(&edges));
    }

    /// Incremental TC under arbitrary insert/delete interleavings equals
    /// the batch engine on the surviving EDB. Edges are constrained to
    /// a DAG (a < b): the set-of-derivations approach is only exact for
    /// *locally non-recursive* instances (Sec. IV-C) — see
    /// `sod_limitation_on_cyclic_graphs` for the documented failure mode
    /// and the rederivation engine that covers it.
    #[test]
    fn incremental_tc_equals_batch(
        ops in prop::collection::vec((any::<bool>(), 0i64..6, 1i64..6), 1..25)
    ) {
        let mut inc = IncrementalEngine::from_source(TC, BuiltinRegistry::standard()).unwrap();
        let mut live: BTreeSet<(i64, i64)> = BTreeSet::new();
        for (i, &(insert, a, d)) in ops.iter().enumerate() {
            let b = a + d; // DAG: edges always ascend
            let u = if insert {
                live.insert((a, b));
                Update::insert(sym("e"), tuple2(a, b), i as u64)
            } else {
                live.remove(&(a, b));
                Update::delete(sym("e"), tuple2(a, b), i as u64)
            };
            inc.apply(u).unwrap();
        }
        let engine = Engine::from_source(TC, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(a, b) in &live {
            edb.insert(sym("e"), tuple2(a, b));
        }
        let expect = engine.run(&edb).unwrap();
        prop_assert_eq!(inc.db.sorted(sym("t")), expect.sorted(sym("t")));
    }

    /// Incremental maintenance with negation equals batch for arbitrary
    /// insert/delete interleavings (the Theorem 3 claim, centralized).
    #[test]
    fn incremental_negation_equals_batch(
        ops in prop::collection::vec((any::<bool>(), any::<bool>(), 0i64..5, 0i64..3), 1..30)
    ) {
        const PROG: &str = r#"
            cov(V, K)   :- sight(V, K), supp(S, K).
            alert(V, K) :- not cov(V, K), sight(V, K).
        "#;
        let mut inc = IncrementalEngine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut live: BTreeSet<(bool, i64, i64)> = BTreeSet::new();
        for (i, &(insert, is_supp, v, k)) in ops.iter().enumerate() {
            let pred = if is_supp { sym("supp") } else { sym("sight") };
            let u = if insert {
                live.insert((is_supp, v, k));
                Update::insert(pred, tuple2(v, k), i as u64)
            } else {
                live.remove(&(is_supp, v, k));
                Update::delete(pred, tuple2(v, k), i as u64)
            };
            inc.apply(u).unwrap();
        }
        let engine = Engine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(is_supp, v, k) in &live {
            let pred = if is_supp { sym("supp") } else { sym("sight") };
            edb.insert(pred, tuple2(v, k));
        }
        let expect = engine.run(&edb).unwrap();
        prop_assert_eq!(inc.db.sorted(sym("alert")), expect.sorted(sym("alert")));
        prop_assert_eq!(inc.db.sorted(sym("cov")), expect.sorted(sym("cov")));
    }

    /// Relation index lookups agree with linear scans under arbitrary
    /// insert/remove interleavings.
    #[test]
    fn relation_index_consistent(
        ops in prop::collection::vec((any::<bool>(), 0i64..5, 0i64..5), 1..40),
        probe in 0i64..5
    ) {
        use sensorlog::eval::{Database as Db};
        let mut db = Db::new();
        let p = sym("rel_prop");
        for &(insert, a, b) in &ops {
            if insert {
                db.insert(p, tuple2(a, b));
            } else {
                db.remove(p, &tuple2(a, b));
            }
            // Interleave lookups so the index is built mid-sequence.
            let rel = db.relation(p).unwrap();
            let mut via_index = Vec::new();
            rel.select(&[0], &[sensorlog::logic::intern::intern_int(probe)], &mut via_index);
            let mut via_scan: Vec<Tuple> = rel
                .tuples()
                .filter(|t| t.get(0) == Term::Int(probe))
                .cloned()
                .collect();
            via_index.sort();
            via_scan.sort();
            prop_assert_eq!(via_index, via_scan);
        }
    }
}

// ---------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// min ≤ avg ≤ max and count matches distinct values.
    #[test]
    fn aggregate_bounds(values in prop::collection::btree_set(-100i64..100, 1..12)) {
        let engine = Engine::from_source(
            r#"
            lo(min<V>) :- m(V).
            hi(max<V>) :- m(V).
            mean(avg<V>) :- m(V).
            n(count<V>) :- m(V).
            "#,
            BuiltinRegistry::standard(),
        )
        .unwrap();
        let mut edb = Database::new();
        for &v in &values {
            edb.insert(sym("m"), Tuple::new(vec![Term::Int(v)]));
        }
        let out = engine.run(&edb).unwrap();
        let get1 = |p: &str| out.sorted(sym(p))[0].get(0).as_f64().unwrap();
        let (lo, hi, mean, n) = (get1("lo"), get1("hi"), get1("mean"), get1("n"));
        prop_assert!(lo <= mean && mean <= hi);
        prop_assert_eq!(n as usize, values.len());
        prop_assert_eq!(lo as i64, *values.iter().min().unwrap());
        prop_assert_eq!(hi as i64, *values.iter().max().unwrap());
    }
}

// ---------------------------------------------------------------------
// Stratification / analysis properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A linear chain of negations q0 ← ¬q1 ← ¬q2 … stratifies with
    /// strictly increasing levels.
    #[test]
    fn negation_chain_strata(depth in 1usize..8) {
        let mut src = String::from("q0(X) :- base(X).\n");
        for i in 1..=depth {
            src.push_str(&format!("q{i}(X) :- base(X), not q{}(X).\n", i - 1));
        }
        let prog = parse_program(&src).unwrap();
        let a = analyze(&prog, &BuiltinRegistry::standard()).unwrap();
        for i in 1..=depth {
            let lo = a.strat.level_of(sym(&format!("q{}", i - 1)));
            let hi = a.strat.level_of(sym(&format!("q{i}")));
            prop_assert!(hi > lo, "level(q{i})={hi} !> level(q{})={lo}", i - 1);
        }
    }
}

// ---------------------------------------------------------------------
// Named proptest regressions
// ---------------------------------------------------------------------

/// Permanent form of the proptest-minimized `incremental_tc_equals_batch`
/// regression (`properties.proptest-regressions`):
/// `ops = [(true, 3, 1), (true, 5, 3), (true, 1, 1), (false, 5, 3)]`,
/// i.e. insert e(3,4), e(5,8), e(1,2), then delete e(5,8). The *property*
/// never failed for this input — the distributed harness built on the same
/// relation type flaked across processes, and this minimized case was the
/// entry point for root-causing it: `Relation` iterated its tuples in
/// `HashMap` order, which differs per process (random SipHash keys) and
/// leaked into join-probe emission order. `Relation.tuples` is a `BTreeMap`
/// now; this pins the minimal scenario and its iteration-order guarantee.
#[test]
fn tc_regression_minimized_insert_delete_sequence() {
    let ops = [
        (true, 3i64, 1i64),
        (true, 5, 3),
        (true, 1, 1),
        (false, 5, 3),
    ];
    let mut inc = IncrementalEngine::from_source(TC, BuiltinRegistry::standard()).unwrap();
    let mut live: BTreeSet<(i64, i64)> = BTreeSet::new();
    for (i, &(insert, a, d)) in ops.iter().enumerate() {
        let b = a + d;
        let u = if insert {
            live.insert((a, b));
            Update::insert(sym("e"), tuple2(a, b), i as u64)
        } else {
            live.remove(&(a, b));
            Update::delete(sym("e"), tuple2(a, b), i as u64)
        };
        inc.apply(u).unwrap();
    }
    let engine = Engine::from_source(TC, BuiltinRegistry::standard()).unwrap();
    let mut edb = Database::new();
    for &(a, b) in &live {
        edb.insert(sym("e"), tuple2(a, b));
    }
    let expect = engine.run(&edb).unwrap();
    assert_eq!(inc.db.sorted(sym("t")), expect.sorted(sym("t")));
    // The determinism guarantee the fix rests on: enumeration order of the
    // surviving tuples is canonical (sorted), not hash order.
    let e_tuples = inc.db.sorted(sym("e"));
    let mut sorted = e_tuples.clone();
    sorted.sort();
    assert_eq!(e_tuples, sorted);
}

// ---------------------------------------------------------------------
// The documented locally-non-recursive limitation (Sec. IV-C)
// ---------------------------------------------------------------------

/// On cyclic graphs, set-of-derivations can leave zombie tuples after
/// deletions (mutually-supporting derivations — "a non-empty set of
/// derivations of a tuple may not imply existence of a valid proof tree").
/// The delete-rederive engine covers that class, exactly as the paper
/// prescribes.
#[test]
fn sod_limitation_on_cyclic_graphs_and_dred_fallback() {
    use sensorlog::eval::rederive::RederiveEngine;
    let edges = [(1i64, 2i64), (2, 1), (2, 3)];
    let mut dred = RederiveEngine::from_source(TC, BuiltinRegistry::standard()).unwrap();
    for (i, &(a, b)) in edges.iter().enumerate() {
        dred.apply(Update::insert(sym("e"), tuple2(a, b), i as u64))
            .unwrap();
    }
    assert!(dred.db.contains(sym("t"), &tuple2(1, 3)));
    // Cutting the 2->1 back edge must retract everything that depended on
    // the cycle — DRed gets it right.
    dred.apply(Update::delete(sym("e"), tuple2(2, 1), 10))
        .unwrap();
    let engine = Engine::from_source(TC, BuiltinRegistry::standard()).unwrap();
    let mut edb = Database::new();
    edb.insert(sym("e"), tuple2(1, 2));
    edb.insert(sym("e"), tuple2(2, 3));
    let expect = engine.run(&edb).unwrap();
    assert_eq!(dred.db.sorted(sym("t")), expect.sorted(sym("t")));
}
