//! Example 1 of the paper: battlefield vehicle tracking with negation.
//!
//! A sensor field watches enemy and friendly vehicles. An alert fires for
//! every *uncovered* enemy — one with no friendly vehicle within coverage
//! range. Friendlies move, so their old positions are retracted and alerts
//! flip live as coverage changes — exercising the distributed
//! set-of-derivations maintenance under insertions *and* deletions.
//!
//! ```text
//! cargo run --example battlefield
//! ```

use sensorlog::core::workload::VehicleWorkload;
use sensorlog::prelude::*;

const PROGRAM: &str = r#"
    % Example 1 (Sec. II-B): alert on uncovered enemy vehicles.
    .output uncov.
    cov(L, T)   :- veh("enemy", L, T), veh("friendly", F, T),
                   dist(L, F) <= 8.
    uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
"#;

fn main() {
    let topo = Topology::square_grid(6);
    let mut d = Deployment::new(
        PROGRAM,
        BuiltinRegistry::standard(),
        topo.clone(),
        DeployConfig::default(),
    )
    .unwrap();

    // Wandering vehicles: 3 enemies, 2 friendlies, sighted every 20 s.
    let events = VehicleWorkload {
        n_enemy: 3,
        n_friendly: 2,
        interval: 20_000,
        duration: 100_000,
        seed: 42,
    }
    .events(&topo);
    println!(
        "injecting {} sightings/retractions over {}s of simulated time",
        events.len(),
        100
    );
    d.schedule_all(events.clone());
    d.run(100_000_000);

    // Alert transitions as they were observed at owner nodes.
    println!("\nalert log (owner-side transitions):");
    let mut log: Vec<_> = d
        .sim
        .nodes()
        .flat_map(|n| n.output_log.iter().cloned())
        .collect();
    log.sort_by_key(|(_, _, _, ts)| *ts);
    for (pred, tuple, kind, ts) in log.iter().take(30) {
        let op = match kind {
            UpdateKind::Insert => "RAISED ",
            UpdateKind::Delete => "cleared",
        };
        println!("  t={:>7}ms {op} {pred}{tuple}", ts);
    }
    if log.len() > 30 {
        println!("  … {} more transitions", log.len() - 30);
    }

    println!("\nfinal standing alerts:");
    for t in d.results(Symbol::intern("uncov")) {
        println!("  uncov{t}");
    }

    let report = oracle::check(&d, &events, Symbol::intern("uncov"));
    if !report.exact() {
        eprintln!("missing: {:?}", report.missing);
        eprintln!("spurious: {:?}", report.spurious);
    }
    assert!(
        report.exact(),
        "distributed alerts diverged from the oracle"
    );
    println!(
        "\noracle check: exact — {} standing alerts, {} total messages",
        report.expected,
        d.metrics().total_tx()
    );
}
