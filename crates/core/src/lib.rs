//! # sensorlog-core
//!
//! The paper's primary contribution: **distributed, asynchronous bottom-up
//! evaluation of deductive programs in sensor networks** (Gupta, Zhu & Xu,
//! ICDE 2009), built on the simulator (`sensorlog-netsim`), the network
//! services (`sensorlog-netstack`) and the language/engine crates.
//!
//! * [`strategy`] — the Generalized Perpendicular Approach family:
//!   Perpendicular (rows store / columns join), NaiveBroadcast,
//!   LocalStorage, and the Centroid central-server baseline (Sec. III-A);
//! * [`plan`] — program compilation for node deployment, including
//!   staggered finalize-holddowns for XY components (Secs. IV-C, V);
//! * [`partial`] — partial results and the per-node one-pass join step
//!   (Fig. 1), local negation kills (Sec. IV-B);
//! * [`runtime`] — the node state machine: storage phase (replication /
//!   tombstones), delayed join phase (τs + τc), derivation-count ownership
//!   with liveness propagation (Secs. III–IV, Fig. 3);
//! * [`deploy`] / [`workload`] / [`oracle`] — the experiment harness:
//!   deployments, workload generators, and centralized-oracle checking.
//!
//! ## Quickstart
//!
//! ```
//! use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
//! use sensorlog_core::oracle;
//! use sensorlog_logic::builtin::BuiltinRegistry;
//! use sensorlog_logic::{parse_fact, Symbol, Tuple};
//! use sensorlog_netsim::{NodeId, Topology};
//! use sensorlog_eval::UpdateKind;
//!
//! let src = r#"
//!     .output q.
//!     q(X, Y) :- r1(X, T), r2(Y, T).
//! "#;
//! let topo = Topology::square_grid(4);
//! let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo,
//!                             DeployConfig::default()).unwrap();
//! let mk = |pred: &str, src: &str| {
//!     let (p, args) = parse_fact(src).unwrap();
//!     assert_eq!(p, Symbol::intern(pred));
//!     Tuple::new(args)
//! };
//! let events = vec![
//!     WorkloadEvent { at: 10, node: NodeId(1), pred: Symbol::intern("r1"),
//!                     tuple: mk("r1", "r1(1, 7)"), kind: UpdateKind::Insert },
//!     WorkloadEvent { at: 20, node: NodeId(14), pred: Symbol::intern("r2"),
//!                     tuple: mk("r2", "r2(2, 7)"), kind: UpdateKind::Insert },
//! ];
//! d.schedule_all(events.clone());
//! d.run(60_000);
//! let report = oracle::check(&d, &events, Symbol::intern("q"));
//! assert!(report.exact(), "missing {:?} spurious {:?}", report.missing, report.spurious);
//! ```

pub mod agg;
pub mod deploy;
pub mod durable;
pub mod invariants;
pub mod msg;
pub mod oracle;
pub mod partial;
pub mod plan;
pub mod prov;
pub mod runtime;
pub mod strategy;
pub mod tupleid;
pub mod workload;

pub use deploy::{DeployConfig, Deployment, WorkloadEvent};
pub use invariants::{InvariantReport, Violation};
pub use plan::{compile_source, DistProgram, PlanTiming};
pub use prov::{ProvRecord, Provenance};
pub use runtime::{NetInfo, RtConfig, SensorlogNode};
pub use strategy::{PassMode, Strategy};
pub use tupleid::{DerivationKey, FactRecord, TupleId};
