//! Region-sharded conservative-PDES scheduler backend.
//!
//! The node space splits into `workers` contiguous regions, each owning a
//! private [`TimerWheel`]. The scheduler alternates two modes:
//!
//! * **Serial fallback** — below [`PAR_THRESHOLD`] pending events the main
//!   loop pops the globally minimal `(at, tie)` head across regions and
//!   steps exactly like the single-wheel backend (no barrier overhead on
//!   sparse phases).
//! * **Lockstep windows** — otherwise every region concurrently drains its
//!   own wheel over `[t, t + L)`, where `t` is the global minimum pending
//!   timestamp and the lookahead `L = hop_delay.0` is the *minimum* per-hop
//!   delay. Any message generated inside the window arrives at
//!   `≥ now + L ≥ t + L`, so no region can receive work for the current
//!   window from another region — the classic conservative-PDES safety
//!   argument, here with the radio's bounded delay model as the lookahead
//!   source. Timers always target their own node (same region) and may fire
//!   within the window.
//!
//! Cross-region sends are appended to per-`(src, dst)` mailboxes during the
//! window (a `debug_assert` enforces `at ≥ window end`) and flushed into the
//! destination wheels at the barrier, in region order — deterministic
//! because the wheels key strictly on `(at, tie)` regardless of push order.
//!
//! **Determinism / oracle equivalence.** Ties are origin-keyed
//! (`origin << 32 | counter`), every random draw comes from the sender's
//! private stream, and a region processes its window events in local
//! `(at, tie)` order — which is exactly the serial global order restricted
//! to that region, because concurrent windows contain no cross-region
//! dependencies. Journal records are tagged with the key of the event that
//! produced them and k-way merged by `(at, key)` at each barrier, yielding a
//! byte-identical journal to the single-wheel oracle
//! (`tests/trace_stability.rs` pins all three backends to one hash).
//! Telemetry remains observational: workers record into the thread-safe
//! registry, but nothing on the event path reads it.

use crate::faults::LinkState;
use crate::metrics::Metrics;
use crate::sim::{App, Event, EventQueue, Lane, LaneSink, NodeRng, SchedStats, SimConfig};
use crate::sim::{SimTime, Simulator};
use crate::topology::{NodeId, Topology};
use crate::trace::{DropReason, TraceEvent, TraceRecord};
use crate::wheel::TimerWheel;
use sensorlog_telemetry::Telemetry;

/// Pending-event count below which the shard backend steps serially instead
/// of opening a lockstep window (barrier costs dominate tiny windows).
pub(crate) const PAR_THRESHOLD: usize = 256;

/// Contiguous equal-split partition of `n` nodes into `regions` regions
/// (the first `n % regions` regions get one extra node). Contiguity matters:
/// grid topologies number nodes row-major, so contiguous ranges are spatial
/// strips and most radio traffic stays region-local.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Partition {
    n: u32,
    regions: u32,
}

impl Partition {
    fn new(n_nodes: usize, workers: usize) -> Partition {
        let n = n_nodes as u32;
        Partition {
            n,
            regions: (workers.max(1) as u32).min(n.max(1)),
        }
    }

    pub(crate) fn regions(&self) -> usize {
        self.regions as usize
    }

    #[inline]
    pub(crate) fn region_of(&self, node: NodeId) -> usize {
        let q = self.n / self.regions;
        let r = self.n % self.regions;
        let cut = (q + 1) * r;
        if node.0 < cut {
            (node.0 / (q + 1)) as usize
        } else {
            (r + (node.0 - cut) / q) as usize
        }
    }

    /// `(first node, node count)` of `region`.
    pub(crate) fn range(&self, region: usize) -> (u32, u32) {
        let q = self.n / self.regions;
        let r = self.n % self.regions;
        let region = region as u32;
        let start = region.min(r) * (q + 1) + region.saturating_sub(r) * q;
        let len = if region < r { q + 1 } else { q };
        (start, len)
    }
}

/// Per-region metric accumulation: workers count into plain vectors during
/// a window; the main thread merges them into the registry-backed
/// [`Metrics`] after each drain. Node vectors are region-local (indexed from
/// `base`); per-kind rows are a tiny linear-scanned list (simulations use a
/// handful of kinds).
pub(crate) struct LaneMetrics {
    base: u32,
    tx: Vec<u64>,
    txb: Vec<u64>,
    rx: Vec<u64>,
    rxb: Vec<u64>,
    /// Nodes with nonzero deltas since the last flush, in first-touch order.
    touched: Vec<u32>,
    dirty: Vec<bool>,
    /// `(kind, [tx, rx, lost, lost-by-reason…])` deltas since the last
    /// flush (the trailing [`DropReason::COUNT`] slots attribute losses).
    kinds: Vec<(&'static str, [u64; 3 + DropReason::COUNT])>,
}

impl LaneMetrics {
    fn new(base: u32, len: u32) -> LaneMetrics {
        let len = len as usize;
        LaneMetrics {
            base,
            tx: vec![0; len],
            txb: vec![0; len],
            rx: vec![0; len],
            rxb: vec![0; len],
            touched: Vec::new(),
            dirty: vec![false; len],
            kinds: Vec::new(),
        }
    }

    #[inline]
    fn touch(&mut self, i: usize) {
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.touched.push(i as u32);
        }
    }

    #[inline]
    fn kind_slot(&mut self, kind: &'static str) -> &mut [u64; 3 + DropReason::COUNT] {
        if let Some(pos) = self.kinds.iter().position(|(k, _)| *k == kind) {
            return &mut self.kinds[pos].1;
        }
        self.kinds.push((kind, [0; 3 + DropReason::COUNT]));
        &mut self.kinds.last_mut().expect("just pushed").1
    }

    fn tx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        let i = (node.0 - self.base) as usize;
        self.tx[i] += 1;
        self.txb[i] += bytes as u64;
        self.touch(i);
        self.kind_slot(kind)[0] += 1;
    }

    fn rx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        let i = (node.0 - self.base) as usize;
        self.rx[i] += 1;
        self.rxb[i] += bytes as u64;
        self.touch(i);
        self.kind_slot(kind)[1] += 1;
    }

    fn loss(&mut self, kind: &'static str, reason: DropReason) {
        let slot = self.kind_slot(kind);
        slot[2] += 1;
        slot[3 + reason.index()] += 1;
    }

    /// Merge accumulated deltas into `m` and reset to empty.
    fn flush_into(&mut self, m: &mut Metrics) {
        for &i in &self.touched {
            let i = i as usize;
            let node = NodeId(self.base + i as u32);
            if self.tx[i] > 0 || self.txb[i] > 0 {
                m.add_node_tx(node, self.tx[i], self.txb[i]);
            }
            if self.rx[i] > 0 || self.rxb[i] > 0 {
                m.add_node_rx(node, self.rx[i], self.rxb[i]);
            }
            self.tx[i] = 0;
            self.txb[i] = 0;
            self.rx[i] = 0;
            self.rxb[i] = 0;
            self.dirty[i] = false;
        }
        self.touched.clear();
        for (kind, counts) in self.kinds.drain(..) {
            let [tx, rx, lost] = [counts[0], counts[1], counts[2]];
            let mut reasons = [0u64; DropReason::COUNT];
            reasons.copy_from_slice(&counts[3..]);
            m.add_kind(kind, tx, rx, lost, reasons);
        }
    }
}

/// A region worker's window-local output buffers.
pub(crate) struct LaneScratch<M> {
    /// Cross-region mailboxes: `out[dst]` holds events bound for region
    /// `dst`, flushed into its wheel at the window barrier.
    out: Vec<Vec<(SimTime, u64, Event<M>)>>,
    /// Journal records tagged `(at, key-of-producing-event)`; k-way merged
    /// into the global journal at the barrier. Internally sorted because the
    /// worker processes events in `(at, tie)` order and emission order
    /// within one event is the serial emission order.
    trace: Vec<(SimTime, u64, TraceEvent)>,
    metrics: LaneMetrics,
}

/// Shard-specific operation counters (surfaced through
/// [`crate::sim::SchedStats`] as `sched.shard.*` gauges).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) windows: u64,
    pub(crate) cross_msgs: u64,
    pub(crate) serial_events: u64,
    /// Summed per-region busy time across windows (ns).
    pub(crate) work_ns: u64,
    /// Summed per-window critical path: the max busy region (ns).
    pub(crate) crit_ns: u64,
}

/// The [`Sched::Shard`](crate::sim::Sched) event-queue state: one wheel +
/// scratch per region. Pops (used by the serial fallback) select the
/// globally minimal `(at, tie)` head across regions, so the queue is
/// observationally identical to a single wheel.
pub(crate) struct ShardQueues<M> {
    pub(crate) part: Partition,
    pub(crate) wheels: Vec<TimerWheel<Event<M>>>,
    lanes: Vec<LaneScratch<M>>,
    pub(crate) stats: ShardStats,
}

impl<M> ShardQueues<M> {
    pub(crate) fn new(n_nodes: usize, workers: usize) -> ShardQueues<M> {
        let part = Partition::new(n_nodes, workers);
        let regions = part.regions();
        let lanes = (0..regions)
            .map(|r| {
                let (base, len) = part.range(r);
                LaneScratch {
                    out: (0..regions).map(|_| Vec::new()).collect(),
                    trace: Vec::new(),
                    metrics: LaneMetrics::new(base, len),
                }
            })
            .collect();
        ShardQueues {
            part,
            wheels: (0..regions).map(|_| TimerWheel::new()).collect(),
            lanes,
            stats: ShardStats::default(),
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, tie: u64, event: Event<M>) {
        let region = self.part.region_of(event.handler());
        self.wheels[region].push(at, tie, event);
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, Event<M>)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, w) in self.wheels.iter_mut().enumerate() {
            if let Some((at, tie)) = w.next_key() {
                if best.is_none_or(|(bat, btie, _)| (at, tie) < (bat, btie)) {
                    best = Some((at, tie, i));
                }
            }
        }
        let (_, _, i) = best?;
        self.wheels[i].pop()
    }

    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        self.wheels.iter_mut().filter_map(|w| w.next_at()).min()
    }

    pub(crate) fn len(&self) -> usize {
        self.wheels.iter().map(|w| w.len()).sum()
    }

    pub(crate) fn fill_stats(&self, s: &mut SchedStats) {
        for w in &self.wheels {
            s.ring_pushes += w.stats.ring_pushes;
            s.spill_pushes += w.stats.spill_pushes;
            s.migrations += w.stats.migrations;
            s.window_advances += w.stats.window_advances;
        }
        s.shard_windows = self.stats.windows;
        s.shard_cross_msgs = self.stats.cross_msgs;
        s.shard_serial_events = self.stats.serial_events;
        s.shard_work_ns = self.stats.work_ns;
        s.shard_crit_ns = self.stats.crit_ns;
        s.shard_regions = self.part.regions() as u64;
    }
}

/// The region worker's [`LaneSink`]: local events go to the region wheel,
/// cross-region events to the mailbox for their destination, journal records
/// to the window-local buffer.
struct RegionSink<'a, M> {
    wheel: &'a mut TimerWheel<Event<M>>,
    out: &'a mut [Vec<(SimTime, u64, Event<M>)>],
    trace: Option<&'a mut Vec<(SimTime, u64, TraceEvent)>>,
    metrics: &'a mut LaneMetrics,
    part: Partition,
    region: usize,
    wend: SimTime,
    /// Key of the event currently dispatching: journal records it produces
    /// are tagged with it so the barrier merge can reconstruct serial order.
    cur_key: u64,
    pushes: u64,
    cross: u64,
}

impl<M> LaneSink<M> for RegionSink<'_, M> {
    fn push(&mut self, at: SimTime, tie: u64, event: Event<M>) {
        self.pushes += 1;
        let dst = self.part.region_of(event.handler());
        if dst == self.region {
            self.wheel.push(at, tie, event);
        } else {
            // The conservative-PDES invariant: anything bound for another
            // region arrives at or after the window end (delay ≥ lookahead),
            // so flushing at the barrier can never deliver late.
            debug_assert!(
                at >= self.wend,
                "cross-region event inside the lookahead window"
            );
            self.cross += match &event {
                Event::Deliver { msgs, .. } => msgs.len() as u64,
                _ => 1,
            };
            self.out[dst].push((at, tie, event));
        }
    }

    fn emit(&mut self, now: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push((now, self.cur_key, event()));
        }
    }

    fn record_tx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        self.metrics.tx(node, bytes, kind);
    }

    fn record_rx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        self.metrics.rx(node, bytes, kind);
    }

    fn record_loss(&mut self, kind: &'static str, reason: DropReason) {
        self.metrics.loss(kind, reason);
    }
}

/// Read-only environment shared by every region worker in one window.
struct Shared<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
    telemetry: &'a Telemetry,
    skew: &'a [SimTime],
    failed: &'a [bool],
    epochs: &'a [u32],
    links: &'a LinkState,
    part: Partition,
    wend: SimTime,
    tracing: bool,
}

impl Clone for Shared<'_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for Shared<'_> {}

/// One region's mutable state for one window.
struct RegionTask<'a, A: App> {
    region: usize,
    base: u32,
    wheel: &'a mut TimerWheel<Event<A::Msg>>,
    scratch: &'a mut LaneScratch<A::Msg>,
    apps: &'a mut [A],
    rngs: &'a mut [NodeRng],
    counters: &'a mut [u32],
}

struct WindowResult {
    last_at: Option<SimTime>,
    events: u64,
    batched: u64,
    pushes: u64,
    cross: u64,
    work_ns: u64,
}

/// Drain one region's wheel over `[window start, wend)`. Runs on a worker
/// thread (or inline when threading is off — identical behavior).
fn run_window<A: App>(task: RegionTask<'_, A>, shared: Shared<'_>) -> WindowResult {
    let t0 = std::time::Instant::now();
    let mut events = 0u64;
    let mut batched = 0u64;
    let LaneScratch {
        out,
        trace,
        metrics,
    } = task.scratch;
    let mut lane = Lane {
        topo: shared.topo,
        config: shared.config,
        telemetry: shared.telemetry,
        skew: shared.skew,
        failed: shared.failed,
        epochs: shared.epochs,
        links: shared.links,
        apps: task.apps,
        rngs: task.rngs,
        counters: task.counters,
        base: task.base,
        events_processed: &mut events,
        batched_msgs: &mut batched,
    };
    let mut sink = RegionSink {
        wheel: task.wheel,
        out,
        trace: shared.tracing.then_some(trace),
        metrics,
        part: shared.part,
        region: task.region,
        wend: shared.wend,
        cur_key: 0,
        pushes: 0,
        cross: 0,
    };
    let mut last_at = None;
    while let Some(at) = sink.wheel.next_at() {
        if at >= shared.wend {
            break;
        }
        let (at, tie, event) = sink.wheel.pop().expect("peeked head");
        sink.cur_key = tie;
        last_at = Some(at);
        lane.dispatch(&mut sink, at, event);
    }
    let (pushes, cross) = (sink.pushes, sink.cross);
    WindowResult {
        last_at,
        events,
        batched,
        pushes,
        cross,
        work_ns: t0.elapsed().as_nanos() as u64,
    }
}

impl<A: App + Send> Simulator<A>
where
    A::Msg: Send,
{
    /// The shard backend's drain loop: serial fallback below the threshold,
    /// lockstep windows above it. Worker metric scratch is flushed before
    /// returning so callers observe registry totals identical to a serial
    /// run.
    pub(crate) fn drain_sharded(&mut self, limit: SimTime) {
        // Same fault interleave as the serial drain: a fault at time t
        // strikes before any event at t (windows are clamped so none spans
        // a fault tick — see run_shard_window), and pending faults apply
        // even on an empty queue.
        loop {
            let next_fault = self.next_fault_at(limit);
            let next_event = self.queue.next_at().filter(|&t| t <= limit);
            match (next_fault, next_event) {
                (Some(f), Some(t)) if f <= t => self.apply_faults_at(f),
                (_, Some(t)) => {
                    if self.queue.len() < self.shard_threshold {
                        if let EventQueue::Shard(sq) = &mut self.queue {
                            sq.stats.serial_events += 1;
                        }
                        self.step();
                    } else {
                        self.run_shard_window(t, limit);
                    }
                }
                (Some(f), None) => self.apply_faults_at(f),
                (None, None) => break,
            }
        }
        if let EventQueue::Shard(sq) = &mut self.queue {
            for lane in sq.lanes.iter_mut() {
                lane.metrics.flush_into(&mut self.metrics);
            }
        }
    }

    /// Execute one lockstep window `[t, min(t + lookahead, limit + 1))`,
    /// then run the barrier: flush mailboxes, merge journals, account stats.
    fn run_shard_window(&mut self, t: SimTime, limit: SimTime) {
        let lookahead = self.config.hop_delay.0.max(1);
        let mut wend = t.saturating_add(lookahead).min(limit.saturating_add(1));
        // Never let a window span a scheduled fault: events at or past the
        // fault tick wait until the fault has been applied on the main
        // thread, so a mid-window crash takes effect at its exact event
        // tick — identically to the serial backends.
        if let Some(f) = self.next_fault_at(limit) {
            debug_assert!(f > t, "drain loop applies due faults first");
            wend = wend.min(f);
        }
        let tracing = self.trace.is_some();
        let EventQueue::Shard(sq) = &mut self.queue else {
            unreachable!("run_shard_window on a non-shard queue")
        };
        let part = sq.part;
        let nregions = part.regions();
        let shared = Shared {
            topo: &self.topo,
            config: &self.config,
            telemetry: &self.telemetry,
            skew: &self.skew,
            failed: &self.failed,
            epochs: &self.epochs,
            links: &self.links,
            part,
            wend,
            tracing,
        };
        // Split the per-node state into disjoint contiguous region slices.
        let mut apps: &mut [A] = &mut self.apps;
        let mut rngs: &mut [NodeRng] = &mut self.rngs;
        let mut counters: &mut [u32] = &mut self.counters;
        let mut tasks = Vec::with_capacity(nregions);
        for (region, (wheel, scratch)) in sq.wheels.iter_mut().zip(sq.lanes.iter_mut()).enumerate()
        {
            let (base, len) = part.range(region);
            let (a, rest) = std::mem::take(&mut apps).split_at_mut(len as usize);
            apps = rest;
            let (r, rest) = std::mem::take(&mut rngs).split_at_mut(len as usize);
            rngs = rest;
            let (c, rest) = std::mem::take(&mut counters).split_at_mut(len as usize);
            counters = rest;
            tasks.push(RegionTask {
                region,
                base,
                wheel,
                scratch,
                apps: a,
                rngs: r,
                counters: c,
            });
        }
        let results: Vec<WindowResult> = if self.shard_threads && nregions > 1 {
            std::thread::scope(|s| {
                let handles: Vec<_> = tasks
                    .into_iter()
                    .map(|task| s.spawn(move || run_window(task, shared)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region worker panicked"))
                    .collect()
            })
        } else {
            tasks
                .into_iter()
                .map(|task| run_window(task, shared))
                .collect()
        };

        // ---- Barrier (main thread) ----
        sq.stats.windows += 1;
        let mut max_at: Option<SimTime> = None;
        let mut crit = 0u64;
        for r in &results {
            self.events_processed += r.events;
            self.batched_msgs += r.batched;
            self.pushes += r.pushes;
            sq.stats.cross_msgs += r.cross;
            sq.stats.work_ns += r.work_ns;
            crit = crit.max(r.work_ns);
            if let Some(a) = r.last_at {
                max_at = Some(max_at.map_or(a, |m| m.max(a)));
            }
        }
        sq.stats.crit_ns += crit;
        // Flush cross-region mailboxes into the destination wheels. Push
        // order across sources is irrelevant: wheels key on (at, tie).
        for src in 0..nregions {
            for dst in 0..nregions {
                if src == dst || sq.lanes[src].out[dst].is_empty() {
                    continue;
                }
                let mailbox = std::mem::take(&mut sq.lanes[src].out[dst]);
                for (at, tie, event) in mailbox {
                    sq.wheels[dst].push(at, tie, event);
                }
            }
        }
        // Merge the window's journal buffers by (at, key): keys are globally
        // unique and journal-record order within one key follows buffer
        // order, so this reproduces the serial journal exactly.
        if tracing {
            let mut iters: Vec<_> = sq
                .lanes
                .iter_mut()
                .map(|l| std::mem::take(&mut l.trace).into_iter().peekable())
                .collect();
            loop {
                let mut best: Option<(SimTime, u64, usize)> = None;
                for (i, it) in iters.iter_mut().enumerate() {
                    if let Some(&(at, key, _)) = it.peek() {
                        if best.is_none_or(|(bat, bkey, _)| (at, key) < (bat, bkey)) {
                            best = Some((at, key, i));
                        }
                    }
                }
                let Some((_, _, i)) = best else { break };
                let (at, _key, event) = iters[i].next().expect("peeked");
                if let Some(sink) = self.trace.as_mut() {
                    sink.record(TraceRecord {
                        seq: self.trace_seq,
                        at,
                        event,
                    });
                    self.trace_seq += 1;
                }
            }
        }
        if let Some(a) = max_at {
            self.now = self.now.max(a);
        }
        let depth = self.queue.len();
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_node_exactly_once() {
        for n in [0usize, 1, 2, 5, 7, 16, 100, 101] {
            for workers in [1usize, 2, 3, 4, 8, 200] {
                let p = Partition::new(n, workers);
                let mut seen = 0u32;
                for r in 0..p.regions() {
                    let (base, len) = p.range(r);
                    assert_eq!(base, seen, "ranges must be contiguous");
                    for node in base..base + len {
                        assert_eq!(p.region_of(NodeId(node)), r);
                    }
                    seen += len;
                }
                assert_eq!(seen as usize, n, "n={n} workers={workers}");
                if n > 0 {
                    assert!(p.regions() <= n && p.regions() >= 1);
                }
            }
        }
    }

    #[test]
    fn partition_balance_within_one() {
        let p = Partition::new(103, 4);
        let lens: Vec<u32> = (0..p.regions()).map(|r| p.range(r).1).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 1, "lens={lens:?}");
    }

    #[test]
    fn lane_metrics_flush_matches_direct_recording() {
        let mut direct = Metrics::new(6);
        let mut via = Metrics::new(6);
        let mut lm = LaneMetrics::new(2, 4); // region covers nodes 2..6
        for (node, bytes, kind) in [(2u32, 10, "a"), (3, 20, "b"), (2, 5, "a")] {
            direct.record_tx(NodeId(node), bytes, kind);
            lm.tx(NodeId(node), bytes, kind);
        }
        direct.record_rx(NodeId(5), 7, "a");
        lm.rx(NodeId(5), 7, "a");
        direct.record_loss("b", DropReason::Loss);
        lm.loss("b", DropReason::Loss);
        lm.flush_into(&mut via);
        assert_eq!(direct.node(NodeId(2)), via.node(NodeId(2)));
        assert_eq!(direct.node(NodeId(5)), via.node(NodeId(5)));
        assert_eq!(direct.kind_balance(), via.kind_balance());
        // Flush resets: a second flush adds nothing.
        lm.flush_into(&mut via);
        assert_eq!(direct.kind_balance(), via.kind_balance());
    }
}
