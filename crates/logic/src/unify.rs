//! Substitutions, matching, and unification.
//!
//! The bottom-up engine mostly *matches* rule patterns against ground facts.
//! Full unification (with occurs check) is provided for the term-matching
//! operator the paper mentions for function symbols (Sec. IV-C) and for the
//! magic-set transformation.

use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;

/// A binding of variables to terms. Bindings produced by [`match_term`]
/// against ground facts are always ground; bindings produced by [`unify`]
/// may be non-ground and must be resolved via [`Subst::resolve`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Subst {
    map: HashMap<Symbol, Term>,
}

impl Subst {
    pub fn new() -> Subst {
        Subst::default()
    }

    pub fn get(&self, v: Symbol) -> Option<&Term> {
        self.map.get(&v)
    }

    pub fn bind(&mut self, v: Symbol, t: Term) {
        self.map.insert(v, t);
    }

    pub fn is_bound(&self, v: Symbol) -> bool {
        self.map.contains_key(&v)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Term)> {
        self.map.iter()
    }

    /// Substitute bound variables in `t`. Unbound variables are left as-is;
    /// chains through other bindings are followed.
    pub fn apply(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => match self.map.get(v) {
                // Follow chains: a var may be bound to another var by unify.
                Some(bound) => {
                    if let Term::Var(v2) = bound {
                        if self.map.contains_key(v2) && v2 != v {
                            return self.apply(bound);
                        }
                    }
                    if bound.is_ground() {
                        bound.clone()
                    } else {
                        self.apply_inner(bound)
                    }
                }
                None => t.clone(),
            },
            Term::App(f, args) => {
                if args.iter().all(Term::is_ground) {
                    t.clone()
                } else {
                    Term::App(*f, args.iter().map(|a| self.apply(a)).collect())
                }
            }
            _ => t.clone(),
        }
    }

    fn apply_inner(&self, t: &Term) -> Term {
        match t {
            Term::Var(_) => self.apply(t),
            Term::App(f, args) => Term::App(*f, args.iter().map(|a| self.apply(a)).collect()),
            _ => t.clone(),
        }
    }

    /// Fully resolve `t`, following binding chains (for unification results).
    pub fn resolve(&self, t: &Term) -> Term {
        self.apply(t)
    }
}

/// Match `pattern` (may contain variables) against ground `value`, extending
/// `subst`. Returns false (with `subst` possibly partially extended — callers
/// discard on failure) if they don't match.
pub fn match_term(pattern: &Term, value: &Term, subst: &mut Subst) -> bool {
    debug_assert!(value.is_ground(), "match_term target must be ground");
    match pattern {
        Term::Var(v) => match subst.get(*v) {
            Some(bound) => bound == value,
            None => {
                subst.bind(*v, value.clone());
                true
            }
        },
        Term::App(f, args) => match value {
            Term::App(g, vargs) if f == g && args.len() == vargs.len() => args
                .iter()
                .zip(vargs.iter())
                .all(|(p, v)| match_term(p, v, subst)),
            _ => false,
        },
        _ => pattern == value,
    }
}

/// Match a sequence of patterns against a ground tuple.
pub fn match_args(patterns: &[Term], values: &[Term], subst: &mut Subst) -> bool {
    patterns.len() == values.len()
        && patterns
            .iter()
            .zip(values.iter())
            .all(|(p, v)| match_term(p, v, subst))
}

fn occurs(v: Symbol, t: &Term, subst: &Subst) -> bool {
    match t {
        Term::Var(u) => {
            if *u == v {
                return true;
            }
            match subst.get(*u) {
                Some(bound) => occurs(v, &bound.clone(), subst),
                None => false,
            }
        }
        Term::App(_, args) => args.iter().any(|a| occurs(v, a, subst)),
        _ => false,
    }
}

fn walk(t: &Term, subst: &Subst) -> Term {
    match t {
        Term::Var(v) => match subst.get(*v) {
            Some(bound) => walk(&bound.clone(), subst),
            None => t.clone(),
        },
        _ => t.clone(),
    }
}

/// Full unification with occurs check. Both terms may contain variables.
pub fn unify(a: &Term, b: &Term, subst: &mut Subst) -> bool {
    let a = walk(a, subst);
    let b = walk(b, subst);
    match (&a, &b) {
        (Term::Var(v), Term::Var(u)) if v == u => true,
        (Term::Var(v), other) => {
            if occurs(*v, other, subst) {
                false
            } else {
                subst.bind(*v, other.clone());
                true
            }
        }
        (other, Term::Var(v)) => {
            if occurs(*v, other, subst) {
                false
            } else {
                subst.bind(*v, other.clone());
                true
            }
        }
        (Term::App(f, fargs), Term::App(g, gargs)) => {
            f == g
                && fargs.len() == gargs.len()
                && fargs
                    .iter()
                    .zip(gargs.iter())
                    .all(|(x, y)| unify(x, y, subst))
        }
        _ => a == b,
    }
}

/// Rename all variables of `t` by appending `suffix`, producing a variant
/// term with fresh variables (used by magic sets and rule variants).
pub fn rename_vars(t: &Term, suffix: &str) -> Term {
    match t {
        Term::Var(v) => Term::var(&format!("{}{}", v.as_str(), suffix)),
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| rename_vars(a, suffix)).collect()),
        _ => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_binds_vars() {
        let mut s = Subst::new();
        let pat = Term::app("f", vec![Term::var("X"), Term::Int(2)]);
        let val = Term::app("f", vec![Term::Int(1), Term::Int(2)]);
        assert!(match_term(&pat, &val, &mut s));
        assert_eq!(s.get(Symbol::intern("X")), Some(&Term::Int(1)));
    }

    #[test]
    fn match_respects_existing_bindings() {
        let mut s = Subst::new();
        s.bind(Symbol::intern("X"), Term::Int(5));
        assert!(match_term(&Term::var("X"), &Term::Int(5), &mut s));
        assert!(!match_term(&Term::var("X"), &Term::Int(6), &mut s));
    }

    #[test]
    fn match_nonlinear_pattern() {
        // f(X, X) matches f(1, 1) but not f(1, 2).
        let pat = Term::app("f", vec![Term::var("X"), Term::var("X")]);
        let mut s = Subst::new();
        assert!(match_term(
            &pat,
            &Term::app("f", vec![Term::Int(1), Term::Int(1)]),
            &mut s
        ));
        let mut s = Subst::new();
        assert!(!match_term(
            &pat,
            &Term::app("f", vec![Term::Int(1), Term::Int(2)]),
            &mut s
        ));
    }

    #[test]
    fn match_structural_mismatch() {
        let mut s = Subst::new();
        assert!(!match_term(
            &Term::app("f", vec![Term::var("X")]),
            &Term::app("g", vec![Term::Int(1)]),
            &mut s
        ));
        assert!(!match_term(&Term::Int(1), &Term::Int(2), &mut s));
    }

    #[test]
    fn apply_substitutes_recursively() {
        let mut s = Subst::new();
        s.bind(Symbol::intern("X"), Term::Int(1));
        let t = Term::app("f", vec![Term::var("X"), Term::var("Y")]);
        assert_eq!(
            s.apply(&t),
            Term::app("f", vec![Term::Int(1), Term::var("Y")])
        );
    }

    #[test]
    fn unify_two_open_terms() {
        // f(X, g(Y)) ~ f(1, g(2))
        let mut s = Subst::new();
        let a = Term::app(
            "f",
            vec![Term::var("X"), Term::app("g", vec![Term::var("Y")])],
        );
        let b = Term::app("f", vec![Term::Int(1), Term::app("g", vec![Term::Int(2)])]);
        assert!(unify(&a, &b, &mut s));
        assert_eq!(s.resolve(&Term::var("X")), Term::Int(1));
        assert_eq!(s.resolve(&Term::var("Y")), Term::Int(2));
    }

    #[test]
    fn unify_var_to_var_chains() {
        let mut s = Subst::new();
        assert!(unify(&Term::var("X"), &Term::var("Y"), &mut s));
        assert!(unify(&Term::var("Y"), &Term::Int(3), &mut s));
        assert_eq!(s.resolve(&Term::var("X")), Term::Int(3));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let mut s = Subst::new();
        let x = Term::var("X");
        let fx = Term::app("f", vec![Term::var("X")]);
        assert!(!unify(&x, &fx, &mut s));
    }

    #[test]
    fn rename_vars_makes_variant() {
        let t = Term::app("f", vec![Term::var("X"), Term::Int(1)]);
        let r = rename_vars(&t, "_m");
        assert_eq!(r, Term::app("f", vec![Term::var("X_m"), Term::Int(1)]));
    }
}
