//! Parity regression between the shared boundness analysis
//! (`sensorlog_logic::boundness`) and the eval-side planner that consumes
//! it. `order_body` / `plan_probes` are thin wrappers today, but any future
//! divergence — a planner-local reordering tweak, a changed pin set —
//! would silently desynchronize the static analyzer's lints from what the
//! engines actually execute. These tests pin the contract: for every rule
//! of the reference programs, the shared `rule_signatures` and the
//! planner's order/plan agree for the unpinned order and every pinned
//! variant, and `program_signatures` registers exactly the probe columns
//! the shared analysis derives.

use sensorlog_eval::eval_body::order_body;
use sensorlog_eval::planner::{plan_probes, program_signatures};
use sensorlog_logic::absint::anchor_vars;
use sensorlog_logic::ast::Literal;
use sensorlog_logic::boundness::{rule_bound_vars, rule_signatures};
use sensorlog_logic::parser::parse_program;
use sensorlog_logic::unify::Subst;
use sensorlog_logic::Symbol;
use std::collections::{BTreeMap, BTreeSet};

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

/// For every rule and every pin variant the engines evaluate, the planner
/// reproduces exactly the order and probe plan of the shared analysis.
#[test]
fn planner_matches_shared_signatures() {
    for (label, src) in [("logicH", LOGIC_H), ("logicJ", LOGIC_J)] {
        let prog = parse_program(src).unwrap();
        let seed = Subst::new();
        for (ri, rule) in prog.rules.iter().enumerate() {
            let sigs = rule_signatures(rule);
            // The shared analysis enumerates the unpinned order plus one
            // pin per relational literal — nothing more, nothing less.
            let rel = rule
                .body
                .iter()
                .filter(|l| matches!(l, Literal::Pos(_) | Literal::Neg(_)))
                .count();
            assert_eq!(
                sigs.len(),
                rel + 1,
                "{label} rule #{ri}: wrong signature count"
            );
            assert_eq!(
                sigs[0].pinned, None,
                "{label} rule #{ri}: first is unpinned"
            );
            for sig in &sigs {
                let order = order_body(&rule.body, sig.pinned);
                assert_eq!(
                    order, sig.order,
                    "{label} rule #{ri} pin {:?}: order diverged",
                    sig.pinned
                );
                let plan = plan_probes(&rule.body, &order, sig.pinned, &seed);
                assert_eq!(
                    plan, sig.plan,
                    "{label} rule #{ri} pin {:?}: probe plan diverged",
                    sig.pinned
                );
            }
        }
    }
}

/// The frontier-width abstract interpreter counts recursive derivations
/// per valuation of a rule's *anchor* variables — the variables bound
/// outside the rule's own SCC. For that count to describe anything the
/// engines actually enumerate, every anchor variable must be one the
/// evaluator's boundness pass proves bound. A divergence here would mean
/// the static bound is built over variables the planner never grounds.
#[test]
fn frontier_anchors_are_planner_bound() {
    for (label, src) in [("logicH", LOGIC_H), ("logicJ", LOGIC_J)] {
        let prog = parse_program(src).unwrap();
        // Recursive SCCs: a pred is in its own recursive component when
        // some rule for it mentions another pred of the component (here,
        // both reference programs have one SCC: the two derived preds).
        let idb = prog.idb_preds();
        for (ri, rule) in prog.rules.iter().enumerate() {
            if rule.body.is_empty() {
                continue;
            }
            let anchors = anchor_vars(rule, &idb);
            let bound = rule_bound_vars(rule);
            assert!(
                anchors.is_subset(&bound),
                "{label} rule #{ri}: anchor vars {:?} not all planner-bound ({:?})",
                anchors,
                bound
            );
        }
    }
}

/// `program_signatures` (what the engines register as indexes) is exactly
/// the set of non-empty probe column sets of positive literals across the
/// shared per-rule signatures.
#[test]
fn registered_indexes_match_shared_plans() {
    for (label, src) in [("logicH", LOGIC_H), ("logicJ", LOGIC_J)] {
        let prog = parse_program(src).unwrap();
        let mut expected: BTreeMap<Symbol, BTreeSet<Vec<usize>>> = BTreeMap::new();
        for rule in &prog.rules {
            for sig in rule_signatures(rule) {
                for (i, cols) in sig.plan.iter().enumerate() {
                    if cols.is_empty() {
                        continue;
                    }
                    if let Literal::Pos(a) = &rule.body[i] {
                        expected.entry(a.pred).or_default().insert(cols.clone());
                    }
                }
            }
        }
        let got = program_signatures(&prog.rules);
        assert_eq!(got, expected, "{label}: registered index set diverged");
        // Sanity: the reference programs do exercise indexed probes.
        assert!(
            expected.values().any(|s| !s.is_empty()),
            "{label}: no indexed probes at all"
        );
    }
}
