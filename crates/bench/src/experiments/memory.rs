//! Table 1: per-node memory — peak stored replicas and derivations for the
//! three example programs (Sec. V "Memory Requirements": "the total number
//! of tuples stored at any node is at most 2 to 3 times its degree" for the
//! shortest-path program).

use crate::common::run_case;
use crate::experiments::sptree::LOGIC_J;
use crate::table::Table;
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::{graph_edges, UniformStreams};
use sensorlog_core::{PassMode, RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Table 1 rows: program, grid, peak replicas (max node), peak derivations
/// (max node), peak total items.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "per-node memory: peak stored items under PA",
        &[
            "program",
            "grid",
            "peak replicas",
            "peak derivs",
            "peak total",
            "static bound",
        ],
    );
    let fmt_bound = |b: Option<u64>| b.map_or_else(|| "unbounded".into(), |v| v.to_string());

    // Two-stream join on 8x8.
    {
        let topo = Topology::square_grid(8);
        let events = UniformStreams {
            preds: vec![sym("r1"), sym("r2")],
            interval: 8_000,
            duration: 16_000,
            delete_fraction: 0.0,
            delete_lag: 0,
            groups: 32,
            seed: 9,
        }
        .events(&topo);
        let p = run_case(
            ".output q.\nq(X, Y) :- r1(N1, X, K), r2(N2, Y, K).\n",
            topo,
            Strategy::Perpendicular { band_width: 1.0 },
            PassMode::OnePass,
            SimConfig::default(),
            None,
            events,
            sym("q"),
            30_000_000,
        );
        assert_dominates(&p, "join2");
        t.row(vec![
            "join2".into(),
            "8x8".into(),
            p.peak_replicas.to_string(),
            p.peak_derivations.to_string(),
            p.peak_node_memory.to_string(),
            fmt_bound(p.static_bound_total),
        ]);
    }

    // Negation query on 8x8 (reuse fig10 at frac 0 shape via a quick run).
    {
        let topo = Topology::square_grid(8);
        let events = UniformStreams {
            preds: vec![sym("sight"), sym("supp")],
            interval: 10_000,
            duration: 20_000,
            delete_fraction: 0.25,
            delete_lag: 30_000,
            groups: 16,
            seed: 10,
        }
        .events(&topo);
        let p = run_case(
            r#"
            .output alert.
            cov(V, K) :- sight(N, V, K), supp(N, S, K).
            alert(V, K) :- not cov(V, K), sight(N, V, K).
            "#,
            topo,
            Strategy::Perpendicular { band_width: 1.0 },
            PassMode::OnePass,
            SimConfig::default(),
            None,
            events,
            sym("alert"),
            60_000_000,
        );
        assert_dominates(&p, "uncov");
        t.row(vec![
            "uncov".into(),
            "8x8".into(),
            p.peak_replicas.to_string(),
            p.peak_derivations.to_string(),
            p.peak_node_memory.to_string(),
            fmt_bound(p.static_bound_total),
        ]);
    }

    // Shortest-path tree (logicJ) on 4x4 with detailed per-node split.
    {
        let topo = Topology::square_grid(4);
        let cfg = DeployConfig {
            rt: RtConfig {
                strategy: Strategy::Perpendicular { band_width: 1.0 },
                ..RtConfig::default()
            },
            ..DeployConfig::default()
        };
        let mut d =
            Deployment::new(LOGIC_J, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
        d.schedule_all(graph_edges(&topo, 100, 200));
        d.run(200_000_000);
        let stats = d.node_stats();
        let max_rep = stats.iter().map(|s| s.peak_replicas).max().unwrap_or(0);
        let max_der = stats.iter().map(|s| s.peak_derivations).max().unwrap_or(0);
        let report = sensorlog_core::invariants::check_static_bounds(&d);
        assert!(report.ok(), "logicJ: static bounds violated: {report}");
        let bound = crate::common::static_bound_total(&d);
        if let Some(bound) = bound {
            assert!(
                d.peak_node_memory() as u64 <= bound,
                "logicJ: peak {} exceeds static bound {bound}",
                d.peak_node_memory()
            );
        }
        t.row(vec![
            "logicJ".into(),
            "4x4".into(),
            max_rep.to_string(),
            max_der.to_string(),
            d.peak_node_memory().to_string(),
            fmt_bound(bound),
        ]);
    }
    t
}

/// The observed per-node peak must sit under the static ceiling whenever
/// the analyzer derives a finite one — the bench's runtime half of the
/// `sensorlog check` memory-bound cross-validation.
fn assert_dominates(p: &crate::common::RunPoint, label: &str) {
    if let Some(bound) = p.static_bound_total {
        assert!(
            p.peak_node_memory as u64 <= bound,
            "{label}: observed peak {} exceeds static bound {bound}",
            p.peak_node_memory
        );
    }
}
