//! Pinned trace-hash regression: a lossy 200-node logicH run whose event
//! journal must stay byte-identical across observability changes, and must
//! be unaffected by enabling telemetry (the observer may never touch the
//! RNG, the event queue, or timers).
//!
//! The pinned values come from `examples/trace_hash.rs` run at the
//! pre-telemetry baseline. If a change legitimately alters simulator
//! behavior (new message kind, different timer schedule), re-run the
//! example and update the constants — but an unexplained diff here means
//! determinism broke.

use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::prelude::*;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const PINNED_HASH: u64 = 0x38152b0464c5999b;
const PINNED_RECORDS: usize = 28603;
const PINNED_TX: u64 = 13831;

fn run_probe(telemetry: Telemetry) -> (usize, u64, u64) {
    run_probe_sched(telemetry, Sched::Wheel)
}

fn run_probe_sched(telemetry: Telemetry, sched: Sched) -> (usize, u64, u64) {
    let topo = Topology::grid(20, 10); // 200 nodes
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.1,
            seed: 17,
            sched,
            ..SimConfig::default()
        },
        telemetry,
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(2_000_000);
    let j = journal.take();
    (j.records.len(), j.content_hash(), d.metrics().total_tx())
}

#[test]
fn lossy_logic_h_trace_is_pinned() {
    let (records, hash, tx) = run_probe(Telemetry::disabled());
    assert_eq!(records, PINNED_RECORDS, "journal record count drifted");
    assert_eq!(tx, PINNED_TX, "transmission count drifted");
    assert_eq!(hash, PINNED_HASH, "journal content hash drifted");
}

#[test]
fn heap_backend_matches_the_same_pin() {
    // The scheduler backend is observationally pure: the retained binary
    // heap must hit the exact constants pinned for the timer wheel.
    let (records, hash, tx) = run_probe_sched(Telemetry::disabled(), Sched::Heap);
    assert_eq!(records, PINNED_RECORDS, "heap backend record count drifted");
    assert_eq!(tx, PINNED_TX, "heap backend transmission count drifted");
    assert_eq!(
        hash, PINNED_HASH,
        "heap and wheel schedulers produced different journals"
    );
}

#[test]
fn telemetry_does_not_perturb_the_trace() {
    let (records, hash, tx) = run_probe(Telemetry::enabled());
    assert_eq!(records, PINNED_RECORDS);
    assert_eq!(tx, PINNED_TX);
    assert_eq!(
        hash, PINNED_HASH,
        "an enabled telemetry handle changed simulator behavior"
    );
}
