//! Global string interner.
//!
//! Predicate names, variable names, function symbols and symbolic constants
//! are interned once and referred to by a `Copy`able [`Symbol`] handle
//! everywhere else. Interned strings live for the lifetime of the process
//! (they are leaked), which is the usual trade-off for a query engine whose
//! vocabulary is bounded by the program text plus the data constants.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Cheap to copy, hash and compare.
///
/// Ordering of two symbols follows the *string* ordering of their contents,
/// not creation order, so that term ordering is deterministic across runs
/// regardless of interning order. (This costs a string comparison per `cmp`,
/// which is fine: ordering is only used for canonical output and BTree keys.)
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Crate-internal raw handle — used only as inline-array filler in
    /// [`crate::flat::FlatSubst`]; slots past the logical length are never
    /// observed through the public API.
    pub(crate) const fn from_raw(id: u32) -> Symbol {
        Symbol(id)
    }

    /// Intern `s`, returning its unique handle.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(guard.strings.len()).expect("interner overflow");
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// Raw id, useful as a compact map key.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("veh");
        let b = Symbol::intern("veh");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "veh");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("cov"), Symbol::intern("uncov"));
    }

    #[test]
    fn ordering_follows_string_order() {
        // Intern in reverse lexical order to make sure ordering is by
        // content, not by creation index.
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("sym_{}", (i + j) % 10)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                assert!(s.as_str().starts_with("sym_"));
            }
        }
        // Same string interned from different threads must agree.
        assert_eq!(Symbol::intern("sym_3"), all[0][3]);
    }
}
