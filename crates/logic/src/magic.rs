//! Magic-set transformation (Sec. V: "the user specified logic-program is
//! first optimized using magic-set transformations").
//!
//! Rewrites a program so that bottom-up evaluation only derives facts
//! relevant to a query with bound arguments, using the standard
//! adornment-based construction with a left-to-right sideways information
//! passing strategy. Applies to programs without negation or aggregation in
//! the rules reachable from the query; otherwise the original program is
//! returned unchanged (reported via [`MagicResult::applied`]).

use crate::ast::{Atom, Literal, Program, Rule};
use crate::depgraph::DepGraph;
use crate::span::RuleSpans;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An adornment: one flag per argument, `true` = bound.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    pub fn all_free(n: usize) -> Adornment {
        Adornment(vec![false; n])
    }

    pub fn bound_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| i)
    }

    pub fn has_bound(&self) -> bool {
        self.0.iter().any(|&b| b)
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            write!(f, "{}", if b { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

/// A query: predicate + argument terms, where ground arguments become bound
/// positions of the adornment.
#[derive(Clone, Debug)]
pub struct Query {
    pub atom: Atom,
}

impl Query {
    pub fn adornment(&self) -> Adornment {
        Adornment(self.atom.args.iter().map(Term::is_ground).collect())
    }
}

/// Output of the transformation.
#[derive(Clone, Debug)]
pub struct MagicResult {
    /// The transformed (or original) program.
    pub program: Program,
    /// Whether the transformation was applied.
    pub applied: bool,
    /// Predicate holding the query answers in the transformed program.
    pub answer_pred: Symbol,
    /// Seed facts for the magic predicate (pred, tuple) — the query's bound
    /// constants.
    pub seeds: Vec<(Symbol, Vec<Term>)>,
}

fn adorned_name(pred: Symbol, a: &Adornment) -> Symbol {
    Symbol::intern(&format!("{}__{}", pred, a))
}

fn magic_name(pred: Symbol, a: &Adornment) -> Symbol {
    Symbol::intern(&format!("m_{}__{}", pred, a))
}

/// Apply the magic-set transformation for `query` against `prog`.
pub fn magic_transform(prog: &Program, query: &Query) -> MagicResult {
    let g = DepGraph::build(prog);
    let idb = prog.idb_preds();
    let reachable = g.reachable_from(&[query.atom.pred]);

    // Bail out (cleanly) on negation/aggregation in reachable rules, or a
    // query with no bound argument (nothing to gain).
    let blocked = prog.rules.iter().any(|r| {
        reachable.contains(&r.head.pred)
            && (r.agg.is_some() || r.body.iter().any(|l| matches!(l, Literal::Neg(_))))
    });
    let q_adorn = query.adornment();
    if blocked || !q_adorn.has_bound() || !idb.contains(&query.atom.pred) {
        return MagicResult {
            program: prog.clone(),
            applied: false,
            answer_pred: query.atom.pred,
            seeds: Vec::new(),
        };
    }

    let mut out = Program {
        rules: Vec::new(),
        windows: prog.windows.clone(),
        outputs: vec![adorned_name(query.atom.pred, &q_adorn)],
        declared_base: prog.declared_base.clone(),
        stage_hints: prog.stage_hints.clone(),
        holddowns: prog.holddowns.clone(),
    };

    let mut queue: VecDeque<(Symbol, Adornment)> = VecDeque::new();
    let mut seen: BTreeSet<(Symbol, String)> = BTreeSet::new();
    queue.push_back((query.atom.pred, q_adorn.clone()));
    seen.insert((query.atom.pred, q_adorn.to_string()));

    let mut next_id = 0usize;
    while let Some((pred, adorn)) = queue.pop_front() {
        for rule in prog.rules_for(pred) {
            // Bound head vars under this adornment.
            let mut bound: BTreeSet<Symbol> = BTreeSet::new();
            for i in adorn.bound_positions() {
                if let Some(arg) = rule.head.args.get(i) {
                    let mut vs = Vec::new();
                    arg.collect_vars(&mut vs);
                    bound.extend(vs);
                }
            }

            // The rewritten rule body starts with the magic guard.
            let magic_pred = magic_name(pred, &adorn);
            let magic_args: Vec<Term> = adorn
                .bound_positions()
                .map(|i| rule.head.args[i].clone())
                .collect();
            let mut new_body: Vec<Literal> = vec![Literal::Pos(Atom {
                pred: magic_pred,
                args: magic_args.clone(),
            })];

            // Walk body left-to-right; emit magic rules for IDB subgoals.
            let mut prefix: Vec<Literal> = new_body.clone();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) if idb.contains(&a.pred) => {
                        // An argument is bound iff all its variables are
                        // (ground arguments trivially so).
                        let sub_adorn = Adornment(
                            a.args
                                .iter()
                                .map(|t| t.vars().iter().all(|v| bound.contains(v)))
                                .collect(),
                        );
                        let sub_name = adorned_name(a.pred, &sub_adorn);
                        // Magic rule: m_sub(bound args) :- prefix.
                        if sub_adorn.has_bound() {
                            let m_args: Vec<Term> = sub_adorn
                                .bound_positions()
                                .map(|i| a.args[i].clone())
                                .collect();
                            out.rules.push(Rule {
                                id: next_id,
                                head: Atom {
                                    pred: magic_name(a.pred, &sub_adorn),
                                    args: m_args,
                                },
                                body: prefix.clone(),
                                agg: None,
                                spans: RuleSpans::default(),
                            });
                            next_id += 1;
                        }
                        let key = (a.pred, sub_adorn.to_string());
                        if seen.insert(key) {
                            queue.push_back((a.pred, sub_adorn.clone()));
                        }
                        let adorned_lit = Literal::Pos(Atom {
                            pred: sub_name,
                            args: a.args.clone(),
                        });
                        new_body.push(adorned_lit.clone());
                        prefix.push(adorned_lit);
                        let mut vs = Vec::new();
                        a.collect_vars(&mut vs);
                        bound.extend(vs);
                    }
                    other => {
                        new_body.push(other.clone());
                        prefix.push(other.clone());
                        if let Literal::Pos(a) = other {
                            let mut vs = Vec::new();
                            a.collect_vars(&mut vs);
                            bound.extend(vs);
                        }
                    }
                }
            }

            out.rules.push(Rule {
                id: next_id,
                head: Atom {
                    pred: adorned_name(pred, &adorn),
                    args: rule.head.args.clone(),
                },
                body: new_body,
                agg: None,
                // Point back at the source rule; literal spans no longer
                // line up after the rewrite, so only the rule span is kept.
                spans: RuleSpans {
                    rule: rule.spans.rule,
                    head: rule.spans.head,
                    lits: Vec::new(),
                },
            });
            next_id += 1;
        }
    }

    // Seed: magic fact from the query's ground arguments.
    let seed_args: Vec<Term> = q_adorn
        .bound_positions()
        .map(|i| query.atom.args[i].clone())
        .collect();
    let seeds = vec![(magic_name(query.atom.pred, &q_adorn), seed_args)];
    // Magic predicates are base streams from the engine's point of view.
    for (p, _) in &seeds {
        out.declared_base.insert(*p);
    }

    MagicResult {
        program: out,
        applied: true,
        answer_pred: adorned_name(query.atom.pred, &q_adorn),
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const TC: &str = r#"
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
    "#;

    #[test]
    fn adornment_display() {
        let a = Adornment(vec![true, false]);
        assert_eq!(a.to_string(), "bf");
        assert!(a.has_bound());
        assert_eq!(a.bound_positions().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn transforms_transitive_closure() {
        let prog = parse_program(TC).unwrap();
        let q = Query {
            atom: Atom::new("t", vec![Term::atom("a"), Term::var("Y")]),
        };
        let res = magic_transform(&prog, &q);
        assert!(res.applied);
        assert_eq!(res.answer_pred, sym("t__bf"));
        // One magic seed with the constant `a`.
        assert_eq!(res.seeds.len(), 1);
        assert_eq!(res.seeds[0].0, sym("m_t__bf"));
        assert_eq!(res.seeds[0].1, vec![Term::atom("a")]);
        // Rules: 2 adorned t rules + 1 magic rule (from recursive subgoal).
        let magic_rules: Vec<_> = res
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == sym("m_t__bf"))
            .collect();
        assert_eq!(magic_rules.len(), 1);
        // The magic rule passes bindings sideways through e.
        assert!(magic_rules[0]
            .body
            .iter()
            .any(|l| matches!(l, Literal::Pos(a) if a.pred == sym("e"))));
        // Every adorned t rule is guarded by the magic predicate.
        for r in res
            .program
            .rules
            .iter()
            .filter(|r| r.head.pred == sym("t__bf"))
        {
            assert!(matches!(&r.body[0], Literal::Pos(a) if a.pred == sym("m_t__bf")));
        }
    }

    #[test]
    fn free_query_not_transformed() {
        let prog = parse_program(TC).unwrap();
        let q = Query {
            atom: Atom::new("t", vec![Term::var("X"), Term::var("Y")]),
        };
        let res = magic_transform(&prog, &q);
        assert!(!res.applied);
        assert_eq!(res.program.rules.len(), prog.rules.len());
    }

    #[test]
    fn negation_blocks_transformation() {
        let prog = parse_program(
            r#"
            t(X, Y) :- e(X, Y), not blocked(X).
            "#,
        )
        .unwrap();
        let q = Query {
            atom: Atom::new("t", vec![Term::atom("a"), Term::var("Y")]),
        };
        let res = magic_transform(&prog, &q);
        assert!(!res.applied);
    }

    #[test]
    fn edb_query_untouched() {
        let prog = parse_program(TC).unwrap();
        let q = Query {
            atom: Atom::new("e", vec![Term::atom("a"), Term::var("Y")]),
        };
        assert!(!magic_transform(&prog, &q).applied);
    }

    #[test]
    fn second_argument_bound() {
        let prog = parse_program(TC).unwrap();
        let q = Query {
            atom: Atom::new("t", vec![Term::var("X"), Term::atom("z")]),
        };
        let res = magic_transform(&prog, &q);
        assert!(res.applied);
        assert_eq!(res.answer_pred, sym("t__fb"));
        // Left-to-right SIP: after e(X, Z) binds Z, the recursive call
        // t(Z, Y) has both arguments bound -> adornment bb.
        assert!(res
            .program
            .rules
            .iter()
            .any(|r| r.head.pred == sym("m_t__bb")));
    }
}
