//! Whole-program static analysis: memory bounds, plan lints, and
//! communication-plane classification (`sensorlog check`).
//!
//! Runs after [`crate::analyze`] and emits structured, span-carrying
//! [`Diagnostic`]s plus a static model of the program:
//!
//! 1. **Memory bounds** (paper Sec. V "Memory Requirements"): a per-predicate
//!    upper bound [`BoundExpr`] on the number of distinct stored tuples, as a
//!    symbolic formula over insertion-event counts `E(p)`, the XY stage count
//!    `S`, and topology parameters — evaluated against [`BoundParams`] and
//!    cross-validated at runtime by `core::invariants`.
//! 2. **Plan lints**: cartesian-product joins (a positive subgoal probed
//!    with no bound column), negated IDB subgoals forcing multi-pass
//!    evaluation, and dead predicates/rules unreachable from any declared
//!    `.output`. The boundness signatures come from [`crate::boundness`],
//!    the same analysis `eval::planner` derives its index signatures from.
//! 3. **Communication planes**: each rule is statically labeled
//!    local / neighbor-broadcast / tree-routed (the paper's PA/GPA plan
//!    split), and rules that widen the plane of an already tree-routed
//!    predicate are flagged.
//!
//! Diagnostic codes are stable strings (`mem.bound`, `plan.cartesian-join`,
//! …) so golden tests and CI can pin them; see DESIGN.md for the full table.

use crate::analyze::{analyze, Analysis, AnalyzeError};
use crate::ast::{Literal, Program, Rule};
use crate::boundness;
use crate::builtin::BuiltinRegistry;
use crate::depgraph::DepGraph;
use crate::parser::parse_program;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::unify::Subst;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A concrete, span-anchored rewrite that resolves its diagnostic
/// (rustc-style). Suggestions marked `machine_applicable` are applied
/// verbatim by `sensorlog fix`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Suggestion {
    /// Byte range of source to replace; zero-width ⇒ insertion.
    pub span: Span,
    /// Replacement source text.
    pub replacement: String,
    /// Human-readable rationale, shown as a `help:` line.
    pub note: String,
    /// Safe to apply without review (`sensorlog fix` only applies these).
    pub machine_applicable: bool,
}

/// One structured diagnostic with a stable rule-id code and source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `plan.cartesian-join`.
    pub code: &'static str,
    pub severity: Severity,
    /// Rule the diagnostic is about, if any.
    pub rule_id: Option<usize>,
    /// Predicate the diagnostic is about, if any.
    pub pred: Option<Symbol>,
    /// Source span (default = no source location).
    pub span: Span,
    pub message: String,
    /// Concrete rewrites that would resolve the diagnostic.
    pub suggestions: Vec<Suggestion>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {} ({})",
            self.severity.as_str(),
            self.code,
            self.message,
            self.span
        )
    }
}

/// Symbolic upper bound on the number of distinct tuples of a predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoundExpr {
    /// No static bound exists (value-inventing recursion, unwindowed
    /// stream feeding unbounded recursion, …).
    Unbounded,
    Const(u64),
    /// `E(p)`: distinct insertion events for base predicate `p` over the
    /// run (window-bounded streams: events live in the window).
    Events(Symbol),
    /// `S`: the XY stage count; bounded by `nodes + 1` for the paper's
    /// distance-staged programs (a shortest path visits each node once).
    Stages,
    /// `N`: the network size, used by communication-cost estimates (a
    /// routed hop count never exceeds the node count).
    Nodes,
    Sum(Vec<BoundExpr>),
    Prod(Vec<BoundExpr>),
    Pow(Box<BoundExpr>, u32),
}

impl BoundExpr {
    /// Evaluate against concrete parameters; `None` = unbounded. Arithmetic
    /// saturates at `u64::MAX` rather than wrapping.
    pub fn eval(&self, params: &BoundParams) -> Option<u64> {
        match self {
            BoundExpr::Unbounded => None,
            BoundExpr::Const(c) => Some(*c),
            BoundExpr::Events(p) => Some(
                params
                    .events
                    .get(p)
                    .copied()
                    .unwrap_or(params.default_events),
            ),
            BoundExpr::Stages => Some(params.nodes.saturating_add(1)),
            BoundExpr::Nodes => Some(params.nodes.max(1)),
            BoundExpr::Sum(xs) => xs
                .iter()
                .map(|x| x.eval(params))
                .try_fold(0u64, |a, b| Some(a.saturating_add(b?))),
            BoundExpr::Prod(xs) => xs
                .iter()
                .map(|x| x.eval(params))
                .try_fold(1u64, |a, b| Some(a.saturating_mul(b?))),
            BoundExpr::Pow(b, k) => {
                let base = b.eval(params)?;
                let mut acc = 1u64;
                for _ in 0..*k {
                    acc = acc.saturating_mul(base);
                }
                Some(acc)
            }
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Unbounded => write!(f, "unbounded"),
            BoundExpr::Const(c) => write!(f, "{c}"),
            BoundExpr::Events(p) => write!(f, "E({p})"),
            BoundExpr::Stages => write!(f, "S"),
            BoundExpr::Nodes => write!(f, "N"),
            BoundExpr::Sum(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            BoundExpr::Prod(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            BoundExpr::Pow(b, k) => write!(f, "{b}^{k}"),
        }
    }
}

/// Topology / workload parameters the bound formulas are evaluated against.
#[derive(Clone, Debug)]
pub struct BoundParams {
    /// Network size (nodes); caps the XY stage count `S = nodes + 1`.
    pub nodes: u64,
    /// `E(p)` for base predicates without an entry in `events`.
    pub default_events: u64,
    /// Observed or assumed distinct insertion events per base predicate.
    pub events: BTreeMap<Symbol, u64>,
}

impl Default for BoundParams {
    fn default() -> BoundParams {
        BoundParams {
            nodes: 1,
            default_events: 1000,
            events: BTreeMap::new(),
        }
    }
}

/// Static communication plane of a rule or predicate, ordered by width.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Plane {
    /// Evaluable on the node holding the triggering tuple.
    Local,
    /// XY-staged recursion: each stage floods one hop (paper's logicH).
    NeighborBroadcast,
    /// Multi-way join: fragments must be routed to a join point (GPA).
    TreeRouted,
}

impl Plane {
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::Local => "local",
            Plane::NeighborBroadcast => "neighbor-broadcast",
            Plane::TreeRouted => "tree-routed",
        }
    }
}

/// A predicate's static memory bound: the symbolic formula plus its value
/// under the report's parameters (`None` = unbounded).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PredBound {
    pub expr: BoundExpr,
    pub value: Option<u64>,
}

/// Output of `sensorlog check`: diagnostics + the static model.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub diags: Vec<Diagnostic>,
    /// Whole-network distinct-tuple bound per predicate.
    pub bounds: BTreeMap<Symbol, PredBound>,
    /// Communication plane per predicate (widest over its rules).
    pub planes: BTreeMap<Symbol, Plane>,
}

impl Report {
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn has_warnings(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Warning)
    }

    fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        rule_id: Option<usize>,
        pred: Option<Symbol>,
        span: Span,
        message: String,
    ) {
        self.push_sugg(code, severity, rule_id, pred, span, message, Vec::new());
    }

    #[allow(clippy::too_many_arguments)]
    fn push_sugg(
        &mut self,
        code: &'static str,
        severity: Severity,
        rule_id: Option<usize>,
        pred: Option<Symbol>,
        span: Span,
        message: String,
        suggestions: Vec<Suggestion>,
    ) {
        self.diags.push(Diagnostic {
            code,
            severity,
            rule_id,
            pred,
            span,
            message,
            suggestions,
        });
    }

    /// Deterministic machine-readable JSON (hand-rolled: stable key order,
    /// no external deps). Pinned by the golden tests.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"code\": {}", json_str(d.code)));
            s.push_str(&format!(
                ", \"severity\": {}",
                json_str(d.severity.as_str())
            ));
            match d.rule_id {
                Some(id) => s.push_str(&format!(", \"rule\": {id}")),
                None => s.push_str(", \"rule\": null"),
            }
            match d.pred {
                Some(p) => s.push_str(&format!(", \"pred\": {}", json_str(p.as_str()))),
                None => s.push_str(", \"pred\": null"),
            }
            s.push_str(&format!(
                ", \"line\": {}, \"col\": {}, \"start\": {}, \"end\": {}",
                d.span.line, d.span.col, d.span.start, d.span.end
            ));
            s.push_str(&format!(", \"message\": {}", json_str(&d.message)));
            s.push_str(", \"suggestions\": [");
            for (j, sg) in d.suggestions.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"start\": {}, \"end\": {}, \"replacement\": {}, \"note\": {}, \
                     \"machine_applicable\": {}}}",
                    sg.span.start,
                    sg.span.end,
                    json_str(&sg.replacement),
                    json_str(&sg.note),
                    sg.machine_applicable
                ));
            }
            s.push_str("]}");
        }
        if !self.diags.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"bounds\": {");
        for (i, (p, b)) in self.bounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\"formula\": {}, \"value\": {}}}",
                json_str(p.as_str()),
                json_str(&b.expr.to_string()),
                match b.value {
                    Some(v) => v.to_string(),
                    None => "null".into(),
                }
            ));
        }
        if !self.bounds.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"planes\": {");
        for (i, (p, plane)) in self.planes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {}",
                json_str(p.as_str()),
                json_str(plane.as_str())
            ));
        }
        if !self.planes.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Human-readable rendering: one diagnostic per line, followed by its
    /// suggestions as indented `help:` lines with the proposed rewrite.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diags {
            s.push_str(&d.to_string());
            s.push('\n');
            for sg in &d.suggestions {
                s.push_str(&format!(
                    "    help{}: {}\n",
                    if sg.machine_applicable {
                        " [machine-applicable]"
                    } else {
                        ""
                    },
                    sg.note
                ));
                for line in sg.replacement.lines() {
                    s.push_str(&format!("        {line}\n"));
                }
            }
        }
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Check a program source: parse + analyze + all static passes. Parse and
/// analysis failures become `error` diagnostics instead of `Err` — the
/// report is always produced.
pub fn check_source(src: &str, reg: &BuiltinRegistry, params: &BoundParams) -> Report {
    match parse_program(src) {
        Ok(prog) => check_program(&prog, reg, params),
        Err(e) => {
            let mut rep = Report::default();
            rep.push(
                "parse.error",
                Severity::Error,
                None,
                None,
                Span::new(0, 0, e.line, 0),
                e.message,
            );
            rep
        }
    }
}

/// Outcome of [`fix_source`]: the rewritten program plus an audit trail of
/// every rewrite applied.
#[derive(Clone, Debug)]
pub struct FixOutcome {
    /// Source after applying machine-applicable suggestions to a fixpoint.
    pub fixed: String,
    /// One human-readable line per applied rewrite, in application order.
    pub applied: Vec<String>,
    /// Analysis rounds spent reaching the fixpoint.
    pub rounds: usize,
    /// Machine-applicable suggestions still pending after the last round
    /// (0 at a true fixpoint; non-zero only if the round cap was hit).
    pub remaining: usize,
}

/// Maximum check→rewrite rounds in [`fix_source`]. Each round applies a
/// non-overlapping batch, so this caps pathological suggestion cascades.
const FIX_MAX_ROUNDS: usize = 8;

/// Apply every machine-applicable suggestion the analyzer emits for `src`,
/// re-checking after each batch until no suggestion remains (or the round
/// cap is hit). Within a round, suggestions are applied back-to-front by
/// byte offset; a suggestion overlapping an already-applied rewrite is
/// deferred to the next round, where the analyzer re-derives it against the
/// updated source.
pub fn fix_source(src: &str, reg: &BuiltinRegistry, params: &BoundParams) -> FixOutcome {
    let mut cur = src.to_string();
    let mut applied = Vec::new();
    let mut rounds = 0;
    let mut remaining = 0;
    while rounds < FIX_MAX_ROUNDS {
        rounds += 1;
        let rep = check_source(&cur, reg, params);
        // (start, end, replacement, audit line), machine-applicable only.
        let mut pending: Vec<(usize, usize, &str, String)> = Vec::new();
        for d in &rep.diags {
            for s in &d.suggestions {
                if !s.machine_applicable {
                    continue;
                }
                let who = d.pred.map(|p| format!(" `{p}`")).unwrap_or_default();
                pending.push((
                    s.span.start as usize,
                    s.span.end as usize,
                    &s.replacement,
                    format!("{}{}: {}", d.code, who, s.note),
                ));
            }
        }
        remaining = pending.len();
        if pending.is_empty() {
            break;
        }
        // Back-to-front so earlier offsets stay valid as we splice.
        pending.sort_by_key(|s| std::cmp::Reverse((s.0, s.1)));
        // Lowest start already rewritten this round; a later (i.e. earlier
        // in the file) suggestion reaching past it would overlap.
        let mut lo = usize::MAX;
        let mut batch = 0;
        for (start, end, replacement, line) in pending {
            if end > cur.len() || start > end {
                continue; // stale span — re-derive next round
            }
            if end > lo {
                continue; // overlaps a rewrite from this round
            }
            cur.replace_range(start..end, replacement);
            lo = start;
            applied.push(line);
            batch += 1;
            remaining -= 1;
        }
        if batch == 0 {
            break; // every pending suggestion overlapped — give up cleanly
        }
    }
    FixOutcome {
        fixed: cur,
        applied,
        rounds,
        remaining,
    }
}

/// Check a parsed program (see [`check_source`]).
pub fn check_program(prog: &Program, reg: &BuiltinRegistry, params: &BoundParams) -> Report {
    match analyze(prog, reg) {
        Ok(analysis) => check_analysis(&analysis, params),
        Err(e) => {
            let mut rep = Report::default();
            let (code, rule_id, pred, span, msg) = match &e {
                AnalyzeError::Safety(s) => (
                    "safety.unbound",
                    Some(s.rule_id),
                    None,
                    s.span,
                    e.to_string(),
                ),
                AnalyzeError::NotXYStratifiable { stratify, .. } => (
                    "stratify.negation-cycle",
                    Some(stratify.cycle_edge.2),
                    Some(stratify.cycle_edge.0),
                    stratify.span,
                    e.to_string(),
                ),
                AnalyzeError::NegatedBuiltin {
                    rule_id,
                    pred,
                    span,
                } => (
                    "safety.negated-builtin",
                    Some(*rule_id),
                    Some(*pred),
                    *span,
                    e.to_string(),
                ),
                AnalyzeError::ArityMismatch {
                    pred,
                    rule_id,
                    span,
                    ..
                } => (
                    "arity.mismatch",
                    Some(*rule_id),
                    Some(*pred),
                    *span,
                    e.to_string(),
                ),
            };
            rep.push(code, Severity::Error, rule_id, pred, span, msg);
            rep
        }
    }
}

/// All static passes over a validated program.
pub fn check_analysis(analysis: &Analysis, params: &BoundParams) -> Report {
    let mut rep = Report::default();
    let prog = &analysis.program;
    let g = DepGraph::build(prog);

    // Pass 1: memory bounds (frontier-width pass; falls back to the legacy
    // S·Σ contribution wherever a rule is not provably tighter).
    let fr = crate::absint::frontier(analysis);
    let bounds = &fr.bounds;
    for (p, expr) in bounds {
        let value = expr.eval(params);
        if *expr == BoundExpr::Unbounded && prog.idb_preds().contains(p) {
            let span = prog
                .rules_for(*p)
                .next()
                .map(|r| r.spans.rule)
                .unwrap_or_default();
            rep.push(
                "mem.unbounded",
                Severity::Warning,
                None,
                Some(*p),
                span,
                format!("no static memory bound for `{p}`: value-inventing or un-staged recursion"),
            );
        } else if prog.idb_preds().contains(p) {
            let span = prog
                .rules_for(*p)
                .next()
                .map(|r| r.spans.rule)
                .unwrap_or_default();
            rep.push(
                "mem.bound",
                Severity::Info,
                None,
                Some(*p),
                span,
                format!(
                    "static tuple bound for `{p}`: {} = {}",
                    expr,
                    match value {
                        Some(v) => v.to_string(),
                        None => "unbounded".into(),
                    }
                ),
            );
        }
        rep.bounds.insert(
            *p,
            PredBound {
                expr: expr.clone(),
                value,
            },
        );
    }

    // Unwindowed, undeclared base streams grow without bound. Anchor the
    // warning at the first body literal that consumes the stream.
    for p in prog.edb_preds() {
        if !prog.windows.contains_key(&p) && !prog.declared_base.contains(&p) {
            let span = prog
                .rules
                .iter()
                .find_map(|r| {
                    r.body.iter().enumerate().find_map(|(i, l)| match l {
                        Literal::Pos(a) | Literal::Neg(a) if a.pred == p => Some(r.spans.lit(i)),
                        _ => None,
                    })
                })
                .unwrap_or_default();
            rep.push_sugg(
                "mem.window.unbounded",
                Severity::Warning,
                None,
                Some(p),
                span,
                format!(
                    "base stream `{p}` has no `.window` and is not declared `.base`: \
                     stored tuples grow without bound"
                ),
                vec![Suggestion {
                    span: Span::new(0, 0, 1, 1),
                    replacement: format!(".window {p} 60000.\n"),
                    note: format!("declare a sliding window so `{p}` tuples expire"),
                    machine_applicable: true,
                }],
            );
        }
    }

    // Pass 2: plan lints.
    let idb = prog.idb_preds();
    for rule in &prog.rules {
        let order = boundness::order_literals(&rule.body, None);
        let plan = boundness::probe_plan(&rule.body, &order, None, &Subst::new());
        for (pos_in_order, &i) in order.iter().enumerate() {
            if pos_in_order == 0 {
                continue; // the first literal always scans
            }
            if let Literal::Pos(a) = &rule.body[i] {
                if plan[i].is_empty() && !a.args.is_empty() {
                    // No bound column: every already-bound tuple pairs with
                    // every tuple of `a` — a cartesian product. If a later
                    // comparison constrains the pairing, the join is still
                    // index-less but selective: downgrade to info.
                    let a_vars: BTreeSet<Symbol> = a.vars().into_iter().collect();
                    let constrained = rule.body.iter().any(|l| {
                        if let Literal::Cmp(..) = l {
                            let mut vs = Vec::new();
                            l.collect_vars(&mut vs);
                            vs.iter().any(|v| a_vars.contains(v))
                                && vs.iter().any(|v| !a_vars.contains(v))
                        } else {
                            false
                        }
                    });
                    let (code, sev, what) = if constrained {
                        (
                            "plan.no-index",
                            Severity::Info,
                            "comparison-constrained but index-less join",
                        )
                    } else {
                        ("plan.cartesian-join", Severity::Warning, "cartesian join")
                    };
                    rep.push(
                        code,
                        sev,
                        Some(rule.id),
                        Some(a.pred),
                        rule.spans.lit(i),
                        format!(
                            "rule #{}: subgoal `{}` is probed with no bound column ({})",
                            rule.id, a.pred, what
                        ),
                    );
                }
            }
        }
        // Negated IDB subgoals force the negated predicate's stratum to
        // fully evaluate before this rule can fire (multi-pass).
        for (i, lit) in rule.body.iter().enumerate() {
            if let Literal::Neg(a) = lit {
                if idb.contains(&a.pred) {
                    rep.push(
                        "plan.negation-multipass",
                        Severity::Info,
                        Some(rule.id),
                        Some(a.pred),
                        rule.spans.lit(i),
                        format!(
                            "rule #{}: negated derived subgoal `{}` forces multi-pass \
                             (stratum-ordered) evaluation",
                            rule.id, a.pred
                        ),
                    );
                }
            }
        }
    }

    // Dead code: predicates/rules unreachable from any declared output.
    if !prog.outputs.is_empty() {
        let live = g.reachable_from(&prog.outputs);
        for p in prog.all_preds() {
            if !live.contains(&p) {
                rep.push(
                    "plan.dead-pred",
                    Severity::Warning,
                    None,
                    Some(p),
                    prog.rules_for(p)
                        .next()
                        .map(|r| r.spans.rule)
                        .unwrap_or_default(),
                    format!("predicate `{p}` is unreachable from any `.output` query"),
                );
            }
        }
        for rule in &prog.rules {
            if !live.contains(&rule.head.pred) {
                rep.push(
                    "plan.dead-rule",
                    Severity::Warning,
                    Some(rule.id),
                    Some(rule.head.pred),
                    rule.spans.rule,
                    format!(
                        "rule #{} derives dead predicate `{}`",
                        rule.id, rule.head.pred
                    ),
                );
            }
        }
    }

    // Pass 3: communication planes.
    let planes = comm_planes(analysis);
    for (p, plane) in &planes {
        if idb.contains(p) {
            rep.push(
                "comm.plane",
                Severity::Info,
                None,
                Some(*p),
                prog.rules_for(*p)
                    .next()
                    .map(|r| r.spans.rule)
                    .unwrap_or_default(),
                format!("predicate `{p}` evaluates on the {} plane", plane.as_str()),
            );
        }
    }
    for rule in &prog.rules {
        if rule_plane(analysis, rule) == Plane::TreeRouted {
            for (i, lit) in rule.body.iter().enumerate() {
                if let Literal::Pos(a) = lit {
                    if idb.contains(&a.pred) && planes.get(&a.pred) == Some(&Plane::TreeRouted) {
                        let suggestions = split_suggestion(prog, rule, i)
                            .into_iter()
                            .collect::<Vec<_>>();
                        let detail = match suggestions.first() {
                            Some(s) => {
                                let aux = s.replacement.lines().next().unwrap_or("").to_string();
                                format!(" — split the join at `{}` via `{aux}`", a.pred)
                            }
                            None => " (consider staging or localizing)".to_string(),
                        };
                        rep.push_sugg(
                            "comm.widen",
                            Severity::Warning,
                            Some(rule.id),
                            Some(a.pred),
                            rule.spans.lit(i),
                            format!(
                                "rule #{}: tree-routed join consumes already tree-routed `{}` — \
                                 communication plane widens{detail}",
                                rule.id, a.pred
                            ),
                            suggestions,
                        );
                    }
                }
            }
        }
    }

    // Pass 4: communication-cost lints from the frontier pass.
    for (p, cost) in &fr.comm {
        if !idb.contains(p) {
            continue;
        }
        let value = cost.msgs.eval(params);
        rep.push(
            "cost.comm-estimate",
            Severity::Info,
            None,
            Some(*p),
            prog.rules_for(*p)
                .next()
                .map(|r| r.spans.rule)
                .unwrap_or_default(),
            format!(
                "estimated messages attributable to `{p}` ({} plane): {} = {}",
                cost.plane.as_str(),
                cost.msgs,
                match value {
                    Some(v) => v.to_string(),
                    None => "unbounded".into(),
                }
            ),
        );
    }
    // XY-staged predicates retract and re-derive across stages; an
    // undeclared hold-down means the planner default applies silently.
    // Suggest declaring the default explicitly (behavior-neutral).
    for info in &analysis.xy {
        for (i, &p) in info.stage_order.iter().enumerate() {
            if prog.holddowns.contains_key(&p) || !idb.contains(&p) {
                continue;
            }
            let default_ms = 100 + (i as u64) * 2_000;
            rep.push_sugg(
                "cost.holddown-implicit",
                Severity::Info,
                None,
                Some(p),
                prog.rules_for(p)
                    .next()
                    .map(|r| r.spans.rule)
                    .unwrap_or_default(),
                format!(
                    "XY-staged predicate `{p}` has no `.holddown` declaration; \
                     the planner default ({default_ms} ms) applies silently"
                ),
                vec![Suggestion {
                    span: Span::new(0, 0, 1, 1),
                    replacement: format!(".holddown {p} {default_ms}.\n"),
                    note: format!("declare the retraction hold-down for `{p}` explicitly"),
                    machine_applicable: true,
                }],
            );
        }
    }
    rep.planes = planes;
    rep
}

/// Build the machine-applicable rewrite for a widening join: hoist body
/// literal `i` of `rule` into a fresh single-subgoal (local-plane) helper
/// rule, projecting only the columns the rest of the rule consumes, and
/// replace the subgoal with the helper. Returns `None` when the rule
/// aggregates or the subgoal shares no variables with the rest of the rule
/// (splitting would not help).
fn split_suggestion(prog: &Program, rule: &Rule, i: usize) -> Option<Suggestion> {
    use crate::ast::Atom;
    if rule.agg.is_some() || !rule.spans.rule.is_known() {
        return None;
    }
    let Literal::Pos(a) = &rule.body[i] else {
        return None;
    };
    // Fresh helper name.
    let all = prog.all_preds();
    let mut name = format!("{}_local", a.pred);
    let mut n = 1;
    while all.contains(&Symbol::intern(&name)) {
        n += 1;
        name = format!("{}_local{n}", a.pred);
    }
    // Keep the subgoal columns the rest of the rule (head or other
    // literals) actually consumes, in first-occurrence order.
    let mut outside: BTreeSet<Symbol> = rule.head.vars().into_iter().collect();
    for (j, l) in rule.body.iter().enumerate() {
        if j != i {
            let mut vs = Vec::new();
            l.collect_vars(&mut vs);
            outside.extend(vs);
        }
    }
    let mut keep: Vec<Symbol> = Vec::new();
    for v in a.vars() {
        if outside.contains(&v) && !keep.contains(&v) {
            keep.push(v);
        }
    }
    if keep.is_empty() {
        return None;
    }
    let aux_atom = Atom::new(&name, keep.iter().map(|v| Term::Var(*v)).collect());
    let aux_rule = Rule {
        id: 0,
        head: aux_atom.clone(),
        body: vec![Literal::Pos(a.clone())],
        agg: None,
        spans: Default::default(),
    };
    let mut rewritten = rule.clone();
    rewritten.body[i] = Literal::Pos(aux_atom);
    Some(Suggestion {
        span: rule.spans.rule,
        replacement: format!("{aux_rule}\n{rewritten}"),
        note: format!(
            "hoist `{}` into local-plane helper `{name}` so the join consumes it locally",
            a.pred
        ),
        machine_applicable: true,
    })
}

/// Static plane of one rule: XY-staged heads flood one hop per stage;
/// multi-way joins route fragments to a join point; everything else is
/// local to the node holding the triggering tuple.
pub fn rule_plane(analysis: &Analysis, rule: &Rule) -> Plane {
    let in_xy = analysis
        .xy
        .iter()
        .any(|info| info.scc.contains(&rule.head.pred));
    if in_xy {
        return Plane::NeighborBroadcast;
    }
    let positives = rule.body.iter().filter(|l| l.is_positive_rel()).count();
    if positives >= 2 {
        Plane::TreeRouted
    } else {
        Plane::Local
    }
}

/// Plane per predicate: the widest plane over its rules; base predicates
/// are local (they are stored where sensed).
pub fn comm_planes(analysis: &Analysis) -> BTreeMap<Symbol, Plane> {
    let prog = &analysis.program;
    let mut out: BTreeMap<Symbol, Plane> = BTreeMap::new();
    for p in prog.edb_preds() {
        out.insert(p, Plane::Local);
    }
    for rule in &prog.rules {
        let plane = rule_plane(analysis, rule);
        let e = out.entry(rule.head.pred).or_insert(Plane::Local);
        if plane > *e {
            *e = plane;
        }
    }
    out
}

/// True if a term contains a function application (value invention under
/// recursion ⇒ no finite Herbrand bound).
fn has_fn_symbol(t: &Term) -> bool {
    matches!(t, Term::App(..))
}

/// Derive the whole-network distinct-tuple bound per predicate (Sec. V).
///
/// Walks SCCs dependencies-first:
/// * base predicate → `E(p)` insertion events;
/// * non-recursive predicate → Σ over its rules of Π of positive-subgoal
///   bounds (each solution of the body derives at most one head tuple);
/// * XY-staged SCC → `S ×` per-stage bound, where the per-stage bound of a
///   rule is Π of its *out-of-SCC* positive-subgoal bounds (each stage
///   re-derives from scratch off the previous stage, keyed by the base
///   tuples it joins with);
/// * other recursion → Herbrand bound `D^arity` over the constants `D`
///   carried by base tuples, or unbounded when heads invent values.
pub fn memory_bounds(analysis: &Analysis) -> BTreeMap<Symbol, BoundExpr> {
    let prog = &analysis.program;
    let g = DepGraph::build(prog);
    let edb = prog.edb_preds();
    let idb = prog.idb_preds();
    let mut bounds: BTreeMap<Symbol, BoundExpr> = BTreeMap::new();
    for &p in &edb {
        bounds.insert(p, BoundExpr::Events(p));
    }

    // Domain size for Herbrand bounds: constants carried by base tuples.
    let herbrand_domain = || {
        let parts: Vec<BoundExpr> = edb
            .iter()
            .map(|&p| {
                let arity = prog.arity_of(p).unwrap_or(1).max(1) as u64;
                BoundExpr::Prod(vec![BoundExpr::Const(arity), BoundExpr::Events(p)])
            })
            .collect();
        if parts.is_empty() {
            BoundExpr::Const(1)
        } else {
            BoundExpr::Sum(parts)
        }
    };

    let body_product = |rule: &Rule,
                        skip_scc: Option<&BTreeSet<Symbol>>,
                        bounds: &BTreeMap<Symbol, BoundExpr>|
     -> BoundExpr {
        let mut factors: Vec<BoundExpr> = Vec::new();
        for lit in &rule.body {
            if let Literal::Pos(a) = lit {
                if let Some(scc) = skip_scc {
                    if scc.contains(&a.pred) {
                        continue;
                    }
                }
                match bounds.get(&a.pred) {
                    Some(BoundExpr::Unbounded) | None => return BoundExpr::Unbounded,
                    Some(b) => factors.push(b.clone()),
                }
            }
        }
        if factors.is_empty() {
            BoundExpr::Const(1)
        } else if factors.len() == 1 {
            factors.pop().expect("one factor")
        } else {
            BoundExpr::Prod(factors)
        }
    };

    for scc in g.sccs() {
        // reverse topological: dependencies first
        let members: Vec<Symbol> = scc.iter().filter(|p| idb.contains(p)).copied().collect();
        if members.is_empty() {
            continue;
        }
        let scc_set: BTreeSet<Symbol> = scc.iter().copied().collect();
        let recursive = scc.len() > 1
            || scc
                .iter()
                .any(|&p| g.succ(p).any(|(q, _, _)| scc_set.contains(q)));
        if !recursive {
            let p = members[0];
            let terms: Vec<BoundExpr> = prog
                .rules_for(p)
                .map(|r| body_product(r, None, &bounds))
                .collect();
            let b = if terms.contains(&BoundExpr::Unbounded) {
                BoundExpr::Unbounded
            } else if terms.len() == 1 {
                terms.into_iter().next().expect("one rule")
            } else {
                BoundExpr::Sum(terms)
            };
            bounds.insert(p, b);
            continue;
        }
        let is_xy = analysis
            .xy
            .iter()
            .any(|info| members.iter().all(|p| info.scc.contains(p)));
        if is_xy {
            // Per stage, each rule derives at most Π(out-of-SCC positive
            // bounds) tuples; rules joining only in-SCC tuples have no such
            // anchor and are unbounded.
            for &p in &members {
                let mut per_stage: Vec<BoundExpr> = Vec::new();
                let mut unbounded = false;
                for r in prog.rules_for(p) {
                    let anchored = r.body.is_empty()
                        || r.body
                            .iter()
                            .any(|l| matches!(l, Literal::Pos(a) if !scc_set.contains(&a.pred)));
                    if !anchored {
                        unbounded = true;
                        break;
                    }
                    per_stage.push(body_product(r, Some(&scc_set), &bounds));
                }
                let b = if unbounded || per_stage.contains(&BoundExpr::Unbounded) {
                    BoundExpr::Unbounded
                } else {
                    let inner = if per_stage.len() == 1 {
                        per_stage.into_iter().next().expect("one rule")
                    } else {
                        BoundExpr::Sum(per_stage)
                    };
                    BoundExpr::Prod(vec![BoundExpr::Stages, inner])
                };
                bounds.insert(p, b);
            }
            continue;
        }
        // Plain (positive) recursion: Herbrand-bounded unless heads invent
        // values via function symbols.
        let invents = prog
            .rules
            .iter()
            .filter(|r| scc_set.contains(&r.head.pred))
            .any(|r| r.head.args.iter().any(has_fn_symbol));
        for &p in &members {
            let b = if invents {
                BoundExpr::Unbounded
            } else {
                let arity = prog.arity_of(p).unwrap_or(0) as u32;
                BoundExpr::Pow(Box::new(herbrand_domain()), arity)
            };
            bounds.insert(p, b);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> BuiltinRegistry {
        BuiltinRegistry::standard()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    const LOGIC_H: &str = r#"
        .base g.
        .output h.
        h(a, a, 0).
        h(a, X, 1) :- g(a, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;

    #[test]
    fn logich_bounds_are_stage_scaled() {
        let prog = parse_program(LOGIC_H).unwrap();
        let analysis = analyze(&prog, &reg()).unwrap();
        let bounds = memory_bounds(&analysis);
        let params = BoundParams {
            nodes: 200,
            default_events: 740,
            events: BTreeMap::new(),
        };
        let h = bounds[&sym("h")].eval(&params).expect("finite");
        let hp = bounds[&sym("hp")].eval(&params).expect("finite");
        // h: S * (1 + E(g) + E(g)); hp: S * E(g); S = 201.
        assert_eq!(h, 201 * (1 + 740 + 740));
        assert_eq!(hp, 201 * 740);
    }

    #[test]
    fn nonrecursive_bound_is_body_product() {
        let prog = parse_program(
            r#"
            .base e.
            q(X, Z) :- e(X, Y), e(Y, Z).
            "#,
        )
        .unwrap();
        let analysis = analyze(&prog, &reg()).unwrap();
        let bounds = memory_bounds(&analysis);
        let params = BoundParams {
            nodes: 1,
            default_events: 10,
            events: BTreeMap::new(),
        };
        assert_eq!(bounds[&sym("q")].eval(&params), Some(100));
    }

    #[test]
    fn transitive_closure_gets_herbrand_bound() {
        let prog = parse_program(
            r#"
            .base e.
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        )
        .unwrap();
        let analysis = analyze(&prog, &reg()).unwrap();
        let bounds = memory_bounds(&analysis);
        let params = BoundParams {
            nodes: 1,
            default_events: 10,
            events: BTreeMap::new(),
        };
        // D = 2*E(e) = 20 constants; t/2 ≤ D² = 400.
        assert_eq!(bounds[&sym("t")].eval(&params), Some(400));
    }

    #[test]
    fn value_invention_is_unbounded() {
        let prog = parse_program(
            r#"
            .base e.
            n(s(X)) :- n(X), e(X).
            n(X) :- e(X).
            "#,
        )
        .unwrap();
        let analysis = analyze(&prog, &reg()).unwrap();
        let bounds = memory_bounds(&analysis);
        assert_eq!(bounds[&sym("n")], BoundExpr::Unbounded);
        let rep = check_analysis(&analysis, &BoundParams::default());
        assert!(rep.diags.iter().any(|d| d.code == "mem.unbounded"));
    }

    #[test]
    fn cartesian_join_flagged() {
        let rep = check_source(
            ".base p.\n.base q.\nr(X, Y) :- p(X), q(Y).",
            &reg(),
            &BoundParams::default(),
        );
        let d = rep
            .diags
            .iter()
            .find(|d| d.code == "plan.cartesian-join")
            .expect("cartesian join diagnostic");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.pred, Some(sym("q")));
        assert!(d.span.is_known());
    }

    #[test]
    fn comparison_constrained_join_downgraded() {
        let rep = check_source(
            ".base p.\n.base q.\nr(X, Y) :- p(X), q(Y), X < Y.",
            &reg(),
            &BoundParams::default(),
        );
        assert!(rep.diags.iter().any(|d| d.code == "plan.no-index"));
        assert!(!rep.diags.iter().any(|d| d.code == "plan.cartesian-join"));
    }

    #[test]
    fn dead_predicates_flagged() {
        let rep = check_source(
            ".base e.\n.output q.\nq(X) :- e(X).\nzombie(X) :- e(X).",
            &reg(),
            &BoundParams::default(),
        );
        assert!(rep
            .diags
            .iter()
            .any(|d| d.code == "plan.dead-pred" && d.pred == Some(sym("zombie"))));
        assert!(rep.diags.iter().any(|d| d.code == "plan.dead-rule"));
    }

    #[test]
    fn unsafe_program_reports_span() {
        let rep = check_source("q(X, Z) :- p(X).", &reg(), &BoundParams::default());
        assert!(rep.has_errors());
        let d = &rep.diags[0];
        assert_eq!(d.code, "safety.unbound");
        assert_eq!(d.span.line, 1);
    }

    #[test]
    fn unwindowed_stream_flagged() {
        let rep = check_source("q(X) :- p(X).", &reg(), &BoundParams::default());
        assert!(rep
            .diags
            .iter()
            .any(|d| d.code == "mem.window.unbounded" && d.pred == Some(sym("p"))));
        let quiet = check_source(
            ".window p 1000.\nq(X) :- p(X).",
            &reg(),
            &BoundParams::default(),
        );
        assert!(!quiet.diags.iter().any(|d| d.code == "mem.window.unbounded"));
    }

    #[test]
    fn planes_classified() {
        let prog = parse_program(LOGIC_H).unwrap();
        let analysis = analyze(&prog, &reg()).unwrap();
        let planes = comm_planes(&analysis);
        assert_eq!(planes[&sym("h")], Plane::NeighborBroadcast);
        assert_eq!(planes[&sym("g")], Plane::Local);
        let join = parse_program(".base p.\n.base q.\nr(X) :- p(X, Y), q(Y, X).").unwrap();
        let a2 = analyze(&join, &reg()).unwrap();
        assert_eq!(comm_planes(&a2)[&sym("r")], Plane::TreeRouted);
    }

    #[test]
    fn json_is_valid_and_stable() {
        let rep = check_source(LOGIC_H, &reg(), &BoundParams::default());
        let j1 = rep.to_json();
        let rep2 = check_source(LOGIC_H, &reg(), &BoundParams::default());
        assert_eq!(j1, rep2.to_json());
        assert!(j1.contains("\"bounds\""));
        assert!(j1.contains("\"planes\""));
        // Quotes/newlines escape cleanly.
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }
}
