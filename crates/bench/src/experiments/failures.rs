//! Fig. 13: node-failure robustness — the motivation the paper gives for
//! avoiding central collection ("may result in quick failure of the nodes
//! close to the server, rendering the central server disconnected from the
//! network", Sec. III-A). We crash a node mid-run and measure what fraction
//! of the expected results each strategy can still produce/serve.

use crate::table::{f2, Table};
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::oracle;
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::Symbol;
use sensorlog_netsim::{NodeId, SimConfig, Topology};

const JOIN3: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// One run: crash `victim` halfway through the workload; return
/// (completeness, soundness).
fn run_with_failure(strategy: Strategy, victim: NodeId) -> (f64, f64) {
    let topo = Topology::square_grid(8);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 71,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let events = UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 8_000,
        duration: 32_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        groups: 64,
        seed: 15,
    }
    .events(&topo);
    d.schedule_all(events.clone());
    // First half of the run, then the crash, then the rest.
    d.run(16_000);
    d.fail_node(victim);
    d.run(60_000_000);
    // The oracle sees every *scheduled* event (the crashed node's own
    // readings included): the completeness deficit is what the failure cost.
    let report = oracle::check(&d, &events, sym("q"));
    (report.completeness(), report.soundness())
}

/// Fig. 13: kill (a) the central node — Centroid's server — and (b) a
/// corner node, under PA and Centroid.
pub fn fig13() -> Table {
    let mut t = Table::new(
        "fig13",
        "node failure at T/2 (8x8 grid): result completeness after the crash",
        &[
            "victim",
            "PA compl",
            "PA sound",
            "Centroid compl",
            "Centroid sound",
        ],
    );
    let topo = Topology::square_grid(8);
    let center = Strategy::center(&topo);
    let corner = NodeId(0);
    for (label, victim) in [("center (the server)", center), ("corner node", corner)] {
        let (pa_c, pa_s) = run_with_failure(Strategy::Perpendicular { band_width: 1.0 }, victim);
        let (ce_c, ce_s) = run_with_failure(Strategy::Centroid, victim);
        t.row(vec![label.into(), f2(pa_c), f2(pa_s), f2(ce_c), f2(ce_s)]);
    }
    t
}
