//! Quickstart: write a deductive program, run it centrally, then deploy it
//! on a simulated sensor network and watch the distributed evaluation agree
//! with the centralized one.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sensorlog::prelude::*;

const PROGRAM: &str = r#"
    % Pair up same-key readings from two sensor streams.
    .output pair.
    pair(X, Y, K) :- temp(N1, X, K), humid(N2, Y, K).
"#;

fn main() {
    // ---------------------------------------------------------------
    // 1. Parse + analyze: the frontend classifies the program.
    // ---------------------------------------------------------------
    let prog = parse_program(PROGRAM).expect("parses");
    let analysis = analyze(&prog, &BuiltinRegistry::standard()).expect("analyzes");
    println!("program class: {:?}", analysis.class);
    for rule in &analysis.program.rules {
        println!("  {rule}");
    }

    // ---------------------------------------------------------------
    // 2. Centralized evaluation over a small fact base.
    // ---------------------------------------------------------------
    let engine = Engine::new(analysis, BuiltinRegistry::standard());
    let mut edb = Database::new();
    edb.load_facts(
        r#"
        temp(3, 21, 1).
        temp(9, 24, 2).
        humid(5, 60, 1).
        humid(7, 55, 9).
        "#,
    )
    .unwrap();
    let out = engine.run(&edb).unwrap();
    println!("\ncentralized results:");
    for t in out.sorted(Symbol::intern("pair")) {
        println!("  pair{t}");
    }

    // ---------------------------------------------------------------
    // 3. Distributed: deploy on a 4x4 grid with the Perpendicular
    //    Approach, inject the same readings at their sensing nodes.
    // ---------------------------------------------------------------
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        PROGRAM,
        BuiltinRegistry::standard(),
        topo,
        DeployConfig::default(),
    )
    .unwrap();
    let mk = |src: &str| {
        let (p, args) = parse_fact(src).unwrap();
        (p, Tuple::new(args))
    };
    let raw = [
        (10u64, 3u32, "temp(3, 21, 1)"),
        (500, 9, "temp(9, 24, 2)"),
        (900, 5, "humid(5, 60, 1)"),
        (1400, 7, "humid(7, 55, 9)"),
    ];
    let events: Vec<WorkloadEvent> = raw
        .iter()
        .map(|&(at, node, fact)| {
            let (pred, tuple) = mk(fact);
            WorkloadEvent {
                at,
                node: NodeId(node),
                pred,
                tuple,
                kind: UpdateKind::Insert,
            }
        })
        .collect();
    d.schedule_all(events.clone());
    d.run(60_000);

    println!("\ndistributed results (gathered from owner nodes):");
    for t in d.results(Symbol::intern("pair")) {
        println!("  pair{t}");
    }
    println!(
        "\nnetwork cost: {} messages ({} storage, {} probe, {} result)",
        d.metrics().total_tx(),
        &d.metrics().tx_of("store"),
        &d.metrics().tx_of("probe"),
        &d.metrics().tx_of("result"),
    );

    // ---------------------------------------------------------------
    // 4. The oracle check: distributed == centralized at quiescence.
    // ---------------------------------------------------------------
    let report = oracle::check(&d, &events, Symbol::intern("pair"));
    assert!(report.exact(), "distributed run diverged from the oracle");
    println!("\noracle check: exact ({} result tuples)", report.expected);
}
