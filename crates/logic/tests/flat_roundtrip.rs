//! Property tests: the flat interned representation is lossless and
//! order-faithful.
//!
//! `Term ⇄ Tuple` round-trips over arbitrary ground terms — nested `App`
//! lists, extreme integers, and the `F64` edge cases (`-0.0`, `NaN`) — and
//! the pool's sort keys reproduce boxed `Term` order exactly. These are the
//! invariants that let the evaluators keep only ids on the hot path and the
//! trie index rely on memcmp over concatenated sort keys.

use proptest::prelude::*;
use sensorlog_logic::intern;
use sensorlog_logic::term::F64;
use sensorlog_logic::{Symbol, Term, Tuple};

/// Arbitrary *ground* terms, including nested applications and list sugar.
fn ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Term::Int),
        prop_oneof![
            any::<f64>().prop_map(|v| Term::Float(F64::new(v))),
            Just(Term::Float(F64::new(-0.0))),
            Just(Term::Float(F64::new(0.0))),
            Just(Term::Float(F64::new(f64::NAN))),
            Just(Term::Float(F64::new(f64::NEG_INFINITY))),
        ],
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::Str(Symbol::intern(&s))),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::Atom(Symbol::intern(&s))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                "[a-z][a-z0-9_]{0,4}",
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(f, kids)| Term::App(Symbol::intern(&f), kids.into())),
            // List sugar: nested cons cells, the shape aggregate payloads use.
            prop::collection::vec(inner, 0..3).prop_map(|items| {
                items
                    .into_iter()
                    .rev()
                    .fold(Term::nil(), |tail, head| Term::cons(head, tail))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning then resolving any ground term is the identity.
    #[test]
    fn intern_resolve_round_trip(t in ground_term()) {
        let id = intern::intern_term(&t).expect("ground terms intern");
        prop_assert_eq!(intern::resolve(id), t);
    }

    /// Tuples survive the flat representation: `Tuple::new` interns every
    /// argument, `terms()` resolves them back.
    #[test]
    fn tuple_term_round_trip(args in prop::collection::vec(ground_term(), 0..9)) {
        let tuple = Tuple::new(args.clone());
        prop_assert_eq!(tuple.arity(), args.len());
        prop_assert_eq!(tuple.terms(), args.clone());
        for (i, a) in args.iter().enumerate() {
            prop_assert_eq!(&tuple.get(i), a);
        }
        // Rebuilding from the raw ids is the same tuple.
        prop_assert_eq!(Tuple::from_ids(tuple.ids().to_vec()), tuple);
    }

    /// Interning is injective on distinct terms and idempotent on equal
    /// ones: id equality coincides with term equality.
    #[test]
    fn id_equality_is_term_equality(a in ground_term(), b in ground_term()) {
        let ia = intern::intern_term(&a).unwrap();
        let ib = intern::intern_term(&b).unwrap();
        prop_assert_eq!(ia == ib, a == b);
    }

    /// Pool order (memcmp over sort keys, what the trie index walks)
    /// equals boxed `Term` order.
    #[test]
    fn sort_key_order_matches_term_order(a in ground_term(), b in ground_term()) {
        let ia = intern::intern_term(&a).unwrap();
        let ib = intern::intern_term(&b).unwrap();
        prop_assert_eq!(intern::cmp_ids(ia, ib), a.cmp(&b));
    }

    /// Variables never intern (flat tuples are ground by construction).
    #[test]
    fn non_ground_terms_do_not_intern(v in "[A-Z][a-z0-9]{0,4}") {
        let open = Term::app("p", vec![Term::var(&v), Term::Int(1)]);
        prop_assert_eq!(intern::intern_term(&open), None);
    }
}
