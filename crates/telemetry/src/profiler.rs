//! Span-based phase profiler with zero-cost-when-disabled guards.
//!
//! The enabled/disabled split mirrors `netsim`'s `TraceSink` pattern: a
//! disabled [`Profiler`] is a `None` and both `span()` and `record_sim()`
//! are a single branch. Wall time is measured with `Instant` on guard drop;
//! simulated time is recorded explicitly by the instrumented code (the
//! simulator's clock, not ours). Wall times never feed anything
//! determinism-sensitive — they are export-only.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Aggregate for one phase name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of completed spans plus `record_sim` calls.
    pub count: u64,
    /// Total wall time across spans, nanoseconds.
    pub wall_ns: u64,
    /// Total simulated time recorded, milliseconds (the sim's tick unit).
    pub sim_ms: u64,
}

type Phases = Arc<Mutex<BTreeMap<&'static str, PhaseStat>>>;

/// Cheap clone-handle; all clones share one phase table.
#[derive(Clone, Default)]
pub struct Profiler {
    phases: Option<Phases>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.phases.is_some() {
            "Profiler(enabled)"
        } else {
            "Profiler(disabled)"
        })
    }
}

impl Profiler {
    pub fn enabled() -> Self {
        Profiler {
            phases: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    pub fn disabled() -> Self {
        Profiler::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.phases.is_some()
    }

    /// Open a wall-time span; elapsed time is added to `phase` when the
    /// guard drops. On a disabled profiler this is one branch and no clock
    /// read.
    #[inline]
    pub fn span(&self, phase: &'static str) -> Span {
        match &self.phases {
            Some(p) => Span {
                inner: Some((Arc::clone(p), phase, Instant::now())),
            },
            None => Span::inert(),
        }
    }

    /// Add `dt` simulated milliseconds to `phase`.
    #[inline]
    pub fn record_sim(&self, phase: &'static str, dt: u64) {
        if let Some(p) = &self.phases {
            let mut map = p.lock();
            let stat = map.entry(phase).or_default();
            stat.count += 1;
            stat.sim_ms += dt;
        }
    }

    /// Add raw wall nanoseconds to `phase` (for pre-measured intervals).
    pub fn record_wall_ns(&self, phase: &'static str, ns: u64) {
        if let Some(p) = &self.phases {
            let mut map = p.lock();
            let stat = map.entry(phase).or_default();
            stat.count += 1;
            stat.wall_ns += ns;
        }
    }

    /// Snapshot of all phases, sorted by name.
    pub fn phases(&self) -> Vec<(&'static str, PhaseStat)> {
        match &self.phases {
            Some(p) => p.lock().iter().map(|(k, v)| (*k, *v)).collect(),
            None => Vec::new(),
        }
    }
}

/// Wall-time span guard returned by [`Profiler::span`].
pub struct Span {
    inner: Option<(Phases, &'static str, Instant)>,
}

impl Span {
    /// The no-op guard of a disabled profiler.
    pub fn inert() -> Self {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((phases, phase, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos() as u64;
            let mut map = phases.lock();
            let stat = map.entry(phase).or_default();
            stat.count += 1;
            stat.wall_ns += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        drop(p.span("x"));
        p.record_sim("x", 5);
        assert!(p.phases().is_empty());
    }

    #[test]
    fn spans_aggregate_per_phase() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            let _s = p.span("round");
        }
        {
            let _outer = p.span("outer");
            let _inner = p.span("round"); // nesting is fine; phases are independent
        }
        let phases = p.phases();
        let round = phases.iter().find(|(n, _)| *n == "round").unwrap().1;
        assert_eq!(round.count, 4);
        let outer = phases.iter().find(|(n, _)| *n == "outer").unwrap().1;
        assert_eq!(outer.count, 1);
    }

    #[test]
    fn sim_time_accumulates_separately() {
        let p = Profiler::enabled();
        p.record_sim("join.latency", 120);
        p.record_sim("join.latency", 30);
        let stat = p.phases()[0].1;
        assert_eq!(stat.sim_ms, 150);
        assert_eq!(stat.count, 2);
        assert_eq!(stat.wall_ns, 0);
    }

    #[test]
    fn clones_share_the_table() {
        let p = Profiler::enabled();
        let q = p.clone();
        drop(q.span("a"));
        assert_eq!(p.phases().len(), 1);
    }
}
