//! Fig. 9 (robustness under message loss) and Table 2 (the testbed
//! profile: clock skew + jittered delays + asymmetric links).

use crate::common::{run_case, run_cases, CaseSpec};
use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Fig. 9: result completeness vs per-transmission loss probability, PA vs
/// Centroid on an 8×8 grid.
pub fn fig9() -> Table {
    let mut t = Table::new(
        "fig9",
        "completeness vs message-loss rate (8x8 grid, 2-stream join; ARQ = 3 link retries)",
        &[
            "loss",
            "PA",
            "PA+ARQ",
            "Centroid",
            "Centroid+ARQ",
            "PA sound",
        ],
    );
    let losses = [0.0f64, 0.05, 0.10, 0.20, 0.30];
    let mut specs = Vec::new();
    for &loss in &losses {
        for strategy in [
            Strategy::Perpendicular { band_width: 1.0 },
            Strategy::Centroid,
        ] {
            for retries in [0u32, 3] {
                let topo = Topology::square_grid(8);
                let events = UniformStreams {
                    preds: vec![sym("r1"), sym("r2")],
                    interval: 8_000,
                    duration: 16_000,
                    delete_fraction: 0.0,
                    delete_lag: 0,
                    groups: 32,
                    seed: 5,
                }
                .events(&topo);
                specs.push(CaseSpec {
                    src: JOIN2.to_string(),
                    topo,
                    strategy,
                    pass_mode: PassMode::OnePass,
                    sim: SimConfig {
                        loss_prob: loss,
                        retries,
                        seed: 17,
                        ..SimConfig::default()
                    },
                    spatial_radius: None,
                    events,
                    output: sym("q"),
                    horizon: 30_000_000,
                });
            }
        }
    }
    let points = run_cases(&specs);
    for (i, &loss) in losses.iter().enumerate() {
        // Spec order per loss: PA, PA+ARQ, Centroid, Centroid+ARQ.
        let p = &points[i * 4..i * 4 + 4];
        let mut row = vec![f2(loss)];
        row.extend(p.iter().map(|p| f2(p.completeness)));
        row.push(f2(p[0].soundness));
        t.row(row);
    }
    t
}

/// Table 2: the testbed profile — small networks, 50 ms clock skew,
/// heavily jittered delays, asymmetric per-link loss. Reports completeness,
/// delivery ratio, and wall-clock convergence.
pub fn table2() -> Table {
    let mut t = Table::new(
        "table2",
        "testbed profile: skew 50ms, delay 5-80ms, asymmetric loss ~5%, MAC ARQ x3",
        &[
            "grid",
            "events",
            "compl",
            "sound",
            "delivery",
            "converged s",
        ],
    );
    for m in [3u32, 4] {
        let topo = Topology::square_grid(m);
        // Asymmetric per-link loss in [0, 0.1].
        let mut rng = StdRng::seed_from_u64(99);
        let mut link_loss = std::collections::HashMap::new();
        for a in topo.nodes() {
            for &b in topo.neighbors(a) {
                link_loss.insert((a, b), rng.gen_range(0.0..0.10));
            }
        }
        let sim = SimConfig {
            hop_delay: (5, 80),
            clock_skew_max: 50,
            link_loss,
            retries: 3, // mote MACs retransmit at the link layer
            seed: 31,
            ..SimConfig::default()
        };
        let events = UniformStreams {
            preds: vec![sym("r1"), sym("r2")],
            interval: 6_000,
            duration: 18_000,
            delete_fraction: 0.0,
            delete_lag: 0,
            groups: 8,
            seed: 7,
        }
        .events(&topo);
        let n_events = events.len();
        let p = run_case(
            JOIN2,
            topo,
            Strategy::Perpendicular { band_width: 1.0 },
            PassMode::OnePass,
            sim,
            None,
            events,
            sym("q"),
            30_000_000,
        );
        t.row(vec![
            format!("{m}x{m}"),
            n_events.to_string(),
            f2(p.completeness),
            f2(p.soundness),
            f2(p.delivery_ratio),
            format!("{:.1}", p.final_time as f64 / 1000.0),
        ]);
    }
    t
}
