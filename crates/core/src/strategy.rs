//! GPA strategies (Sec. III-A).
//!
//! "The core idea … is that of intersecting storage and join-computation
//! regions … such regions can be arbitrary as long as every storage region
//! intersects with every join-computation region." The four instances the
//! paper names:
//!
//! | strategy        | storage region  | join-computation region |
//! |-----------------|-----------------|-------------------------|
//! | Perpendicular   | row / h-band    | column / v-band         |
//! | NaiveBroadcast  | whole network   | local node              |
//! | LocalStorage    | local node      | whole network           |
//! | Centroid        | — (central server runs the centralized engine) |

use sensorlog_netsim::{NodeId, Topology, TopologyKind};
use sensorlog_netstack::regions;

/// One-pass vs multiple-pass join computation (Sec. III-A).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PassMode {
    /// Single traversal carrying all partial-result subsets (Fig. 1).
    #[default]
    OnePass,
    /// One traversal per remaining stream, joining one stream per pass.
    MultiPass,
}

/// GPA instance.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Strategy {
    /// Rows store, columns join (bands off-grid with the given width).
    Perpendicular { band_width: f64 },
    /// Flood every tuple everywhere; join locally.
    NaiveBroadcast,
    /// Store locally; join traverses the entire network.
    LocalStorage,
    /// Ship every tuple to the central server (no in-network processing) —
    /// the baseline the paper calls prohibitive (Sec. III-A).
    Centroid,
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Perpendicular { .. } => "perpendicular",
            Strategy::NaiveBroadcast => "naive-broadcast",
            Strategy::LocalStorage => "local-storage",
            Strategy::Centroid => "centroid",
        }
    }

    /// Ordered storage region for a tuple generated at `node`;
    /// `None` for Centroid (which has no replication).
    pub fn storage_region(
        &self,
        topo: &Topology,
        node: NodeId,
        spatial_radius: Option<f64>,
    ) -> Option<Vec<NodeId>> {
        let region = match self {
            Strategy::Perpendicular { band_width } => {
                regions::storage_region(topo, node, *band_width)
            }
            Strategy::NaiveBroadcast => all_nodes_snake(topo),
            Strategy::LocalStorage => vec![node],
            Strategy::Centroid => return None,
        };
        Some(match spatial_radius {
            Some(r) => {
                let t = regions::truncate(topo, &region, node, r);
                if t.is_empty() {
                    vec![node]
                } else {
                    t
                }
            }
            None => region,
        })
    }

    /// Ordered join-computation region for an update at `node`.
    pub fn join_region(
        &self,
        topo: &Topology,
        node: NodeId,
        spatial_radius: Option<f64>,
    ) -> Option<Vec<NodeId>> {
        let region = match self {
            Strategy::Perpendicular { band_width } => regions::join_region(topo, node, *band_width),
            Strategy::NaiveBroadcast => vec![node],
            Strategy::LocalStorage => all_nodes_snake(topo),
            Strategy::Centroid => return None,
        };
        Some(match spatial_radius {
            Some(r) => {
                let t = regions::truncate(topo, &region, node, r);
                if t.is_empty() {
                    vec![node]
                } else {
                    t
                }
            }
            None => region,
        })
    }

    /// The central server for Centroid: the node closest to the deployment
    /// centroid.
    pub fn center(topo: &Topology) -> NodeId {
        let (sx, sy) = topo
            .nodes()
            .map(|n| topo.position(n))
            .fold((0.0, 0.0), |(ax, ay), (x, y)| (ax + x, ay + y));
        let n = topo.len() as f64;
        topo.closest_node(sx / n, sy / n)
    }
}

/// All nodes in a traversal-friendly order: serpentine rows on grids
/// (consecutive nodes are radio neighbors), id order elsewhere (the router
/// bridges gaps).
pub fn all_nodes_snake(topo: &Topology) -> Vec<NodeId> {
    match topo.kind {
        TopologyKind::Grid { cols, rows } => {
            let mut out = Vec::with_capacity((cols * rows) as usize);
            for y in 0..rows {
                let xs: Vec<u32> = if y % 2 == 0 {
                    (0..cols).collect()
                } else {
                    (0..cols).rev().collect()
                };
                for x in xs {
                    out.push(topo.node_at(x, y).expect("in range"));
                }
            }
            out
        }
        _ => topo.nodes().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_regions_intersect_pairwise() {
        let topo = Topology::square_grid(6);
        let s = Strategy::Perpendicular { band_width: 1.0 };
        for a in topo.nodes() {
            let store = s.storage_region(&topo, a, None).unwrap();
            for b in topo.nodes() {
                let join = s.join_region(&topo, b, None).unwrap();
                assert!(
                    store.iter().any(|m| join.contains(m)),
                    "GPA invariant violated for {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn degenerate_strategies_intersect() {
        let topo = Topology::square_grid(4);
        for s in [Strategy::NaiveBroadcast, Strategy::LocalStorage] {
            let store = s.storage_region(&topo, NodeId(3), None).unwrap();
            let join = s.join_region(&topo, NodeId(9), None).unwrap();
            assert!(store.iter().any(|m| join.contains(m)));
        }
    }

    #[test]
    fn centroid_has_no_regions() {
        let topo = Topology::square_grid(4);
        assert!(Strategy::Centroid
            .storage_region(&topo, NodeId(0), None)
            .is_none());
        assert!(Strategy::Centroid
            .join_region(&topo, NodeId(0), None)
            .is_none());
    }

    #[test]
    fn center_is_central() {
        let topo = Topology::square_grid(5);
        let c = Strategy::center(&topo);
        assert_eq!(topo.grid_coords(c), Some((2, 2)));
    }

    #[test]
    fn snake_order_is_radio_adjacent_on_grid() {
        let topo = Topology::square_grid(4);
        let snake = all_nodes_snake(&topo);
        assert_eq!(snake.len(), 16);
        for w in snake.windows(2) {
            assert!(topo.are_neighbors(w[0], w[1]));
        }
    }

    #[test]
    fn spatial_truncation_shrinks_regions() {
        let topo = Topology::square_grid(9);
        let s = Strategy::Perpendicular { band_width: 1.0 };
        let mid = topo.node_at(4, 4).unwrap();
        let full = s.storage_region(&topo, mid, None).unwrap();
        let cut = s.storage_region(&topo, mid, Some(2.0)).unwrap();
        assert!(cut.len() < full.len());
        assert!(cut.contains(&mid));
        // Radius 0 degenerates to the local node.
        let local = s.join_region(&topo, mid, Some(0.0)).unwrap();
        assert_eq!(local, vec![mid]);
    }
}
