//! # sensorlog-netsim
//!
//! Deterministic discrete-event sensor-network simulator — the substitution
//! for TOSSIM (see DESIGN.md). The paper's evaluation metrics are functions
//! of the message-passing schedule (communication cost, load balance,
//! latency, correctness under loss), which this simulator reproduces with:
//!
//! * unit-disk radio over [`topology::Topology`] (grids and random
//!   geometric graphs);
//! * bounded, jittered per-hop delays (Theorems 1–3 assume bounded delays);
//! * Bernoulli and per-link (asymmetric) message loss;
//! * per-node clock skew bounded by τc;
//! * per-node / per-kind message, byte and energy accounting
//!   ([`metrics::Metrics`]).
//!
//! Nodes implement [`sim::App`]; the harness injects sensor readings via
//! [`sim::Simulator::invoke`].
//!
//! Three interchangeable scheduler backends ([`sim::Sched`]) pop events
//! in the identical global `(at, key)` order: a retained binary heap
//! (reference oracle), a hierarchical timer wheel (default), and a
//! region-sharded conservative-PDES backend ([`shard`]) that advances
//! per-region wheels on worker threads in lookahead-bounded lockstep
//! windows — byte-identical journals, pinned in
//! `tests/trace_stability.rs`.

pub mod faults;
pub mod metrics;
pub(crate) mod shard;
pub mod sim;
pub mod topology;
pub mod trace;
pub mod wheel;

pub use faults::{FaultEvent, FaultKind, FaultSchedule, LinkState, RandomFaults};
pub use metrics::{EnergyModel, Metrics, NodeCounters};
pub use sim::{App, Ctx, MsgMeta, Sched, SchedStats, SimConfig, SimTime, Simulator};
pub use topology::{ConnectivityError, NodeId, Topology, TopologyKind};
pub use trace::{
    DropReason, Journal, ReplayChecker, SharedJournal, SharedSummary, TraceEvent, TraceRecord,
    TraceSink, TraceSummary,
};
pub use wheel::TimerWheel;
