//! Wire messages of the distributed engine.
//!
//! Everything multi-hop travels inside a [`Payload::Routed`] envelope; the
//! radio layer only ever delivers to neighbors (see `sensorlog_netsim`).
//! Message kinds map onto the paper's phases: `store` (storage phase,
//! Sec. III-A), `probe` (join-computation phase), `result` (derived-tuple
//! deltas to owner nodes, Sec. III-B), `centroid` (the central-server
//! baseline's upload traffic).

use crate::partial::Partial;
use crate::tupleid::{DerivationKey, FactRecord, TupleId};
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::{MsgMeta, NodeId, SimTime};
use std::sync::Arc;

/// Join-probe state carried along the join-computation region.
#[derive(Clone, Debug)]
pub struct ProbeMsg {
    pub update: FactRecord,
    /// The ordered join-computation region.
    pub walk: Arc<Vec<NodeId>>,
    /// Index of the walk member this probe is headed to / being processed
    /// at.
    pub pos: usize,
    /// Multiple-pass scheme: current pass (0-based). One-pass probes stay
    /// at 0.
    pub pass: u8,
    /// Total passes for this probe (1 for one-pass).
    pub total_passes: u8,
    /// Per-rule work: partial-result sets.
    pub work: Vec<RuleWork>,
}

/// Partial results of one rule inside a probe.
#[derive(Clone, Debug)]
pub struct RuleWork {
    pub rule_idx: u16,
    pub occ: u16,
    pub negated: bool,
    pub partials: Vec<Partial>,
}

impl ProbeMsg {
    pub fn byte_size(&self) -> usize {
        self.update.byte_size()
            + 8
            + self
                .work
                .iter()
                .map(|w| 6 + w.partials.iter().map(Partial::byte_size).sum::<usize>())
                .sum::<usize>()
    }
}

/// Application payload.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Multi-hop envelope.
    Routed { dest: NodeId, inner: Box<Payload> },
    /// Storage-phase walk: store a replica (or tombstone) and pass along.
    StoreWalk {
        fact: FactRecord,
        walk: Arc<Vec<NodeId>>,
        pos: usize,
    },
    /// NaiveBroadcast storage: flood a replica everywhere.
    FloodStore { fact: FactRecord },
    /// Join-computation probe.
    Probe(ProbeMsg),
    /// Derivation delta to the derived tuple's owner node.
    DerivDelta {
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        tau: SimTime,
        /// Id of the update whose probe emitted this delta — lets lineage
        /// compose across nodes into the provenance plane's causal DAG.
        /// Already determined by `key` + `tau` on the wire, so it is
        /// modeled inside the fixed `size_bytes` header, not billed extra.
        origin: TupleId,
    },
    /// Centroid baseline: raw fact upload to the central server.
    ToCenter { fact: FactRecord },
    /// Fault plane: 1-hop aliveness beacon. `version` is the sender's
    /// local time at send, `boot_ts` the local time of its current
    /// incarnation's boot (distinguishes a restarted node from the one
    /// that crashed).
    Heartbeat { version: SimTime, boot_ts: SimTime },
    /// Fault plane: flooded liveness transition for `subject`. Higher
    /// `version` wins; on a tie, dead wins.
    Liveness {
        subject: NodeId,
        version: SimTime,
        alive: bool,
        boot_ts: SimTime,
    },
    /// Fault plane: 1-hop anti-entropy digest of non-default liveness
    /// entries, exchanged on the refresh tick so a healed partition
    /// relearns deaths/reboots it missed.
    LivenessDigest {
        entries: Vec<(NodeId, SimTime, bool, SimTime)>,
    },
}

impl MsgMeta for Payload {
    fn size_bytes(&self) -> usize {
        match self {
            Payload::Routed { inner, .. } => 4 + inner.size_bytes(),
            Payload::StoreWalk { fact, .. } => fact.byte_size() + 6,
            Payload::FloodStore { fact } => fact.byte_size(),
            Payload::Probe(p) => p.byte_size(),
            Payload::DerivDelta { tuple, key, .. } => tuple.byte_size() + key.byte_size() + 12,
            Payload::ToCenter { fact } => fact.byte_size(),
            Payload::Heartbeat { .. } => 12,
            Payload::Liveness { .. } => 18,
            Payload::LivenessDigest { entries } => 4 + entries.len() * 18,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Payload::Routed { inner, .. } => inner.kind(),
            Payload::StoreWalk { .. } | Payload::FloodStore { .. } => "store",
            Payload::Probe(_) => "probe",
            Payload::DerivDelta { .. } => "result",
            Payload::ToCenter { .. } => "centroid",
            Payload::Heartbeat { .. } => "hb",
            Payload::Liveness { .. } | Payload::LivenessDigest { .. } => "live",
        }
    }
}

impl Payload {
    /// The predicate this payload is about (the stream being stored or
    /// probed, or the derived predicate being delta'd). Used for telemetry's
    /// per-predicate traffic accounting; envelopes report their inner
    /// payload's predicate.
    pub fn pred(&self) -> Symbol {
        match self {
            Payload::Routed { inner, .. } => inner.pred(),
            Payload::StoreWalk { fact, .. }
            | Payload::FloodStore { fact }
            | Payload::ToCenter { fact } => fact.pred,
            Payload::Probe(p) => p.update.pred,
            Payload::DerivDelta { pred, .. } => *pred,
            Payload::Heartbeat { .. }
            | Payload::Liveness { .. }
            | Payload::LivenessDigest { .. } => Symbol::intern("_sys"),
        }
    }

    /// The originating tuple id this payload's traffic is causally charged
    /// to (provenance hop attribution): the fact being stored/uploaded, the
    /// update being probed, or a delta's origin. `None` for fault-plane
    /// payloads, which have no single causal tuple.
    pub fn origin_id(&self) -> Option<crate::tupleid::TupleId> {
        match self {
            Payload::Routed { inner, .. } => inner.origin_id(),
            Payload::StoreWalk { fact, .. }
            | Payload::FloodStore { fact }
            | Payload::ToCenter { fact } => Some(fact.id),
            Payload::Probe(p) => Some(p.update.id),
            Payload::DerivDelta { origin, .. } => Some(*origin),
            Payload::Heartbeat { .. }
            | Payload::Liveness { .. }
            | Payload::LivenessDigest { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tupleid::TupleId;
    use sensorlog_logic::Term;

    fn fact() -> FactRecord {
        FactRecord::insert(
            Symbol::intern("veh"),
            Tuple::new(vec![Term::Int(1)]),
            TupleId {
                node: NodeId(0),
                ts: 1,
                seq: 0,
            },
        )
    }

    #[test]
    fn kinds_and_sizes() {
        let store = Payload::StoreWalk {
            fact: fact(),
            walk: Arc::new(vec![NodeId(0), NodeId(1)]),
            pos: 0,
        };
        assert_eq!(store.kind(), "store");
        assert!(store.size_bytes() > 0);
        let routed = Payload::Routed {
            dest: NodeId(5),
            inner: Box::new(store),
        };
        // Envelope preserves the inner kind for accounting.
        assert_eq!(routed.kind(), "store");
        let center = Payload::ToCenter { fact: fact() };
        assert_eq!(center.kind(), "centroid");
    }
}

#[cfg(test)]
mod sizing_tests {
    use super::*;
    use crate::partial::Partial;
    use crate::tupleid::TupleId;
    use sensorlog_logic::Term;

    #[test]
    fn probe_size_grows_with_partials() {
        let id = TupleId {
            node: NodeId(0),
            ts: 1,
            seq: 0,
        };
        let update = FactRecord::insert(Symbol::intern("r1"), Tuple::new(vec![Term::Int(1)]), id);
        let mk_partial = |n_bindings: usize| Partial {
            bindings: (0..n_bindings)
                .map(|i| (Symbol::intern(&format!("V{i}")), Term::Int(i as i64)))
                .collect(),
            bound: vec![true, false],
            inputs: vec![(0, id)],
        };
        let small = ProbeMsg {
            update: update.clone(),
            walk: Arc::new(vec![NodeId(0)]),
            pos: 0,
            pass: 0,
            total_passes: 1,
            work: vec![RuleWork {
                rule_idx: 0,
                occ: 0,
                negated: false,
                partials: vec![mk_partial(1)],
            }],
        };
        let big = ProbeMsg {
            work: vec![RuleWork {
                rule_idx: 0,
                occ: 0,
                negated: false,
                partials: (0..10).map(|_| mk_partial(5)).collect(),
            }],
            ..small.clone()
        };
        assert!(big.byte_size() > small.byte_size());
        assert_eq!(Payload::Probe(small).kind(), "probe");
    }

    #[test]
    fn deriv_delta_sizing() {
        let id = TupleId {
            node: NodeId(2),
            ts: 9,
            seq: 1,
        };
        let d = Payload::DerivDelta {
            pred: Symbol::intern("q"),
            tuple: Tuple::new(vec![Term::Int(1), Term::Int(2)]),
            key: DerivationKey::new(0, vec![(0, id), (1, id)]),
            sign: 1,
            tau: 5,
            origin: id,
        };
        assert_eq!(d.kind(), "result");
        assert!(d.size_bytes() > 16);
        assert_eq!(d.origin_id(), Some(id));
        let hb = Payload::Heartbeat {
            version: 1,
            boot_ts: 0,
        };
        assert_eq!(hb.origin_id(), None);
    }
}
