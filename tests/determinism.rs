//! Cross-run determinism of full distributed deployments.
//!
//! A seeded lossy run must be reproducible in-process *and* across
//! processes: total transmissions, event counts, per-node output logs, and
//! the byte-exact event-trace journal (see `sensorlog_netsim::trace`).
//! This test is the permanent form of the harness used to root-cause the
//! seed flake where `Relation`'s `HashMap` iteration order leaked into
//! message-emission order and made loss hit different messages per
//! process.

use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::UniformStreams;
use sensorlog::prelude::*;
use sensorlog_netsim::Journal;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

const JOIN3: &str = r#"
    q(X, K) :- r1(X, K), r2(Y, K), X != Y.
"#;

struct RunFingerprint {
    total_tx: u64,
    events_processed: u64,
    results: usize,
    output_log: String,
    journal: Journal,
}

fn run_once(loss: f64, seed: u64) -> RunFingerprint {
    let topo = Topology::square_grid(6);
    let w = UniformStreams {
        preds: vec![sym("r1"), sym("r2")],
        interval: 5_000,
        duration: 20_000,
        delete_fraction: 0.2,
        delete_lag: 3_000,
        groups: 18,
        seed: 5,
    };
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: loss,
            seed,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let journal = d.attach_journal();
    d.schedule_all(w.events(&topo));
    d.run(3_000_000);
    let mut output_log = String::new();
    for id in d.sim.topology().nodes() {
        for (p, t, k, ts) in &d.node(id).output_log {
            output_log.push_str(&format!("{id} {p} {t} {k:?} {ts}\n"));
        }
    }
    RunFingerprint {
        total_tx: d.metrics().total_tx(),
        events_processed: d.sim.events_processed(),
        results: d.results(sym("q")).len(),
        output_log,
        journal: journal.take(),
    }
}

#[test]
fn repeated_lossy_runs_are_byte_identical() {
    for seed in [3u64, 7, 21, 40] {
        let a = run_once(0.10, seed);
        let b = run_once(0.10, seed);
        assert!(a.results > 0 || a.total_tx > 0, "run produced nothing");
        assert_eq!(a.total_tx, b.total_tx, "seed {seed}: total_tx differs");
        assert_eq!(
            a.events_processed, b.events_processed,
            "seed {seed}: events differ"
        );
        assert_eq!(
            a.output_log, b.output_log,
            "seed {seed}: output logs differ"
        );
        // The strongest form: the full event journals render to identical
        // bytes. On divergence, point at the first differing record.
        if let Some(i) = a.journal.first_divergence(&b.journal) {
            panic!(
                "seed {seed}: journals diverge at record {i}:\n  a: {:?}\n  b: {:?}",
                a.journal.records.get(i),
                b.journal.records.get(i)
            );
        }
        assert_eq!(a.journal.to_text(), b.journal.to_text());
        assert_eq!(a.journal.content_hash(), b.journal.content_hash());
    }
}

#[test]
fn different_seeds_give_different_schedules() {
    let a = run_once(0.10, 3);
    let b = run_once(0.10, 4);
    // Same workload, different radio RNG: the journals must differ (loss
    // hits different messages), while each stays internally consistent.
    assert_ne!(
        a.journal.content_hash(),
        b.journal.content_hash(),
        "distinct seeds produced identical schedules"
    );
}
