//! Fig. 16: PA beyond grids — the banded generalization for arbitrary
//! topologies (the construction the paper defers to \[44\]: "generalization
//! of PA to networks with arbitrary topology requires developing an
//! appropriate notion of vertical and horizontal paths such that each
//! vertical path intersects with every horizontal path"). Coordinate bands
//! play the role of rows/columns on connected random geometric graphs.

use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog_core::oracle;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{SimConfig, Topology};

const JOIN3: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Random workload over a geometric topology (one reading per node per
/// stream, selective keys).
fn geo_workload(topo: &Topology, seed: u64) -> Vec<WorkloadEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let groups = (topo.len() as u32).max(2);
    let mut value = 0i64;
    for node in topo.nodes() {
        for pred in ["r1", "r2"] {
            value += 1;
            out.push(WorkloadEvent {
                at: 500 + rng.gen_range(0..10_000),
                node,
                pred: sym(pred),
                tuple: Tuple::new(vec![
                    Term::Int(node.0 as i64),
                    Term::Int(value),
                    Term::Int(rng.gen_range(0..groups) as i64),
                ]),
                kind: UpdateKind::Insert,
            });
        }
    }
    out.sort_by_key(|e| e.at);
    out
}

/// Fig. 16: two-stream join on connected random geometric graphs with
/// banded PA vs Centroid.
pub fn fig16() -> Table {
    let mut t = Table::new(
        "fig16",
        "banded PA on random geometric graphs (radio radius 1.7)",
        &[
            "nodes",
            "side",
            "PA msgs",
            "PA compl",
            "Centroid msgs",
            "Centroid compl",
        ],
    );
    for (n, side) in [(25usize, 4.0f64), (50, 5.5), (100, 8.0)] {
        let mut row = vec![n.to_string(), format!("{side:.1}")];
        for strategy in [
            Strategy::Perpendicular { band_width: 1.7 },
            Strategy::Centroid,
        ] {
            let topo = Topology::random_geometric(n, side, 1.7, 97)
                .expect("fig16 density is chosen to connect");
            let cfg = DeployConfig {
                rt: RtConfig {
                    strategy,
                    // Banded walks span multi-hop gaps: give storage/join
                    // phases more headroom than the grid defaults.
                    tau_s: 4_000,
                    tau_j: 8_000,
                    ..RtConfig::default()
                },
                sim: SimConfig {
                    seed: 13,
                    ..SimConfig::default()
                },
                ..DeployConfig::default()
            };
            let mut d =
                Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
            let events = geo_workload(&topo, 29 + n as u64);
            d.schedule_all(events.clone());
            d.run(60_000_000);
            let report = oracle::check(&d, &events, sym("q"));
            assert!(report.expected > 0, "geometric workload must join");
            assert!(
                report.soundness() > 0.999,
                "{} n={n}: spurious {:?}",
                strategy.name(),
                report.spurious
            );
            row.push(d.metrics().total_tx().to_string());
            row.push(f2(report.completeness()));
        }
        t.row(row);
    }
    t
}
