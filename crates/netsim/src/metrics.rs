//! Communication accounting: the paper's evaluation currency.
//!
//! Since the telemetry refactor this is a thin compatibility shim over
//! [`sensorlog_telemetry::MetricsRegistry`]: the bespoke counter fields the
//! bench experiments used to poke at (`tx_by_kind`, `lost`, `delivered`)
//! are gone, replaced by registry-backed accessors with the same names.
//! Per-node counters pre-resolve their registry ids at construction so the
//! hot path stays a `Vec`-indexed add, exactly as cheap as the old struct
//! fields. "Communication cost" in the experiment harness still means
//! `total_tx` unless stated otherwise; "load balance" compares
//! `max_node_load` against the mean.

use crate::topology::NodeId;
use crate::trace::DropReason;
use sensorlog_telemetry::{CounterId, MetricsRegistry, Scope};
use std::collections::BTreeMap;

/// Registry counter name for one loss reason ("lost_air", "lost_dead", ...).
/// The plain "lost" counter stays the all-reasons total so the conservation
/// invariant (`tx == rx + lost`) and every pre-fault-plane accessor are
/// unchanged.
fn reason_counter(reason: DropReason) -> &'static str {
    match reason {
        DropReason::Loss => "lost_air",
        DropReason::DeadNode => "lost_dead",
        DropReason::Retries => "lost_retries",
        DropReason::Partition => "lost_partition",
    }
}

/// Radio energy model (defaults loosely follow mica2-class motes: sending
/// is ~1.5× the cost of receiving, with a fixed per-packet overhead).
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    pub tx_per_byte_uj: f64,
    pub rx_per_byte_uj: f64,
    pub tx_base_uj: f64,
    pub rx_base_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_per_byte_uj: 0.6,
            rx_per_byte_uj: 0.4,
            tx_base_uj: 10.0,
            rx_base_uj: 7.0,
        }
    }
}

/// Per-node counters (a read-side view; storage lives in the registry).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeCounters {
    pub tx: u64,
    pub rx: u64,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

/// Pre-resolved registry ids for one node's four counters.
#[derive(Clone, Copy, Debug)]
struct NodeIds {
    tx: CounterId,
    rx: CounterId,
    tx_bytes: CounterId,
    rx_bytes: CounterId,
}

/// Whole-run metrics, backed by a deterministic metrics registry.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    reg: MetricsRegistry,
    per_node: Vec<NodeIds>,
    pub energy: EnergyModel,
}

impl Metrics {
    pub fn new(n_nodes: usize) -> Metrics {
        let mut reg = MetricsRegistry::new();
        let per_node = (0..n_nodes as u32)
            .map(|n| NodeIds {
                tx: reg.counter(Scope::Node(n), "tx"),
                rx: reg.counter(Scope::Node(n), "rx"),
                tx_bytes: reg.counter(Scope::Node(n), "tx_bytes"),
                rx_bytes: reg.counter(Scope::Node(n), "rx_bytes"),
            })
            .collect();
        Metrics {
            reg,
            per_node,
            energy: EnergyModel::default(),
        }
    }

    pub fn record_tx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        let ids = self.per_node[node.index()];
        self.reg.inc(ids.tx);
        self.reg.inc_by(ids.tx_bytes, bytes as u64);
        self.reg.bump(Scope::Kind(kind), "tx", 1);
    }

    pub fn record_rx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        let ids = self.per_node[node.index()];
        self.reg.inc(ids.rx);
        self.reg.inc_by(ids.rx_bytes, bytes as u64);
        self.reg.bump(Scope::Kind(kind), "rx", 1);
    }

    pub fn record_loss(&mut self, kind: &'static str, reason: DropReason) {
        self.reg.bump(Scope::Kind(kind), "lost", 1);
        self.reg.bump(Scope::Kind(kind), reason_counter(reason), 1);
    }

    /// Batch-merge of `n` transmissions totalling `bytes` from `node` — the
    /// shard workers' window-barrier flush path. Equivalent to `n` calls to
    /// [`Metrics::record_tx`] minus the per-kind bump (see
    /// [`Metrics::add_kind`]).
    pub(crate) fn add_node_tx(&mut self, node: NodeId, n: u64, bytes: u64) {
        let ids = self.per_node[node.index()];
        self.reg.inc_by(ids.tx, n);
        self.reg.inc_by(ids.tx_bytes, bytes);
    }

    /// Batch-merge of `n` receptions totalling `bytes` at `node`.
    pub(crate) fn add_node_rx(&mut self, node: NodeId, n: u64, bytes: u64) {
        let ids = self.per_node[node.index()];
        self.reg.inc_by(ids.rx, n);
        self.reg.inc_by(ids.rx_bytes, bytes);
    }

    /// Batch-merge of per-kind counters. Zero deltas are skipped so the set
    /// of registry keys stays identical to what the serial per-call path
    /// would have created (a kind only gets a "tx" counter if it ever
    /// transmitted, etc.).
    pub(crate) fn add_kind(
        &mut self,
        kind: &'static str,
        tx: u64,
        rx: u64,
        lost: u64,
        reasons: [u64; DropReason::COUNT],
    ) {
        if tx > 0 {
            self.reg.bump(Scope::Kind(kind), "tx", tx);
        }
        if rx > 0 {
            self.reg.bump(Scope::Kind(kind), "rx", rx);
        }
        if lost > 0 {
            self.reg.bump(Scope::Kind(kind), "lost", lost);
        }
        for reason in [
            DropReason::Loss,
            DropReason::DeadNode,
            DropReason::Retries,
            DropReason::Partition,
        ] {
            let n = reasons[reason.index()];
            if n > 0 {
                self.reg.bump(Scope::Kind(kind), reason_counter(reason), n);
            }
        }
    }

    pub fn node(&self, id: NodeId) -> NodeCounters {
        let ids = self.per_node[id.index()];
        NodeCounters {
            tx: self.reg.counter_value(ids.tx),
            rx: self.reg.counter_value(ids.rx),
            tx_bytes: self.reg.counter_value(ids.tx_bytes),
            rx_bytes: self.reg.counter_value(ids.rx_bytes),
        }
    }

    fn nodes(&self) -> impl Iterator<Item = NodeCounters> + '_ {
        self.per_node.iter().map(|ids| NodeCounters {
            tx: self.reg.counter_value(ids.tx),
            rx: self.reg.counter_value(ids.rx),
            tx_bytes: self.reg.counter_value(ids.tx_bytes),
            rx_bytes: self.reg.counter_value(ids.rx_bytes),
        })
    }

    /// Message kinds seen on the wire so far, with tx counts — the old
    /// `tx_by_kind` field, now computed from the registry.
    pub fn tx_by_kind(&self) -> BTreeMap<&'static str, u64> {
        self.by_kind("tx")
    }

    fn by_kind(&self, name: &'static str) -> BTreeMap<&'static str, u64> {
        self.reg
            .counters()
            .filter_map(|(key, v)| match key.scope {
                Scope::Kind(k) if key.name == name => Some((k, v)),
                _ => None,
            })
            .collect()
    }

    pub fn tx_of(&self, kind: &'static str) -> u64 {
        self.reg.count(Scope::Kind(kind), "tx")
    }

    pub fn rx_of(&self, kind: &'static str) -> u64 {
        self.reg.count(Scope::Kind(kind), "rx")
    }

    pub fn lost_of(&self, kind: &'static str) -> u64 {
        self.reg.count(Scope::Kind(kind), "lost")
    }

    /// Total messages lost on air (all kinds) — the old `lost` field.
    pub fn lost(&self) -> u64 {
        self.by_kind("lost").values().sum()
    }

    /// Losses broken down by [`DropReason`], summed over kinds. Indexed by
    /// [`DropReason::index`]; entries always sum to [`Metrics::lost`].
    pub fn lost_by_reason(&self) -> [u64; DropReason::COUNT] {
        let mut out = [0u64; DropReason::COUNT];
        for reason in [
            DropReason::Loss,
            DropReason::DeadNode,
            DropReason::Retries,
            DropReason::Partition,
        ] {
            out[reason.index()] = self.by_kind(reason_counter(reason)).values().sum();
        }
        out
    }

    /// Total messages delivered (all kinds) — the old `delivered` field.
    pub fn delivered(&self) -> u64 {
        self.by_kind("rx").values().sum()
    }

    /// Per-kind `(kind, tx, rx, lost)` rows for the message-conservation
    /// invariant: at quiescence every transmission was either delivered or
    /// lost, so `tx == rx + lost` must hold per kind.
    pub fn kind_balance(&self) -> Vec<(&'static str, u64, u64, u64)> {
        let tx = self.by_kind("tx");
        let rx = self.by_kind("rx");
        let lost = self.by_kind("lost");
        let mut kinds: Vec<&'static str> = tx
            .keys()
            .chain(rx.keys())
            .chain(lost.keys())
            .copied()
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
            .into_iter()
            .map(|k| {
                (
                    k,
                    tx.get(k).copied().unwrap_or(0),
                    rx.get(k).copied().unwrap_or(0),
                    lost.get(k).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// The backing registry (for exporters and network-wide rollups).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Total messages transmitted.
    pub fn total_tx(&self) -> u64 {
        self.nodes().map(|c| c.tx).sum()
    }

    pub fn total_tx_bytes(&self) -> u64 {
        self.nodes().map(|c| c.tx_bytes).sum()
    }

    pub fn total_rx(&self) -> u64 {
        self.nodes().map(|c| c.rx).sum()
    }

    /// Heaviest node's message load (tx + rx): the hotspot metric.
    pub fn max_node_load(&self) -> u64 {
        self.nodes().map(|c| c.tx + c.rx).max().unwrap_or(0)
    }

    /// Mean node message load.
    pub fn mean_node_load(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.nodes().map(|c| (c.tx + c.rx) as f64).sum::<f64>() / self.per_node.len() as f64
    }

    /// Load imbalance factor: max / mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_node_load();
        if mean == 0.0 {
            return 1.0;
        }
        self.max_node_load() as f64 / mean
    }

    /// Total radio energy in microjoules under the energy model.
    pub fn total_energy_uj(&self) -> f64 {
        self.nodes()
            .map(|c| {
                c.tx as f64 * self.energy.tx_base_uj
                    + c.tx_bytes as f64 * self.energy.tx_per_byte_uj
                    + c.rx as f64 * self.energy.rx_base_uj
                    + c.rx_bytes as f64 * self.energy.rx_per_byte_uj
            })
            .sum()
    }

    /// Delivery ratio = delivered / (delivered + lost).
    pub fn delivery_ratio(&self) -> f64 {
        let (delivered, lost) = (self.delivered(), self.lost());
        let attempts = delivered + lost;
        if attempts == 0 {
            1.0
        } else {
            delivered as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(3);
        m.record_tx(NodeId(0), 100, "storage");
        m.record_tx(NodeId(0), 50, "join");
        m.record_rx(NodeId(1), 100, "storage");
        m.record_loss("join", DropReason::Loss);
        assert_eq!(m.total_tx(), 2);
        assert_eq!(m.total_tx_bytes(), 150);
        assert_eq!(m.total_rx(), 1);
        assert_eq!(m.node(NodeId(0)).tx, 2);
        assert_eq!(m.tx_by_kind()["storage"], 1);
        assert_eq!(m.lost(), 1);
        assert_eq!(m.lost_of("join"), 1);
        assert_eq!(m.rx_of("storage"), 1);
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn load_metrics() {
        let mut m = Metrics::new(4);
        for _ in 0..9 {
            m.record_tx(NodeId(2), 10, "x");
        }
        m.record_tx(NodeId(0), 10, "x");
        // loads: 10 tx total; node2 = 9, mean = 2.5
        assert_eq!(m.max_node_load(), 9);
        assert!((m.mean_node_load() - 2.5).abs() < 1e-9);
        assert!((m.imbalance() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn energy_model() {
        let mut m = Metrics::new(1);
        m.record_tx(NodeId(0), 10, "x");
        let e = m.total_energy_uj();
        assert!((e - (10.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_sane() {
        let m = Metrics::new(0);
        assert_eq!(m.total_tx(), 0);
        assert_eq!(m.max_node_load(), 0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(m.mean_node_load(), 0.0);
        assert_eq!(m.total_energy_uj(), 0.0);
    }

    #[test]
    fn all_loss_delivery_ratio_is_zero() {
        let mut m = Metrics::new(2);
        for _ in 0..5 {
            m.record_tx(NodeId(0), 8, "x");
            m.record_loss("x", DropReason::Loss);
        }
        assert_eq!(m.delivered(), 0);
        assert_eq!(m.lost(), 5);
        assert!((m.delivery_ratio() - 0.0).abs() < 1e-9);
        // tx happened even though nothing arrived: energy/load still count.
        assert_eq!(m.total_tx(), 5);
        assert!(m.total_energy_uj() > 0.0);
    }

    #[test]
    fn nodes_but_no_traffic() {
        let m = Metrics::new(8);
        // No activity at all: mean 0 must not divide-by-zero imbalance.
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(m.node(NodeId(7)), NodeCounters::default());
    }

    #[test]
    fn perfectly_balanced_imbalance_is_one() {
        let mut m = Metrics::new(4);
        for i in 0..4 {
            m.record_tx(NodeId(i), 10, "x");
        }
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rx_energy_counts_receiver_side() {
        let mut m = Metrics::new(2);
        m.record_rx(NodeId(1), 10, "x");
        // rx_base 7.0 + 10 bytes * 0.4
        assert!((m.total_energy_uj() - 11.0).abs() < 1e-9);
        assert_eq!(m.total_rx(), 1);
        assert_eq!(m.total_tx(), 0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kind_balance_reports_every_kind() {
        let mut m = Metrics::new(2);
        m.record_tx(NodeId(0), 8, "ping");
        m.record_rx(NodeId(1), 8, "ping");
        m.record_tx(NodeId(0), 8, "pong");
        m.record_loss("pong", DropReason::Retries);
        let rows = m.kind_balance();
        assert_eq!(rows, vec![("ping", 1, 1, 0), ("pong", 1, 0, 1)]);
        for (_, tx, rx, lost) in rows {
            assert_eq!(tx, rx + lost);
        }
    }

    #[test]
    fn loss_reasons_partition_the_total() {
        let mut m = Metrics::new(2);
        m.record_loss("x", DropReason::Loss);
        m.record_loss("x", DropReason::Loss);
        m.record_loss("x", DropReason::DeadNode);
        m.record_loss("y", DropReason::Partition);
        m.record_loss("y", DropReason::Retries);
        let by = m.lost_by_reason();
        assert_eq!(by[DropReason::Loss.index()], 2);
        assert_eq!(by[DropReason::DeadNode.index()], 1);
        assert_eq!(by[DropReason::Retries.index()], 1);
        assert_eq!(by[DropReason::Partition.index()], 1);
        assert_eq!(by.iter().sum::<u64>(), m.lost());
    }
}
