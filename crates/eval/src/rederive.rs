//! Delete-and-rederive maintenance (the second alternative of Sec. IV-A,
//! "Rederivation Approach" \[27\], DRed-style).
//!
//! Keeps *no* per-tuple bookkeeping. Insertions propagate like semi-naive
//! deltas. Deletions first **over-delete** everything with a derivation
//! through the deleted tuple, then try to **rederive** each casualty from
//! what remains — "the rederivation technique will result in a lot of
//! communication overhead" (each rederivation attempt is a full body
//! evaluation, the in-network analogue of an extra join traversal). The
//! `body_evals` counter is the work metric the Fig. 11 ablation plots.
//!
//! Supports non-recursive and stratified-recursive programs without
//! aggregates; recursion is handled by iterating over-delete/rederive to
//! fixpoint in stratum order.

use crate::error::EvalError;
use crate::eval_body::{instantiate_head, BodyEval, TupleFilter};
use crate::lineage::LineageLog;
use crate::relation::{Database, TupleMeta};
use sensorlog_logic::analyze::{Analysis, ProgramClass};
use sensorlog_logic::ast::Literal;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::flat::FlatSubst;
use sensorlog_logic::intern;
use sensorlog_logic::unify::{match_args, Subst};
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_telemetry::Profiler;
use std::collections::{HashSet, VecDeque};

use crate::incremental::{Update, UpdateKind};

/// DRed-style maintenance engine.
pub struct RederiveEngine {
    pub analysis: Analysis,
    pub reg: BuiltinRegistry,
    pub db: Database,
    pub body_evals: u64,
    /// Phase profiler (disabled by default): times insert cascades and the
    /// over-delete/rederive passes separately.
    pub profiler: Profiler,
    pub max_cascade: usize,
    /// Probe via relation indexes; disable for the scan A/B baseline.
    pub use_index: bool,
    /// Opt-in per-firing lineage capture. DRed tracks no derivations, so
    /// over-deletion retracts an atom's entire recorded proof set and
    /// rederivation re-records the surviving witness.
    lineage: Option<LineageLog>,
}

impl RederiveEngine {
    pub fn new(analysis: Analysis, reg: BuiltinRegistry) -> Result<RederiveEngine, EvalError> {
        if analysis.class == ProgramClass::XYStratified {
            return Err(EvalError::Internal(
                "rederivation maintenance does not support XY-stratified programs".into(),
            ));
        }
        if analysis.program.rules.iter().any(|r| r.agg.is_some()) {
            return Err(EvalError::Internal(
                "rederivation maintenance does not support aggregates".into(),
            ));
        }
        let mut db = Database::new();
        crate::planner::register_program_indexes(&mut db, &analysis.program.rules);
        Ok(RederiveEngine {
            analysis,
            reg,
            db,
            body_evals: 0,
            profiler: Profiler::disabled(),
            max_cascade: 1_000_000,
            use_index: true,
            lineage: None,
        })
    }

    /// Enable/disable per-firing lineage capture (fresh log on enable).
    pub fn set_record_lineage(&mut self, on: bool) {
        self.lineage = if on { Some(LineageLog::new()) } else { None };
    }

    pub fn lineage(&self) -> Option<&LineageLog> {
        self.lineage.as_ref()
    }

    pub fn take_lineage(&mut self) -> Option<LineageLog> {
        self.lineage.take()
    }

    pub fn from_source(src: &str, reg: BuiltinRegistry) -> Result<RederiveEngine, EvalError> {
        let prog =
            sensorlog_logic::parse_program(src).map_err(|e| EvalError::Internal(e.to_string()))?;
        let analysis = sensorlog_logic::analyze(&prog, &reg)?;
        RederiveEngine::new(analysis, reg)
    }

    /// Per-tuple state size is zero by construction.
    pub fn state_size(&self) -> usize {
        0
    }

    pub fn apply(&mut self, update: Update) -> Result<(), EvalError> {
        match update.kind {
            UpdateKind::Insert => self.insert(update),
            UpdateKind::Delete => self.delete(update),
        }
    }

    /// Insert: semi-naive delta cascade (sign-free — presence is the state).
    fn insert(&mut self, u: Update) -> Result<(), EvalError> {
        let _span = self.profiler.span("dred.insert");
        if !self
            .db
            .relation_mut(u.pred)
            .insert(u.tuple.clone(), TupleMeta::at(u.ts))
        {
            return Ok(());
        }
        if self.lineage.is_some() && !self.analysis.program.idb_preds().contains(&u.pred) {
            if let Some(log) = self.lineage.as_mut() {
                log.record_edb(u.pred, &u.tuple, 1, u.ts);
            }
        }
        let mut queue: VecDeque<(Symbol, Tuple)> = VecDeque::from([(u.pred, u.tuple.clone())]);
        let mut steps = 0;
        while let Some((pred, tuple)) = queue.pop_front() {
            steps += 1;
            if steps > self.max_cascade {
                return Err(EvalError::LimitExceeded {
                    what: "insert cascade",
                    limit: self.max_cascade,
                });
            }
            for ri in 0..self.analysis.program.rules.len() {
                let rule = self.analysis.program.rules[ri].clone();
                for (li, lit) in rule.body.iter().enumerate() {
                    let negated = match lit {
                        Literal::Pos(a) if a.pred == pred => false,
                        Literal::Neg(a) if a.pred == pred => true,
                        _ => continue,
                    };
                    if negated {
                        // An insert into a negated subgoal can only delete;
                        // over-delete the affected heads, then rederive.
                        let mut ev = BodyEval::new(&self.db, &self.reg);
                        ev.use_index = self.use_index;
                        self.body_evals += 1;
                        let sols =
                            ev.solutions(&rule.body, FlatSubst::new(), Some((li, &tuple)))?;
                        let mut victims = Vec::new();
                        for s in &sols {
                            victims.push((
                                rule.head.pred,
                                instantiate_head(&rule, &s.subst, &self.reg)?,
                            ));
                        }
                        drop(sols);
                        for (p, t) in victims {
                            if self.db.contains(p, &t) {
                                self.delete(Update::delete(p, t, u.ts))?;
                            }
                        }
                    } else {
                        let mut ev = BodyEval::new(&self.db, &self.reg);
                        ev.use_index = self.use_index;
                        self.body_evals += 1;
                        let sols =
                            ev.solutions(&rule.body, FlatSubst::new(), Some((li, &tuple)))?;
                        let mut fresh = Vec::new();
                        for s in &sols {
                            let t = instantiate_head(&rule, &s.subst, &self.reg)?;
                            let witness = self
                                .lineage
                                .is_some()
                                .then(|| (s.inputs.clone(), s.subst.clone()));
                            fresh.push((t, witness));
                        }
                        for (t, witness) in fresh {
                            // Record even when the head already exists — an
                            // alternative derivation is still a proof (the
                            // log deduplicates).
                            if let (Some((inputs, subst)), Some(log)) =
                                (&witness, self.lineage.as_mut())
                            {
                                let boxed = intern::boundary(|| subst.to_subst());
                                log.record_firing(
                                    rule.id,
                                    1,
                                    rule.head.pred,
                                    &t,
                                    inputs,
                                    Some(&boxed),
                                    u.ts,
                                );
                            }
                            if self
                                .db
                                .relation_mut(rule.head.pred)
                                .insert(t.clone(), TupleMeta::at(u.ts))
                            {
                                queue.push_back((rule.head.pred, t));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Delete: over-delete transitively, then rederive survivors.
    fn delete(&mut self, u: Update) -> Result<(), EvalError> {
        let _span = self.profiler.span("dred.delete");
        if !self.db.contains(u.pred, &u.tuple) {
            return Ok(());
        }
        // Phase 1: over-delete. Collect everything with a derivation
        // through the frontier, walking until closure.
        let mut overdeleted: Vec<(Symbol, Tuple)> = Vec::new();
        let mut frontier: VecDeque<(Symbol, Tuple)> = VecDeque::from([(u.pred, u.tuple.clone())]);
        let mut seen: HashSet<(Symbol, Tuple)> = HashSet::new();
        seen.insert((u.pred, u.tuple.clone()));
        let mut steps = 0;
        while let Some((pred, tuple)) = frontier.pop_front() {
            steps += 1;
            if steps > self.max_cascade {
                return Err(EvalError::LimitExceeded {
                    what: "delete cascade",
                    limit: self.max_cascade,
                });
            }
            for ri in 0..self.analysis.program.rules.len() {
                let rule = self.analysis.program.rules[ri].clone();
                for (li, lit) in rule.body.iter().enumerate() {
                    let matches_occ = match lit {
                        Literal::Pos(a) if a.pred == pred => true,
                        // A *delete* on a negated subgoal can only create
                        // tuples; handled in phase 3.
                        _ => false,
                    };
                    if !matches_occ {
                        continue;
                    }
                    let mut ev = BodyEval::new(&self.db, &self.reg);
                    ev.use_index = self.use_index;
                    self.body_evals += 1;
                    let sols = ev.solutions(&rule.body, FlatSubst::new(), Some((li, &tuple)))?;
                    let mut heads = Vec::new();
                    for s in &sols {
                        heads.push(instantiate_head(&rule, &s.subst, &self.reg)?);
                    }
                    for t in heads {
                        let key = (rule.head.pred, t.clone());
                        if self.db.contains(rule.head.pred, &t) && seen.insert(key.clone()) {
                            frontier.push_back(key);
                        }
                    }
                }
            }
            if (pred, tuple.clone()) != (u.pred, u.tuple.clone()) {
                overdeleted.push((pred, tuple));
            }
        }
        // Physically remove the base tuple and all casualties.
        self.db.remove(u.pred, &u.tuple);
        for (p, t) in &overdeleted {
            self.db.remove(*p, t);
        }
        // Lineage: over-deletion kills every recorded proof of each
        // casualty (and the root); phase 2 re-records survivors' witnesses.
        if let Some(log) = self.lineage.as_mut() {
            log.retract_atom(u.pred, &u.tuple, u.ts);
            for (p, t) in &overdeleted {
                log.retract_atom(*p, t, u.ts);
            }
        }

        // Phase 2: rederive casualties in stratum order, iterating until no
        // change (recursive rederivations feed each other).
        let strat = &self.analysis.strat;
        let mut remaining: Vec<(Symbol, Tuple)> = overdeleted;
        remaining.sort_by_key(|(p, _)| strat.level_of(*p));
        loop {
            let mut changed = false;
            let mut still_out = Vec::new();
            for (p, t) in remaining {
                if self.rederivable(p, &t, u.ts)? {
                    self.db
                        .relation_mut(p)
                        .insert(t.clone(), TupleMeta::at(u.ts));
                    changed = true;
                } else {
                    still_out.push((p, t));
                }
            }
            remaining = still_out;
            if !changed || remaining.is_empty() {
                break;
            }
        }

        // Phase 3: deletions may *unblock* negated subgoals. Find rules with
        // a negated occurrence of any deleted pred and derive additions.
        let mut unblock_frontier: Vec<(Symbol, Tuple)> = vec![(u.pred, u.tuple.clone())];
        unblock_frontier.extend(remaining.iter().cloned());
        for (pred, tuple) in unblock_frontier {
            for ri in 0..self.analysis.program.rules.len() {
                let rule = self.analysis.program.rules[ri].clone();
                for (li, lit) in rule.body.iter().enumerate() {
                    let is_neg_occ = matches!(lit, Literal::Neg(a) if a.pred == pred);
                    if !is_neg_occ {
                        continue;
                    }
                    let mut ev = BodyEval::new(&self.db, &self.reg);
                    ev.use_index = self.use_index;
                    self.body_evals += 1;
                    let sols = ev.solutions(&rule.body, FlatSubst::new(), Some((li, &tuple)))?;
                    let mut fresh = Vec::new();
                    for s in &sols {
                        fresh.push(instantiate_head(&rule, &s.subst, &self.reg)?);
                    }
                    for t in fresh {
                        if !self.db.contains(rule.head.pred, &t) {
                            self.insert(Update::insert(rule.head.pred, t, u.ts))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Can `tuple` of `pred` be derived from the current database?
    fn rederivable(&mut self, pred: Symbol, tuple: &Tuple, tau: u64) -> Result<bool, EvalError> {
        let _span = self.profiler.span("dred.rederive");
        for ri in 0..self.analysis.program.rules.len() {
            let rule = self.analysis.program.rules[ri].clone();
            if rule.head.pred != pred {
                continue;
            }
            // Seed by syntactic match against the (resolved) casualty — a
            // boundary op; the resulting ground bindings re-intern for the
            // flat body walk.
            let boxed_seed = intern::boundary(|| {
                let terms = tuple.terms();
                let mut s = Subst::new();
                match_args(&rule.head.args, &terms, &mut s).then_some(s)
            });
            let seed = match boxed_seed.and_then(|s| FlatSubst::from_subst(&s)) {
                Some(s) => s,
                None => continue,
            };
            // The casualty itself must not self-justify: exclude it from
            // every positive occurrence of its own predicate.
            let filter = TupleFilter {
                pred,
                tuple: tuple.clone(),
                literal_indexes: (0..rule.body.len()).collect(),
            };
            let ev = BodyEval {
                db: &self.db,
                reg: &self.reg,
                filter: Some(&filter),
                vis: None,
                use_index: self.use_index,
            };
            self.body_evals += 1;
            let sols = ev.solutions(&rule.body, seed, None)?;
            if !sols.is_empty() {
                if let Some(log) = self.lineage.as_mut() {
                    let s = &sols[0];
                    let boxed = intern::boundary(|| s.subst.to_subst());
                    log.record_firing(rule.id, 1, pred, tuple, &s.inputs, Some(&boxed), tau);
                }
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::Engine;
    use sensorlog_logic::parser::parse_fact;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    fn ins(fact: &str, ts: u64) -> Update {
        let (p, args) = parse_fact(fact).unwrap();
        Update::insert(p, Tuple::new(args), ts)
    }

    fn del(fact: &str, ts: u64) -> Update {
        let (p, args) = parse_fact(fact).unwrap();
        Update::delete(p, Tuple::new(args), ts)
    }

    fn assert_matches_oracle(e: &RederiveEngine, src: &str) {
        let oracle = Engine::from_source(src, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for p in &e.analysis.program.edb_preds() {
            for t in e.db.sorted(*p) {
                edb.insert(*p, t);
            }
        }
        let expect = oracle.run(&edb).unwrap();
        for p in e.analysis.program.idb_preds() {
            assert_eq!(e.db.sorted(p), expect.sorted(p), "divergence on {p}");
        }
    }

    #[test]
    fn alternative_derivation_survives() {
        let src = r#"
            q(Z) :- a(Z).
            q(Z) :- b(Z).
        "#;
        let mut e = RederiveEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        e.apply(ins("a(1)", 1)).unwrap();
        e.apply(ins("b(1)", 2)).unwrap();
        e.apply(del("a(1)", 3)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1")), "rederived via b");
        e.apply(del("b(1)", 4)).unwrap();
        assert!(!e.db.contains(sym("q"), &tup("1")));
    }

    #[test]
    fn recursive_overdelete_rederive() {
        let src = r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        let mut e = RederiveEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        // Diamond: 1->2->4, 1->3->4, then onward 4->5.
        for (i, (a, b)) in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)].iter().enumerate() {
            e.apply(ins(&format!("e({a}, {b})"), i as u64)).unwrap();
        }
        assert!(e.db.contains(sym("t"), &tup("1, 5")));
        // Deleting one diamond edge keeps reachability via the other side.
        e.apply(del("e(2, 4)", 10)).unwrap();
        assert!(e.db.contains(sym("t"), &tup("1, 4")), "rederived via 3");
        assert!(e.db.contains(sym("t"), &tup("1, 5")));
        assert!(!e.db.contains(sym("t"), &tup("2, 4")));
        assert_matches_oracle(&e, src);
        // Deleting the second edge disconnects.
        e.apply(del("e(3, 4)", 11)).unwrap();
        assert!(!e.db.contains(sym("t"), &tup("1, 4")));
        assert!(!e.db.contains(sym("t"), &tup("1, 5")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn negation_unblocking() {
        let src = r#"
            cov(L) :- enemy(L), friendly(F), dist(L, F) <= 5.
            uncov(L) :- not cov(L), enemy(L).
        "#;
        let mut e = RederiveEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        e.apply(ins("enemy(10)", 1)).unwrap();
        assert!(e.db.contains(sym("uncov"), &tup("10")));
        e.apply(ins("friendly(12)", 2)).unwrap();
        assert!(!e.db.contains(sym("uncov"), &tup("10")));
        e.apply(del("friendly(12)", 3)).unwrap();
        assert!(e.db.contains(sym("uncov"), &tup("10")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn rederivation_costs_more_body_evals() {
        // The ablation claim: deletions cost more under DRed than under
        // set-of-derivations when alternative derivations abound.
        let src = r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        let mut dred = RederiveEngine::from_source(src, BuiltinRegistry::standard()).unwrap();
        let mut sod =
            crate::incremental::IncrementalEngine::from_source(src, BuiltinRegistry::standard())
                .unwrap();
        let mut ts = 0;
        for a in 0..6 {
            for b in 0..6 {
                if a != b && (a + b) % 2 == 0 {
                    dred.apply(ins(&format!("e({a}, {b})"), ts)).unwrap();
                    sod.apply(ins(&format!("e({a}, {b})"), ts)).unwrap();
                    ts += 1;
                }
            }
        }
        let dred_before = dred.body_evals;
        let sod_before = sod.stats.body_evals;
        dred.apply(del("e(0, 2)", ts)).unwrap();
        sod.apply(del("e(0, 2)", ts)).unwrap();
        let dred_cost = dred.body_evals - dred_before;
        let sod_cost = sod.stats.body_evals - sod_before;
        assert!(
            dred_cost > sod_cost,
            "DRed delete cost {dred_cost} should exceed set-of-derivations {sod_cost}"
        );
    }

    #[test]
    fn rejects_xy_programs() {
        let src = r#"
            h(0, 0, 0).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#;
        assert!(RederiveEngine::from_source(src, BuiltinRegistry::standard()).is_err());
    }
}
