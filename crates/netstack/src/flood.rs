//! Procedural shortest-path-tree baseline (the Kairos comparator for
//! Example 3 / Fig. 8).
//!
//! The ~20-line procedural program the paper contrasts `logicH` against: a
//! BFS beacon flood where each node adopts the best parent heard so far and
//! re-broadcasts on improvement. Functionally equivalent to `logicH`'s
//! output; the experiments compare the *communication* of the deductive
//! in-network evaluation against this hand-written protocol.

use sensorlog_netsim::{App, Ctx, MsgMeta, NodeId, SimConfig, Simulator, Topology};
use sensorlog_telemetry::{Scope, Telemetry};

#[derive(Clone, Debug)]
pub struct DistBeacon {
    pub dist: u32,
}

impl MsgMeta for DistBeacon {
    fn size_bytes(&self) -> usize {
        4
    }
    fn kind(&self) -> &'static str {
        "flood"
    }
}

pub struct FloodNode {
    pub id: NodeId,
    pub root: NodeId,
    pub dist: Option<u32>,
    pub parent: Option<NodeId>,
    pub broadcasts: u32,
}

impl App for FloodNode {
    type Msg = DistBeacon;

    fn on_start(&mut self, ctx: &mut Ctx<DistBeacon>) {
        if self.id == self.root {
            self.dist = Some(0);
            self.broadcasts += 1;
            ctx.broadcast(DistBeacon { dist: 0 });
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<DistBeacon>, from: NodeId, msg: DistBeacon) {
        let d = msg.dist + 1;
        if self.dist.is_none_or(|cur| d < cur) {
            self.dist = Some(d);
            self.parent = Some(from);
            self.broadcasts += 1;
            ctx.broadcast(DistBeacon { dist: d });
        }
    }
}

/// Result of a flood run.
pub struct FloodResult {
    /// `(parent, dist)` per node; root has no parent.
    pub tree: Vec<(Option<NodeId>, Option<u32>)>,
    pub total_messages: u64,
    pub converged_at: u64,
}

/// Run the procedural baseline; deterministic for a given config seed.
pub fn run_flood(topo: &Topology, root: NodeId, config: SimConfig) -> FloodResult {
    run_flood_with(topo, root, config, Telemetry::disabled())
}

/// [`run_flood`] with a telemetry handle: the simulator records per-node
/// tx/rx counters and hop-delay histograms into the shared registry, the
/// whole run is timed under the `flood.run` phase, and per-node broadcast
/// counts land under `Scope::Layer("flood")`.
pub fn run_flood_with(
    topo: &Topology,
    root: NodeId,
    config: SimConfig,
    tele: Telemetry,
) -> FloodResult {
    let _span = tele.span("flood.run");
    let mut sim = Simulator::new(topo.clone(), config, move |id, _| FloodNode {
        id,
        root,
        dist: None,
        parent: None,
        broadcasts: 0,
    });
    sim.set_telemetry(tele.clone());
    let converged_at = sim.run_to_quiescence(100_000_000);
    tele.record_sim("flood.run", converged_at);
    for id in topo.nodes() {
        tele.add(
            Scope::Layer("flood"),
            "broadcasts",
            sim.node(id).broadcasts as u64,
        );
    }
    FloodResult {
        tree: topo
            .nodes()
            .map(|id| {
                let n = sim.node(id);
                (n.parent, n.dist)
            })
            .collect(),
        total_messages: sim.metrics.total_tx(),
        converged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_computes_bfs_distances() {
        let topo = Topology::square_grid(5);
        let res = run_flood(&topo, NodeId(0), SimConfig::default());
        for id in topo.nodes() {
            let (x, y) = topo.grid_coords(id).unwrap();
            assert_eq!(res.tree[id.index()].1, Some(x + y));
        }
        assert!(res.total_messages > 0);
    }

    #[test]
    fn flood_parents_form_tree() {
        let topo = Topology::square_grid(4);
        let res = run_flood(&topo, NodeId(5), SimConfig::default());
        // Every non-root has a parent one hop closer.
        for id in topo.nodes() {
            if id == NodeId(5) {
                assert!(res.tree[id.index()].0.is_none());
                continue;
            }
            let (p, d) = res.tree[id.index()];
            let p = p.unwrap();
            assert_eq!(res.tree[p.index()].1.unwrap() + 1, d.unwrap());
            assert!(topo.are_neighbors(id, p));
        }
    }

    #[test]
    fn flood_on_lossy_network_may_degrade() {
        let topo = Topology::square_grid(5);
        let res = run_flood(
            &topo,
            NodeId(0),
            SimConfig {
                loss_prob: 0.5,
                seed: 3,
                ..SimConfig::default()
            },
        );
        // With heavy loss some nodes may be unreached or have non-optimal
        // distances; the run must still terminate.
        let reached = res.tree.iter().filter(|(_, d)| d.is_some()).count();
        assert!(reached >= 1);
        assert!(reached <= topo.len());
    }

    #[test]
    fn message_count_scales_linearly() {
        // O(n) broadcasts in the loss-free case (each node broadcasts at
        // least once, rarely more due to delay races).
        let m8 = run_flood(&Topology::square_grid(8), NodeId(0), SimConfig::default());
        let m4 = run_flood(&Topology::square_grid(4), NodeId(0), SimConfig::default());
        let per_node8 = m8.total_messages as f64 / 64.0;
        let per_node4 = m4.total_messages as f64 / 16.0;
        assert!(per_node8 < per_node4 * 2.0);
    }
}
