//! Journal persistence across processes.
//!
//! A journal recorded in one process is saved to a JSONL file, then a
//! *separate* process loads the file, re-runs the identical deployment,
//! and verifies byte-identical replay via `ReplayChecker`. The child is
//! this same test binary, re-invoked with `SENSORLOG_REPLAY_JOURNAL` set,
//! so no auxiliary binary needs to exist.

use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::UniformStreams;
use sensorlog::prelude::*;
use sensorlog_netsim::{Journal, ReplayChecker, TraceRecord, TraceSink};
use std::cell::RefCell;
use std::path::Path;
use std::process::Command;
use std::rc::Rc;

const JOIN3: &str = r#"
    q(X, K) :- r1(X, K), r2(Y, K), X != Y.
"#;

const ENV_KEY: &str = "SENSORLOG_REPLAY_JOURNAL";

fn deployment() -> Deployment {
    let topo = Topology::square_grid(6);
    let w = UniformStreams {
        preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
        interval: 5_000,
        duration: 20_000,
        delete_fraction: 0.2,
        delete_lag: 3_000,
        groups: 18,
        seed: 5,
    };
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.15,
            seed: 23,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(w.events(&topo));
    d
}

/// Child role: load the journal written by the parent, re-run the same
/// deployment against a `ReplayChecker`, and exit nonzero on divergence.
fn replay_child(path: &Path) -> Result<(), String> {
    let recorded = Journal::load(path).map_err(|e| format!("load failed: {e}"))?;
    if recorded.records.is_empty() {
        return Err("loaded journal is empty".into());
    }
    struct SharedChecker(Rc<RefCell<ReplayChecker>>);
    impl TraceSink for SharedChecker {
        fn record(&mut self, rec: TraceRecord) {
            self.0.borrow_mut().record(rec);
        }
    }
    let checker = Rc::new(RefCell::new(ReplayChecker::new(recorded)));
    let mut d = deployment();
    d.sim.set_trace(Box::new(SharedChecker(checker.clone())));
    d.run(3_000_000);
    let verdict = checker.borrow().result();
    verdict.map_err(|div| div.to_string())
}

#[test]
fn journal_round_trips_across_processes() {
    // Child role: this test binary was re-spawned to do the replay half.
    if let Ok(path) = std::env::var(ENV_KEY) {
        match replay_child(Path::new(&path)) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("replay child failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Parent role: record, persist, verify the file round-trips in-process,
    // then hand it to a fresh process for the replay check.
    let mut d = deployment();
    let journal = d.attach_journal();
    d.run(3_000_000);
    let recorded = journal.take();
    assert!(!recorded.records.is_empty(), "run journaled nothing");

    let path = std::env::temp_dir().join(format!(
        "sensorlog_journal_xproc_{}.jsonl",
        std::process::id()
    ));
    recorded.save(&path).expect("save journal");
    let reloaded = Journal::load(&path).expect("load journal");
    assert_eq!(
        recorded.to_text(),
        reloaded.to_text(),
        "disk round-trip must be byte-identical"
    );
    assert_eq!(recorded.content_hash(), reloaded.content_hash());

    let exe = std::env::current_exe().expect("test executable path");
    let out = Command::new(exe)
        .arg("journal_round_trips_across_processes")
        .arg("--exact")
        .arg("--nocapture")
        .env(ENV_KEY, &path)
        .output()
        .expect("spawn replay child");
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "cross-process replay diverged:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
