//! Static-bound tightness sweep, exported as `BENCH_diag.json`.
//!
//! ```text
//! diag [--quick] [--out BENCH_diag.json]
//! ```
//!
//! Compares the legacy `S·Σ` memory bounds (`diag::memory_bounds`) against
//! the frontier-width abstract interpreter (`absint::frontier`) on the two
//! reference XY programs (logicH / logicJ) over small grids, with a real
//! loss-free deployment per case supplying the observed side:
//!
//! * **distinct live tuples** per predicate at convergence (the quantity
//!   both bounds promise to dominate network-wide);
//! * **max per-node peak** stored tuples (what `check_static_bounds`
//!   validates against);
//! * **tightness** — bound ÷ distinct live tuples, the sweep's headline.
//!
//! The process exits non-zero unless, for every finite predicate: the
//! frontier bound is sound (≥ live, ≥ per-node peak), no looser than the
//! legacy bound, and within 10× of the observed live count — the paper's
//! Sec. V bounds made actionable. A windowed non-XY recursion (the mirror
//! example) must flip from legacy-Unbounded to a finite frontier bound.
//! `--quick` runs the 5×5 grid only; the committed artifact also covers
//! 8×8.

use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_logic::absint::frontier;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::diag::{memory_bounds, BoundParams};
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};
use std::fmt::Write as _;
use std::process::ExitCode;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

/// Windowed non-XY recursion: finite only under the frontier pass's
/// windowed Herbrand domains (legacy reports Unbounded).
const MIRROR: &str = r#"
    .base s.
    .window s 60000.
    .output m.
    m(pair(A, B)) :- s(A, B).
    m(pair(B, A)) :- m(pair(A, B)).
"#;

struct PredRow {
    pred: String,
    legacy: Option<u64>,
    frontier: Option<u64>,
    live: u64,
    peak_node: u64,
}

struct Case {
    label: String,
    nodes: u64,
    rows: Vec<PredRow>,
}

fn run_grid_case(label: &str, src: &str, m: u32) -> Case {
    let topo = Topology::square_grid(m);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 17,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo.clone(), cfg)
        .expect("bench program compiles");
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(4_000_000);

    let params = BoundParams {
        nodes: d.sim.topology().len() as u64,
        default_events: 0,
        events: d.injected_events().clone(),
    };
    let legacy = memory_bounds(&d.prog.analysis);
    let fr = frontier(&d.prog.analysis);
    let edb = d.prog.analysis.program.edb_preds();

    let mut rows = Vec::new();
    let mut preds: Vec<Symbol> = legacy.keys().copied().collect();
    preds.sort_by_key(|p| p.as_str());
    for p in preds {
        let live = if edb.contains(&p) {
            d.injected_events().get(&p).copied().unwrap_or(0)
        } else {
            d.results(p).len() as u64
        };
        let peak_node = d
            .sim
            .topology()
            .nodes()
            .filter_map(|id| d.sim.node(id).peak_pred_stored.get(&p).copied())
            .max()
            .unwrap_or(0) as u64;
        rows.push(PredRow {
            pred: p.to_string(),
            legacy: legacy.get(&p).and_then(|b| b.eval(&params)),
            frontier: fr.bounds.get(&p).and_then(|b| b.eval(&params)),
            live,
            peak_node,
        });
    }
    Case {
        label: format!("{label}-{m}x{m}"),
        nodes: (m * m) as u64,
        rows,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_diag.json".into());

    let grids: &[u32] = if quick { &[5] } else { &[5, 8] };
    let mut cases = Vec::new();
    for &m in grids {
        cases.push(run_grid_case("logicH", LOGIC_H, m));
        cases.push(run_grid_case("logicJ", LOGIC_J, m));
    }

    let mut failed = false;
    for c in &cases {
        for r in &c.rows {
            let Some(f) = r.frontier else {
                eprintln!(
                    "diag: {} `{}` has no finite frontier bound",
                    c.label, r.pred
                );
                failed = true;
                continue;
            };
            if let Some(l) = r.legacy {
                if f > l {
                    eprintln!(
                        "diag: {} `{}` frontier {f} looser than legacy {l}",
                        c.label, r.pred
                    );
                    failed = true;
                }
            }
            if r.live > 0 && f < r.live {
                eprintln!(
                    "diag: {} `{}` frontier {f} below {} live tuples — unsound",
                    c.label, r.pred, r.live
                );
                failed = true;
            }
            if f < r.peak_node {
                eprintln!(
                    "diag: {} `{}` frontier {f} below per-node peak {} — unsound",
                    c.label, r.pred, r.peak_node
                );
                failed = true;
            }
            // The acceptance target: on these grid examples, the bound is
            // within 10× of what the network actually derived.
            if r.live > 0 && f > 10 * r.live {
                eprintln!(
                    "diag: {} `{}` frontier {f} over 10x the {} live tuples",
                    c.label, r.pred, r.live
                );
                failed = true;
            }
        }
    }

    // Windowed non-XY recursion: must flip Unbounded → finite.
    let mirror_prog = sensorlog_logic::parser::parse_program(MIRROR).expect("mirror parses");
    let mirror_an = sensorlog_logic::analyze::analyze(&mirror_prog, &BuiltinRegistry::standard())
        .expect("mirror analyzes");
    let mirror_params = BoundParams {
        nodes: 16,
        default_events: 20,
        events: Default::default(),
    };
    let m_sym = Symbol::intern("m");
    let mirror_legacy = memory_bounds(&mirror_an)
        .get(&m_sym)
        .and_then(|b| b.eval(&mirror_params));
    let mirror_frontier = frontier(&mirror_an)
        .bounds
        .get(&m_sym)
        .and_then(|b| b.eval(&mirror_params));
    if mirror_legacy.is_some() {
        eprintln!("diag: mirror `m` unexpectedly finite under the legacy pass");
        failed = true;
    }
    let Some(mf) = mirror_frontier else {
        eprintln!("diag: mirror `m` not finite under the frontier pass");
        return ExitCode::FAILURE;
    };

    // Hand-rolled JSON — stable field order, integer ratios, no deps.
    let mut s = String::from("{\n  \"bench\": \"diag\",\n");
    let _ = writeln!(s, "  \"quick\": {quick},");
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"case\": \"{}\", \"nodes\": {}, \"preds\": [",
            c.label, c.nodes
        );
        for (j, r) in c.rows.iter().enumerate() {
            let fmt_opt = |v: Option<u64>| {
                v.map(|v| v.to_string())
                    .unwrap_or_else(|| "\"unbounded\"".into())
            };
            let tight = match (r.frontier, r.live) {
                (Some(f), l) if l > 0 => (f / l).to_string(),
                _ => "null".into(),
            };
            let tight_legacy = match (r.legacy, r.live) {
                (Some(f), l) if l > 0 => (f / l).to_string(),
                _ => "null".into(),
            };
            let _ = writeln!(
                s,
                "      {{\"pred\": \"{}\", \"legacy\": {}, \"frontier\": {}, \
                 \"live\": {}, \"peak_node\": {}, \"tightness\": {}, \
                 \"tightness_legacy\": {}}}{}",
                r.pred,
                fmt_opt(r.legacy),
                fmt_opt(r.frontier),
                r.live,
                r.peak_node,
                tight,
                tight_legacy,
                if j + 1 < c.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "    ]}}{}", if i + 1 < cases.len() { "," } else { "" });
    }
    s.push_str("  ],\n");
    let _ = write!(
        s,
        "  \"mirror\": {{\"legacy\": \"unbounded\", \"frontier\": {mf}}}\n}}\n"
    );

    if failed {
        eprintln!("diag: tightness/soundness gate failed (artifact not written)");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &s) {
        eprintln!("diag: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    for c in &cases {
        let worst = c
            .rows
            .iter()
            .filter_map(|r| match (r.frontier, r.live) {
                (Some(f), l) if l > 0 => Some(f / l),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        println!("diag {}: worst tightness {}x", c.label, worst);
    }
    println!("diag OK: mirror m bound {mf} (legacy unbounded) -> {out_path}");
    ExitCode::SUCCESS
}
