//! Rule safety and builtin resolution.
//!
//! A rule is *safe* when every variable appearing in the head, in a negated
//! subgoal, in a comparison, or in a builtin predicate call is bound by a
//! positive relational subgoal (footnote 3 of the paper). We additionally
//! let an equality comparison `X == expr` act as an assignment when every
//! variable of `expr` is already bound — this is how "the last subgoal is
//! used to bound T" style constraints are expressed.

use crate::ast::{Literal, Program, Rule};
use crate::builtin::BuiltinRegistry;
use crate::span::Span;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// Safety violation diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct SafetyError {
    pub rule_id: usize,
    /// Source span of the offending rule (default for synthetic rules).
    pub span: Span,
    pub unbound: Vec<Symbol>,
    pub context: &'static str,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsafe rule #{} ({}) at {}: variable(s) {} not bound by any positive relational subgoal",
            self.rule_id,
            self.context,
            self.span,
            self.unbound
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

impl std::error::Error for SafetyError {}

/// Rewrite positive atoms whose predicate is a registered builtin predicate
/// into [`Literal::Builtin`] calls. The parser cannot distinguish them; this
/// runs during program validation.
pub fn resolve_builtins(rule: &Rule, reg: &BuiltinRegistry) -> Rule {
    let mut r = rule.clone();
    for lit in &mut r.body {
        if let Literal::Pos(a) = lit {
            if reg.is_pred(a.pred) {
                *lit = Literal::Builtin(a.clone());
            }
        }
    }
    r
}

/// Variables bound by the positive relational subgoals plus equality
/// assignments, computed to fixpoint. Thin wrapper over
/// [`crate::boundness::rule_bound_vars`], the shared boundness analysis.
pub fn bound_vars(rule: &Rule) -> BTreeSet<Symbol> {
    crate::boundness::rule_bound_vars(rule)
}

/// Check safety of a single rule (builtins must already be resolved).
pub fn check_rule(rule: &Rule) -> Result<(), SafetyError> {
    let bound = bound_vars(rule);
    let check = |vars: Vec<Symbol>, context: &'static str| -> Result<(), SafetyError> {
        let unbound: Vec<Symbol> = vars.into_iter().filter(|v| !bound.contains(v)).collect();
        if unbound.is_empty() {
            Ok(())
        } else {
            Err(SafetyError {
                rule_id: rule.id,
                span: rule.spans.rule,
                unbound,
                context,
            })
        }
    };
    check(rule.head_vars(), "head")?;
    for lit in &rule.body {
        match lit {
            Literal::Neg(a) => check(a.vars(), "negated subgoal")?,
            Literal::Builtin(a) => check(a.vars(), "builtin predicate")?,
            Literal::Cmp(_, l, r) => {
                let mut vs = Vec::new();
                l.collect_vars(&mut vs);
                r.collect_vars(&mut vs);
                check(vs, "comparison")?;
            }
            Literal::Pos(_) => {}
        }
    }
    Ok(())
}

/// Check safety of every rule of a program.
pub fn check_program(prog: &Program) -> Result<(), SafetyError> {
    for rule in &prog.rules {
        check_rule(rule)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn safe_rule_passes() {
        let r = parse_rule("q(X) :- p(X, Y), Y > 2.").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn unbound_head_var_fails() {
        let r = parse_rule("q(X, Z) :- p(X, Y).").unwrap();
        let err = check_rule(&r).unwrap_err();
        assert_eq!(err.unbound, vec![Symbol::intern("Z")]);
        assert_eq!(err.context, "head");
    }

    #[test]
    fn unbound_negated_var_fails() {
        let r = parse_rule("q(X) :- p(X), not s(X, Z).").unwrap();
        let err = check_rule(&r).unwrap_err();
        assert_eq!(err.context, "negated subgoal");
    }

    #[test]
    fn unbound_comparison_fails() {
        let r = parse_rule("q(X) :- p(X), Z > 2.").unwrap();
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn equality_assignment_binds() {
        // T bound by assignment from bound X.
        let r = parse_rule("q(X, T) :- p(X), T == X + 1.").unwrap();
        assert!(check_rule(&r).is_ok());
        // Cascading assignment: U depends on T which depends on X.
        let r = parse_rule("q(U) :- p(X), U == T * 2, T == X + 1.").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn assignment_cannot_bootstrap_itself() {
        let r = parse_rule("q(T) :- p(X), T == T + 1.").unwrap();
        assert!(check_rule(&r).is_err());
    }

    #[test]
    fn vars_inside_function_terms_bind() {
        // X and Y bound inside loc(...) in a positive subgoal.
        let r = parse_rule("q(X, Y) :- p(loc(X, Y)).").unwrap();
        assert!(check_rule(&r).is_ok());
    }

    #[test]
    fn builtin_resolution() {
        use std::sync::Arc;
        let mut reg = BuiltinRegistry::standard();
        reg.register_pred("close", Arc::new(|_args| Ok(true)));
        let r = parse_rule("q(X) :- p(X), close(X, X).").unwrap();
        let resolved = resolve_builtins(&r, &reg);
        assert!(matches!(resolved.body[1], Literal::Builtin(_)));
        assert!(matches!(resolved.body[0], Literal::Pos(_)));
        assert!(check_rule(&resolved).is_ok());
    }

    #[test]
    fn builtin_pred_needs_bound_args() {
        use std::sync::Arc;
        let mut reg = BuiltinRegistry::standard();
        reg.register_pred("close", Arc::new(|_args| Ok(true)));
        let r = parse_rule("q(X) :- p(X), close(X, Z).").unwrap();
        let resolved = resolve_builtins(&r, &reg);
        let err = check_rule(&resolved).unwrap_err();
        assert_eq!(err.context, "builtin predicate");
    }

    #[test]
    fn paper_example1_is_safe() {
        let prog = crate::parser::parse_program(
            r#"
            cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T), dist(L1, L2) <= 50.
            uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
            "#,
        )
        .unwrap();
        assert!(check_program(&prog).is_ok());
    }
}
