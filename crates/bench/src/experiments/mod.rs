//! The reconstructed Section-VI experiment suite (see DESIGN.md for the
//! provenance of each figure/table id).

pub mod ablation;
pub mod aggregates;
pub mod failures;
pub mod geometric;
pub mod holddown;
pub mod joins;
pub mod memory;
pub mod negation;
pub mod robustness;
pub mod sptree;
pub mod telemetry;
pub mod tracesum;
