//! First-order terms with function symbols.
//!
//! The paper's framework extends Datalog with function symbols (Sec. II-B):
//! a term is a constant, a variable, or `f(t1, …, tn)`. Lists are sugar over
//! the function symbols `$cons`/`$nil` (the parser accepts `[a, b | T]`).

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A 64-bit float with total ordering and stable hashing.
///
/// NaN compares greater than everything and equal to itself; `-0.0` is
/// canonicalized to `0.0` so that equal values hash equally.
#[derive(Copy, Clone, Debug)]
pub struct F64(f64);

impl F64 {
    pub fn new(v: f64) -> F64 {
        if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }
    pub fn get(self) -> f64 {
        self.0
    }
    fn key(self) -> u64 {
        if self.0.is_nan() {
            u64::MAX
        } else {
            let bits = self.0.to_bits();
            if bits >> 63 == 0 {
                bits | (1 << 63)
            } else {
                !bits
            }
        }
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// Function symbol used by the list sugar for cons cells.
pub fn cons_sym() -> Symbol {
    Symbol::intern("$cons")
}
/// Function symbol used by the list sugar for the empty list.
pub fn nil_sym() -> Symbol {
    Symbol::intern("$nil")
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// Integer constant. Timestamps and stage arguments are integers.
    Int(i64),
    /// Float constant (sensor readings, distances).
    Float(F64),
    /// String constant, written `"enemy"`.
    Str(Symbol),
    /// Symbolic constant, written lowercase: `enemy`.
    Atom(Symbol),
    /// Variable, written capitalized: `X`, `L1`. The anonymous variable `_`
    /// is expanded by the parser into fresh variables, so no `Var` ever
    /// holds `_` after parsing.
    Var(Symbol),
    /// Function application `f(t1, …, tn)`; also encodes lists and
    /// arithmetic (`add`, `sub`, `mul`, `div`, `mod`, `neg`).
    App(Symbol, Arc<[Term]>),
}

impl Term {
    pub fn float(v: f64) -> Term {
        Term::Float(F64::new(v))
    }
    pub fn str(s: &str) -> Term {
        Term::Str(Symbol::intern(s))
    }
    pub fn atom(s: &str) -> Term {
        Term::Atom(Symbol::intern(s))
    }
    pub fn var(s: &str) -> Term {
        Term::Var(Symbol::intern(s))
    }
    pub fn app(f: &str, args: Vec<Term>) -> Term {
        Term::App(Symbol::intern(f), args.into())
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::App(nil_sym(), Arc::from(Vec::new()))
    }

    /// A cons cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::App(cons_sym(), Arc::from(vec![head, tail]))
    }

    /// Build a proper list from `items`, optionally ending in `tail`
    /// (for `[a, b | T]` notation).
    pub fn list(items: Vec<Term>, tail: Option<Term>) -> Term {
        let mut acc = tail.unwrap_or_else(Term::nil);
        for item in items.into_iter().rev() {
            acc = Term::cons(item, acc);
        }
        acc
    }

    /// If this term is a proper list, return its elements.
    pub fn as_list(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::App(f, args) if *f == nil_sym() && args.is_empty() => return Some(out),
                Term::App(f, args) if *f == cons_sym() && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Collect the variables occurring in this term into `out` (in order of
    /// first occurrence, duplicates skipped).
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::App(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// All variables of the term.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Structural size (number of nodes); used to bound recursion depth in
    /// diagnostics and as a crude cost metric for message sizing.
    pub fn size(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Approximate serialized size in bytes, used by the simulator's
    /// message-cost accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Term::Int(_) | Term::Float(_) => 8,
            Term::Str(s) | Term::Atom(s) => 2 + s.as_str().len(),
            Term::Var(_) => 2,
            Term::App(f, args) => {
                2 + f.as_str().len() + args.iter().map(Term::byte_size).sum::<usize>()
            }
        }
    }

    /// Numeric view for comparisons: integers widen to floats when compared
    /// against floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Term::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{}", x.get()),
            Term::Str(s) => write!(f, "{:?}", s.as_str()),
            Term::Atom(s) => write!(f, "{s}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::App(_, _) => {
                if let Some(items) = self.as_list() {
                    write!(f, "[")?;
                    for (i, t) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, "]")
                } else if let Term::App(sym, args) = self {
                    // Improper list `[h | t]`.
                    if *sym == cons_sym() && args.len() == 2 {
                        return write!(f, "[{} | {}]", args[0], args[1]);
                    }
                    write!(f, "{sym}(")?;
                    for (i, t) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")
                } else {
                    unreachable!()
                }
            }
        }
    }
}

/// A ground tuple: the arguments of a fact. Cheap to clone (shared storage),
/// ordered and hashable so relations can be kept as sets.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Term]>);

impl Tuple {
    /// Construct from ground terms. Panics (debug builds) if any term is
    /// non-ground: facts are ground by construction everywhere upstream.
    pub fn new(terms: Vec<Term>) -> Tuple {
        debug_assert!(terms.iter().all(Term::is_ground), "non-ground fact");
        Tuple(terms.into())
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn terms(&self) -> &[Term] {
        &self.0
    }

    pub fn get(&self, i: usize) -> &Term {
        &self.0[i]
    }

    /// Sum of the argument byte sizes (message-cost accounting).
    pub fn byte_size(&self) -> usize {
        self.0.iter().map(Term::byte_size).sum()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Vec<Term>> for Tuple {
    fn from(v: Vec<Term>) -> Tuple {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip() {
        let l = Term::list(vec![Term::Int(1), Term::Int(2), Term::Int(3)], None);
        let items = l.as_list().expect("proper list");
        assert_eq!(items.len(), 3);
        assert_eq!(*items[1], Term::Int(2));
        assert_eq!(l.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn improper_list_display() {
        let l = Term::cons(Term::Int(1), Term::var("T"));
        assert!(l.as_list().is_none());
        assert_eq!(l.to_string(), "[1 | T]");
    }

    #[test]
    fn groundness() {
        assert!(Term::Int(5).is_ground());
        assert!(!Term::var("X").is_ground());
        let t = Term::app("f", vec![Term::Int(1), Term::var("X")]);
        assert!(!t.is_ground());
        assert_eq!(t.vars(), vec![Symbol::intern("X")]);
    }

    #[test]
    fn var_collection_dedups_and_orders() {
        let t = Term::app(
            "f",
            vec![
                Term::var("X"),
                Term::app("g", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        assert_eq!(t.vars(), vec![Symbol::intern("X"), Symbol::intern("Y")]);
    }

    #[test]
    fn float_total_order() {
        let nan = F64::new(f64::NAN);
        assert_eq!(nan, nan);
        assert!(F64::new(1.0) < F64::new(2.0));
        assert!(F64::new(-1.0) < F64::new(0.0));
        assert!(F64::new(2.0) < nan);
        assert_eq!(F64::new(0.0), F64::new(-0.0));
    }

    #[test]
    fn float_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Term::float(0.0));
        assert!(s.contains(&Term::float(-0.0)));
    }

    #[test]
    fn tuple_ordering_deterministic() {
        let a = Tuple::new(vec![Term::Int(1), Term::atom("a")]);
        let b = Tuple::new(vec![Term::Int(1), Term::atom("b")]);
        assert!(a < b);
        assert_eq!(a.to_string(), "(1, a)");
    }

    #[test]
    fn term_size_and_bytes() {
        let t = Term::app("f", vec![Term::Int(1), Term::str("xy")]);
        assert_eq!(t.size(), 3);
        assert!(t.byte_size() > 8);
    }
}
