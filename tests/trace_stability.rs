//! Pinned trace-hash regression: a lossy 200-node logicH run whose event
//! journal must stay byte-identical across observability changes, and must
//! be unaffected by enabling telemetry (the observer may never touch the
//! RNG, the event queue, or timers).
//!
//! The pinned values come from `examples/trace_hash.rs` run at the
//! origin-keyed-tie baseline. If a change legitimately alters simulator
//! behavior (new message kind, different timer schedule), re-run the
//! example and update the constants — but an unexplained diff here means
//! determinism broke.
//!
//! The same pin also gates the scheduler backends: the retained binary
//! heap, the hierarchical timer wheel, and the region-sharded lockstep
//! scheduler must all produce this exact journal — the shard backend's
//! window barriers and mailbox flushes are required to be observationally
//! invisible.

use proptest::prelude::*;
use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::prelude::*;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const PINNED_HASH: u64 = 0xf223a9e4a847cca2;
const PINNED_RECORDS: usize = 29219;
const PINNED_TX: u64 = 14138;

fn run_probe(telemetry: Telemetry) -> (usize, u64, u64) {
    run_probe_full(telemetry, Sched::Wheel, Provenance::disabled()).0
}

fn run_probe_sched(telemetry: Telemetry, sched: Sched) -> (usize, u64, u64) {
    run_probe_full(telemetry, sched, Provenance::disabled()).0
}

/// Returns the journal fingerprint triple plus the number of provenance
/// records the run captured.
fn run_probe_full(
    telemetry: Telemetry,
    sched: Sched,
    provenance: Provenance,
) -> ((usize, u64, u64), usize) {
    let topo = Topology::grid(20, 10); // 200 nodes
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.1,
            seed: 17,
            sched,
            ..SimConfig::default()
        },
        telemetry,
        provenance: provenance.clone(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    // Force the shard backend into real lockstep windows: at 200 nodes its
    // pending queue would often sit below the serial-fallback threshold,
    // and this pin is meant to exercise barriers + mailbox flushes, not
    // the fallback path. No effect on the other backends.
    d.set_shard_threshold(0);
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(2_000_000);
    let j = journal.take();
    (
        (j.records.len(), j.content_hash(), d.metrics().total_tx()),
        provenance.len(),
    )
}

#[test]
fn lossy_logic_h_trace_is_pinned() {
    let (records, hash, tx) = run_probe(Telemetry::disabled());
    assert_eq!(records, PINNED_RECORDS, "journal record count drifted");
    assert_eq!(tx, PINNED_TX, "transmission count drifted");
    assert_eq!(hash, PINNED_HASH, "journal content hash drifted");
}

#[test]
fn heap_backend_matches_the_same_pin() {
    // The scheduler backend is observationally pure: the retained binary
    // heap must hit the exact constants pinned for the timer wheel.
    let (records, hash, tx) = run_probe_sched(Telemetry::disabled(), Sched::Heap);
    assert_eq!(records, PINNED_RECORDS, "heap backend record count drifted");
    assert_eq!(tx, PINNED_TX, "heap backend transmission count drifted");
    assert_eq!(
        hash, PINNED_HASH,
        "heap and wheel schedulers produced different journals"
    );
}

#[test]
fn shard_backend_matches_the_same_pin() {
    // The region-sharded lockstep scheduler — per-region wheels advanced
    // in lookahead-bounded windows, cross-region mailboxes flushed at the
    // barrier, trace merged by (at, key) — must hit the exact constants
    // pinned for the single wheel. Byte-identity, not statistical
    // similarity: conservative PDES is an execution strategy, not a model
    // change.
    let (records, hash, tx) = run_probe_sched(Telemetry::disabled(), Sched::Shard { workers: 2 });
    assert_eq!(
        records, PINNED_RECORDS,
        "shard backend record count drifted"
    );
    assert_eq!(tx, PINNED_TX, "shard backend transmission count drifted");
    assert_eq!(
        hash, PINNED_HASH,
        "sharded and single-wheel schedulers produced different journals"
    );
}

#[test]
fn telemetry_does_not_perturb_the_trace() {
    let (records, hash, tx) = run_probe(Telemetry::enabled());
    assert_eq!(records, PINNED_RECORDS);
    assert_eq!(tx, PINNED_TX);
    assert_eq!(
        hash, PINNED_HASH,
        "an enabled telemetry handle changed simulator behavior"
    );
}

#[test]
fn provenance_does_not_perturb_the_trace() {
    // The provenance plane is a pure observer, exactly like telemetry:
    // with recording enabled the journal must stay byte-identical to the
    // pin, while actually capturing a non-trivial record log. Disabled,
    // it must capture nothing at all.
    let ((records, hash, tx), n_prov) =
        run_probe_full(Telemetry::disabled(), Sched::Wheel, Provenance::enabled());
    assert_eq!(records, PINNED_RECORDS);
    assert_eq!(tx, PINNED_TX);
    assert_eq!(
        hash, PINNED_HASH,
        "an enabled provenance handle changed simulator behavior"
    );
    assert!(
        n_prov > 1_000,
        "a 200-node logicH run should capture thousands of provenance records, got {n_prov}"
    );

    let (_, n_disabled) =
        run_probe_full(Telemetry::disabled(), Sched::Wheel, Provenance::disabled());
    assert_eq!(n_disabled, 0, "disabled plane must record nothing");
}

#[test]
fn provenance_pin_holds_on_the_shard_backend_too() {
    // Under the region-sharded scheduler nodes run on worker threads, so
    // provenance recording goes through the shared mutex concurrently —
    // the journal must still match the pin byte-for-byte.
    let ((records, hash, tx), n_prov) = run_probe_full(
        Telemetry::disabled(),
        Sched::Shard { workers: 2 },
        Provenance::enabled(),
    );
    assert_eq!(records, PINNED_RECORDS);
    assert_eq!(tx, PINNED_TX);
    assert_eq!(
        hash, PINNED_HASH,
        "provenance under the shard backend changed the journal"
    );
    assert!(n_prov > 1_000);
}

/// Shard-vs-wheel journals for a small lossy logicH run under arbitrary
/// worker counts and seeds. Returns the two record vectors.
fn shard_oracle_pair(
    cols: usize,
    rows: usize,
    seed: u64,
    loss: f64,
    workers: usize,
) -> (
    Vec<sensorlog::netsim::TraceRecord>,
    Vec<sensorlog::netsim::TraceRecord>,
) {
    let mut out = Vec::new();
    for sched in [Sched::Wheel, Sched::Shard { workers }] {
        let topo = Topology::grid(cols as u32, rows as u32);
        let cfg = DeployConfig {
            rt: RtConfig {
                strategy: Strategy::Perpendicular { band_width: 1.0 },
                ..RtConfig::default()
            },
            sim: SimConfig {
                loss_prob: loss,
                seed,
                sched,
                ..SimConfig::default()
            },
            ..DeployConfig::default()
        };
        let mut d =
            Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
        d.set_shard_threshold(0);
        let journal = d.attach_journal();
        d.schedule_all(graph_edges(&topo, 40, 120));
        d.run(400_000);
        out.push(journal.take().records);
    }
    let shard = out.pop().unwrap();
    let wheel = out.pop().unwrap();
    (wheel, shard)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Window-barrier flushing never reorders deliveries: for random grid
    /// shapes, seeds, loss rates, and worker counts, the sharded journal is
    /// record-for-record identical to the single-wheel oracle, and its
    /// timestamps are nondecreasing — same-tick records keep the oracle's
    /// (at, seq) order across every barrier.
    #[test]
    fn window_barriers_never_reorder_same_tick_deliveries(
        cols in 3usize..7,
        rows in 2usize..5,
        seed in 0u64..1_000,
        loss in prop_oneof![Just(0.0), Just(0.15)],
        workers in 1usize..5,
    ) {
        let (wheel, shard) = shard_oracle_pair(cols, rows, seed, loss, workers);
        prop_assert_eq!(wheel.len(), shard.len());
        for (w, s) in wheel.iter().zip(shard.iter()) {
            prop_assert_eq!(w, s);
        }
        for pair in shard.windows(2) {
            prop_assert!(
                pair[0].at <= pair[1].at,
                "merged journal time went backwards: {} then {}",
                pair[0].at,
                pair[1].at
            );
            prop_assert!(pair[0].seq < pair[1].seq, "seq not strictly increasing");
        }
    }
}
