//! The per-node runtime: the compiled program's node state machine
//! (Sec. V, Fig. 3 — "the join component at a sensor node").
//!
//! Each node holds replicated fragments of the streams whose storage
//! regions cross it, runs the storage and join-computation phases of the
//! Generalized Perpendicular Approach, and — for derived tuples it owns
//! under the geographic hash — maintains the set of derivations with
//! multiplicity counts and propagates liveness transitions as new stream
//! updates (Secs. III-B, IV).

use crate::msg::{Payload, ProbeMsg, RuleWork};
use crate::partial::{process_partials, seed_partial, LocalCtx, Partial, RuleShape};
use crate::plan::DistProgram;
use crate::strategy::{PassMode, Strategy};
use crate::tupleid::{DerivationKey, FactRecord, TupleId};
use sensorlog_eval::relation::{Database, TupleMeta};
use sensorlog_eval::{IncrementalEngine, Update, UpdateKind};
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::{App, Ctx, MsgMeta, NodeId, SimTime, Topology, TopologyKind};
use sensorlog_netstack::ght;
use sensorlog_telemetry::{Histogram, Scope, Telemetry, SIM_MS_BUCKETS};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Shared routing context: the topology plus (off-grid) precomputed BFS
/// next-hop tables.
#[derive(Debug)]
pub struct NetInfo {
    pub topo: Topology,
    next_hop_tbl: Option<Vec<Vec<u32>>>,
    /// Network depth in hops: the longest route a message can take
    /// (grid diameter, or BFS eccentricity of node 0 off-grid). Scales
    /// per-hop latency estimates up to end-to-end bounds; always ≥ 1.
    depth: SimTime,
}

impl NetInfo {
    pub fn new(topo: Topology) -> NetInfo {
        let (next_hop_tbl, depth) = match topo.kind {
            TopologyKind::Grid { cols, rows } => (None, (cols + rows).saturating_sub(2) as SimTime),
            _ => (
                Some(build_next_hop(&topo)),
                bfs_eccentricity(&topo, NodeId(0)),
            ),
        };
        NetInfo {
            topo,
            next_hop_tbl,
            depth: depth.max(1),
        }
    }

    /// Network depth in hops (≥ 1).
    pub fn depth(&self) -> SimTime {
        self.depth
    }

    /// Next hop from `from` toward `dest` (`from != dest`). `None` when
    /// `dest` is unreachable from `from` (disconnected topology) — callers
    /// on the message path must treat that as a routed drop, not a panic.
    pub fn next_hop(&self, from: NodeId, dest: NodeId) -> Option<NodeId> {
        debug_assert_ne!(from, dest);
        if let (Some((fx, fy)), Some((dx, dy))) =
            (self.topo.grid_coords(from), self.topo.grid_coords(dest))
        {
            let (nx, ny) = if fx != dx {
                (if dx > fx { fx + 1 } else { fx - 1 }, fy)
            } else {
                (fx, if dy > fy { fy + 1 } else { fy - 1 })
            };
            return self.topo.node_at(nx, ny);
        }
        let tbl = self.next_hop_tbl.as_ref()?;
        match tbl[dest.index()][from.index()] {
            u32::MAX => None, // BFS never reached `from` from `dest`
            hop => Some(NodeId(hop)),
        }
    }
}

fn build_next_hop(topo: &Topology) -> Vec<Vec<u32>> {
    let n = topo.len();
    let mut out = vec![vec![u32::MAX; n]; n];
    for dest in topo.nodes() {
        let tbl = &mut out[dest.index()];
        let mut seen = vec![false; n];
        seen[dest.index()] = true;
        let mut q = std::collections::VecDeque::from([dest]);
        while let Some(v) = q.pop_front() {
            for &w in topo.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    tbl[w.index()] = v.0;
                    q.push_back(w);
                }
            }
        }
    }
    out
}

/// Max BFS hop distance from `root` to any reachable node.
fn bfs_eccentricity(topo: &Topology, root: NodeId) -> SimTime {
    let mut dist = vec![u64::MAX; topo.len()];
    dist[root.index()] = 0;
    let mut ecc = 0;
    let mut q = std::collections::VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &w in topo.neighbors(v) {
            if dist[w.index()] == u64::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                ecc = ecc.max(dist[w.index()]);
                q.push_back(w);
            }
        }
    }
    ecc
}

/// Runtime timing/strategy configuration, shared by all nodes.
#[derive(Clone, Debug)]
pub struct RtConfig {
    pub strategy: Strategy,
    pub pass_mode: PassMode,
    /// Upper bound on storage-phase completion (τs, ms).
    pub tau_s: SimTime,
    /// Max clock skew (τc, ms) — must match the simulator's.
    pub tau_c: SimTime,
    /// Upper bound on join-phase completion (τj, ms) — used in retention.
    pub tau_j: SimTime,
    /// Spatial-constraint radius truncating regions (Fig. 7 experiments).
    pub spatial_radius: Option<f64>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            pass_mode: PassMode::OnePass,
            tau_s: 1_500,
            tau_c: 0,
            tau_j: 3_000,
            spatial_radius: None,
        }
    }
}

/// Owner-side state of a derived tuple.
#[derive(Debug, Default)]
struct Owned {
    id: Option<TupleId>,
    counts: HashMap<DerivationKey, i64>,
    /// The liveness last propagated into the network.
    propagated_live: bool,
    holddown_armed: bool,
}

impl Owned {
    fn live(&self) -> bool {
        self.counts.values().any(|&c| c > 0)
    }
}

/// Per-node resource/activity counters (Sec. V memory accounting, Table 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    pub peak_replicas: usize,
    pub peak_derivations: usize,
    pub probes_processed: u64,
    pub results_emitted: u64,
    /// Messages dropped at this node because their destination was
    /// unreachable or their payload could not be applied (e.g. a
    /// `ToCenter` arriving at a non-center node). Kept separate from radio
    /// losses: these drops are routing/protocol-level.
    pub routing_drops: u64,
}

enum TimerAction {
    StartJoin(FactRecord),
    Holddown(Symbol, Tuple),
    /// Drop a replicated fragment whose retention elapsed (Sec. IV-B
    /// "Tuple Expiry": (τs + τc) + τj + (τw + τc) after generation).
    ExpireReplica(Symbol, Tuple),
    /// Silently expire an owned derived tuple (window-based, no join
    /// phase — "independently expiring a tuple after sufficient time").
    ExpireOwned(Symbol, Tuple),
}

/// The sensorlog node application.
pub struct SensorlogNode {
    pub id: NodeId,
    prog: Arc<DistProgram>,
    cfg: Arc<RtConfig>,
    net: Arc<NetInfo>,
    shapes: Arc<Vec<RuleShape>>,
    /// Replicated stream fragments (with gen/del timestamps).
    frags: Database,
    frag_ids: HashMap<(Symbol, Tuple), TupleId>,
    /// Derived tuples this node owns under the geographic hash.
    owned: HashMap<(Symbol, Tuple), Owned>,
    /// Tuples this node generated (for delete-by-value at the source).
    my_facts: HashMap<(Symbol, Tuple), TupleId>,
    /// Flood dedup (NaiveBroadcast storage).
    flood_seen: HashSet<(TupleId, UpdateKind)>,
    timers: HashMap<u64, TimerAction>,
    next_tag: u64,
    seq: u32,
    /// Centroid baseline: the central server's engine (center node only).
    pub center_engine: Option<IncrementalEngine>,
    pub stats: NodeStats,
    /// Peak stored items per predicate (fragment replicas + owned derived
    /// entries), cross-validated against the static memory bounds of
    /// `logic::diag` by `crate::invariants::check_static_bounds`.
    pub peak_pred_stored: BTreeMap<Symbol, usize>,
    /// Live owned-entry count per predicate (`owned` is keyed by
    /// (pred, tuple); this avoids a full scan on every delta).
    owned_per_pred: HashMap<Symbol, usize>,
    /// Output-predicate transitions observed at this owner.
    pub output_log: Vec<(Symbol, Tuple, UpdateKind, SimTime)>,
    /// Telemetry handle shared across the deployment (disabled by default;
    /// a pure observer — it never touches timers, messages, or the RNG).
    tele: Telemetry,
    /// Always-on per-hop result-lag histogram feeding the adaptive holddown
    /// default. Deliberately NOT behind the telemetry handle: its samples
    /// are pure simulated-time values (deterministic for a fixed seed), and
    /// the derived holddown affects the schedule — keeping it always-on
    /// preserves the "telemetry never perturbs the trace" invariant.
    hop_lag: Histogram,
}

impl SensorlogNode {
    pub fn new(
        id: NodeId,
        prog: Arc<DistProgram>,
        cfg: Arc<RtConfig>,
        net: Arc<NetInfo>,
        shapes: Arc<Vec<RuleShape>>,
        tele: Telemetry,
    ) -> SensorlogNode {
        let center_engine =
            if cfg.strategy == Strategy::Centroid && Strategy::center(&net.topo) == id {
                let mut engine = IncrementalEngine::new(prog.analysis.clone(), prog.reg.clone())
                    .expect("centroid engine");
                engine.profiler = tele.profiler();
                Some(engine)
            } else {
                None
            };
        SensorlogNode {
            id,
            prog,
            cfg,
            net,
            shapes,
            frags: Database::new(),
            frag_ids: HashMap::new(),
            owned: HashMap::new(),
            my_facts: HashMap::new(),
            flood_seen: HashSet::new(),
            timers: HashMap::new(),
            next_tag: 0,
            seq: 0,
            center_engine,
            stats: NodeStats::default(),
            peak_pred_stored: BTreeMap::new(),
            owned_per_pred: HashMap::new(),
            output_log: Vec::new(),
            tele,
            hop_lag: Histogram::new(SIM_MS_BUCKETS),
        }
    }

    /// Record the current stored-item count for `pred` into its peak.
    fn note_pred_stored(&mut self, pred: Symbol) {
        let cur = self.frags.len_of(pred) + self.owned_per_pred.get(&pred).copied().unwrap_or(0);
        let peak = self.peak_pred_stored.entry(pred).or_insert(0);
        *peak = (*peak).max(cur);
    }

    // ------------------------------------------------------------------
    // Public entry points (driven by the deployment harness)
    // ------------------------------------------------------------------

    /// A sensor reading was generated at this node: create the fact and
    /// run the update pipeline.
    pub fn generate(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        self.tele.bump(Scope::Pred(pred.as_str()), "generated");
        let id = self.fresh_id(ctx);
        self.my_facts.insert((pred, tuple.clone()), id);
        let fact = FactRecord::insert(pred, tuple, id);
        self.initiate_update(ctx, fact);
    }

    /// A previously generated reading was retracted at this node.
    pub fn retract(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let Some(&id) = self.my_facts.get(&(pred, tuple.clone())) else {
            return; // unknown tuple: nothing to delete
        };
        self.tele.bump(Scope::Pred(pred.as_str()), "retracted");
        self.my_facts.remove(&(pred, tuple.clone()));
        let fact = FactRecord::delete(pred, tuple, id, ctx.local_time);
        self.initiate_update(ctx, fact);
    }

    /// Inject a derived fact directly at its owner (static facts from
    /// empty-body rules, t = 0).
    pub fn inject_static(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let id = self.fresh_id(ctx);
        if !self.owned.contains_key(&(pred, tuple.clone())) {
            *self.owned_per_pred.entry(pred).or_insert(0) += 1;
        }
        let entry = self.owned.entry((pred, tuple.clone())).or_default();
        entry.id = Some(id);
        entry
            .counts
            .insert(DerivationKey::new(usize::MAX, Vec::new()), 1);
        entry.propagated_live = true;
        self.note_pred_stored(pred);
        self.log_output(pred, &tuple, UpdateKind::Insert, ctx.local_time);
        let fact = FactRecord::insert(pred, tuple, id);
        self.initiate_update(ctx, fact);
    }

    /// Live result tuples of `pred` owned by this node.
    pub fn owned_live(&self, pred: Symbol) -> Vec<Tuple> {
        self.owned
            .iter()
            .filter(|((p, _), o)| *p == pred && o.live())
            .map(|((_, t), _)| t.clone())
            .collect()
    }

    /// Current replica count (fragment tuples stored here).
    pub fn replica_count(&self) -> usize {
        self.frags.total_tuples()
    }

    /// Join-index activity on this node: fragment-store probes plus, on a
    /// Centroid center, the incremental engine's database.
    pub fn index_stats(&self) -> sensorlog_eval::IndexStatsSnapshot {
        let mut s = self.frags.index_stats();
        if let Some(engine) = &self.center_engine {
            s.merge(engine.db.index_stats());
        }
        s
    }

    // ------------------------------------------------------------------
    // Invariant-checker views (read-only; see `crate::invariants`)
    // ------------------------------------------------------------------

    /// Every per-derivation-key count with its owning (pred, tuple) —
    /// at quiescence all of these must be non-negative.
    pub fn derivation_count_entries(&self) -> Vec<(Symbol, Tuple, i64)> {
        let mut out: Vec<(Symbol, Tuple, i64)> = self
            .owned
            .iter()
            .flat_map(|((p, t), o)| o.counts.values().map(move |&c| (*p, t.clone(), c)))
            .collect();
        out.sort();
        out
    }

    /// Every `TupleId → (pred, tuple)` binding this node holds: facts it
    /// generated, fragment replicas, and owned derived tuples. A given id
    /// must denote the same fact wherever it appears in the network.
    pub fn id_bindings(&self) -> Vec<(TupleId, Symbol, Tuple)> {
        let mut out: Vec<(TupleId, Symbol, Tuple)> = Vec::new();
        out.extend(
            self.my_facts
                .iter()
                .map(|((p, t), &id)| (id, *p, t.clone())),
        );
        out.extend(
            self.frag_ids
                .iter()
                .map(|((p, t), &id)| (id, *p, t.clone())),
        );
        out.extend(
            self.owned
                .iter()
                .filter_map(|((p, t), o)| o.id.map(|id| (id, *p, t.clone()))),
        );
        out.sort();
        out
    }

    /// Owner entries that have not settled: a holddown still armed, or a
    /// liveness state differing from what was last propagated. Must be
    /// empty once the network quiesces.
    pub fn unsettled_owned(&self) -> Vec<(Symbol, Tuple)> {
        let mut out: Vec<(Symbol, Tuple)> = self
            .owned
            .iter()
            .filter(|(_, o)| o.holddown_armed || o.live() != o.propagated_live)
            .map(|((p, t), _)| (*p, t.clone()))
            .collect();
        out.sort();
        out
    }

    /// Current stored derivation count.
    pub fn derivation_count(&self) -> usize {
        self.owned.values().map(|o| o.counts.len()).sum()
    }

    // ------------------------------------------------------------------
    // Update pipeline
    // ------------------------------------------------------------------

    fn fresh_id(&mut self, ctx: &Ctx<Payload>) -> TupleId {
        let id = TupleId {
            node: self.id,
            ts: ctx.local_time,
            seq: self.seq,
        };
        self.seq += 1;
        id
    }

    /// Start the storage phase for `fact` and schedule its join phase.
    fn initiate_update(&mut self, ctx: &mut Ctx<Payload>, fact: FactRecord) {
        let _span = self.tele.span("core.update.initiate");
        // A stream no rule consumes needs neither replication nor a probe:
        // derived results "will anyway be hashed appropriately for further
        // use of the join-query result" (Sec. III-A) — and sink predicates
        // have no further use beyond their owner.
        if !self.prog.occurrences.contains_key(&fact.pred)
            && self.cfg.strategy != Strategy::Centroid
        {
            return;
        }
        if self.cfg.strategy == Strategy::Centroid {
            let center = Strategy::center(&self.net.topo);
            if center == self.id {
                self.feed_center(&fact);
            } else {
                self.route(ctx, center, Payload::ToCenter { fact });
            }
            return;
        }

        // Storage phase.
        match self.cfg.strategy {
            Strategy::NaiveBroadcast => {
                self.store_replica(ctx, &fact);
                self.flood_seen.insert((fact.id, fact.kind));
                self.tele
                    .bump(Scope::Pred(fact.pred.as_str()), "flood_broadcasts");
                ctx.broadcast(Payload::FloodStore { fact: fact.clone() });
            }
            _ => {
                let region = self
                    .cfg
                    .strategy
                    .storage_region(&self.net.topo, self.id, self.cfg.spatial_radius)
                    .expect("non-centroid strategy has regions");
                self.store_replica(ctx, &fact);
                let my_pos = region.iter().position(|&n| n == self.id);
                let walk: Vec<NodeId> = match my_pos {
                    Some(i) => {
                        // Walk right then wrap to the left part: two walks.
                        let right: Vec<NodeId> = region[i + 1..].to_vec();
                        let left: Vec<NodeId> = region[..i].iter().rev().copied().collect();
                        if !right.is_empty() {
                            self.send_store_walk(ctx, &fact, right);
                        }
                        left
                    }
                    None => region,
                };
                if !walk.is_empty() {
                    self.send_store_walk(ctx, &fact, walk);
                }
            }
        }

        // Join phase after τs + τc (Sec. IV-A).
        let delay = self.cfg.tau_s + self.cfg.tau_c;
        let tag = self.arm_timer(TimerAction::StartJoin(fact));
        ctx.set_timer(delay, tag);
    }

    fn send_store_walk(&mut self, ctx: &mut Ctx<Payload>, fact: &FactRecord, walk: Vec<NodeId>) {
        let first = walk[0];
        let msg = Payload::StoreWalk {
            fact: fact.clone(),
            walk: Arc::new(walk),
            pos: 0,
        };
        self.route(ctx, first, msg);
    }

    fn store_replica(&mut self, ctx: &mut Ctx<Payload>, fact: &FactRecord) {
        // Generation-aware replica storage: insert and delete walks may
        // arrive in either order (independent multi-hop routes), so the
        // replica tracks the newest tuple *generation* (by ID, Definition 2)
        // and a tombstone never gets clobbered by its own generation's
        // late-arriving insert.
        self.tele
            .bump(Scope::Pred(fact.pred.as_str()), "replicas_stored");
        let key = (fact.pred, fact.tuple.clone());
        let stored = self.frag_ids.get(&key).copied();
        match fact.kind {
            UpdateKind::Insert => match stored {
                // Same generation already here (possibly tombstoned by an
                // overtaking delete), or a newer one: nothing to do.
                Some(old) if old >= fact.id => {}
                _ => {
                    let rel = self.frags.relation_mut(fact.pred);
                    rel.remove(&fact.tuple); // reset meta of any older gen
                    rel.insert(fact.tuple.clone(), TupleMeta::at(fact.tau));
                    self.frag_ids.insert(key, fact.id);
                }
            },
            UpdateKind::Delete => match stored {
                // Tombstone the matching generation (Sec. IV-B: replicas
                // stay for concurrent probes and expire later).
                Some(old) if old == fact.id => {
                    self.frags
                        .relation_mut(fact.pred)
                        .mark_deleted(&fact.tuple, fact.tau);
                }
                // A newer generation is stored: this delete is stale.
                Some(old) if old > fact.id => {}
                // Delete overtook (or outlived) the insert walk: store a
                // tombstoned replica so probes between gen and del still
                // see it, and later probes don't.
                _ => {
                    let rel = self.frags.relation_mut(fact.pred);
                    rel.remove(&fact.tuple);
                    rel.insert(
                        fact.tuple.clone(),
                        TupleMeta {
                            gen_ts: fact.id.ts,
                            del_ts: Some(fact.tau),
                        },
                    );
                    self.frag_ids.insert(key, fact.id);
                }
            },
        }
        self.stats.peak_replicas = self.stats.peak_replicas.max(self.frags.total_tuples());
        self.note_pred_stored(fact.pred);
        // Retention timer for windowed streams (Sec. IV-B): the replica
        // must outlive every probe that may legally join with it —
        // (τs + τc) + τj + (τw + τc) past its generation timestamp.
        if fact.kind == UpdateKind::Insert {
            if let Some(&w) = self.prog.windows.get(&fact.pred) {
                let retention =
                    (self.cfg.tau_s + self.cfg.tau_c) + self.cfg.tau_j + (w + self.cfg.tau_c);
                let expire_at = fact.tau.saturating_add(retention);
                let delay = expire_at.saturating_sub(ctx.local_time).max(1);
                let tag = self.arm_timer(TimerAction::ExpireReplica(fact.pred, fact.tuple.clone()));
                ctx.set_timer(delay, tag);
            }
        }
    }

    /// Build and launch the join probe for `fact`.
    fn start_join(&mut self, ctx: &mut Ctx<Payload>, fact: FactRecord) {
        let _span = self.tele.span("core.join.start");
        let occs = match self.prog.occurrences.get(&fact.pred) {
            Some(o) => o.clone(),
            None => return, // pred not consumed by any rule
        };
        let mut work = Vec::new();
        let mut max_passes: u8 = 1;
        for occ in &occs {
            let rule = &self.prog.analysis.program.rules[occ.rule_idx];
            if let Some(p) = seed_partial(
                &self.prog,
                rule,
                occ.lit_idx,
                occ.negated,
                &fact.tuple,
                fact.id,
            ) {
                if self.cfg.pass_mode == PassMode::MultiPass {
                    let shape = &self.shapes[occ.rule_idx];
                    let remaining = shape
                        .positives
                        .iter()
                        .filter(|&&i| i != occ.lit_idx)
                        .count() as u8;
                    max_passes = max_passes.max(remaining.max(1));
                }
                work.push(RuleWork {
                    rule_idx: occ.rule_idx as u16,
                    occ: occ.lit_idx as u16,
                    negated: occ.negated,
                    partials: vec![p],
                });
            }
        }
        if work.is_empty() {
            return;
        }
        let region = self
            .cfg
            .strategy
            .join_region(&self.net.topo, self.id, self.cfg.spatial_radius)
            .expect("non-centroid strategy has regions");
        let probe = ProbeMsg {
            update: fact,
            walk: Arc::new(region),
            pos: 0,
            pass: 0,
            total_passes: max_passes,
            work,
        };
        self.deliver_probe(ctx, probe);
    }

    /// Route the probe to its current walk target (possibly ourselves).
    fn deliver_probe(&mut self, ctx: &mut Ctx<Payload>, probe: ProbeMsg) {
        let target = probe.walk[probe.pos];
        if target == self.id {
            self.process_probe(ctx, probe);
        } else {
            self.route(ctx, target, Payload::Probe(probe));
        }
    }

    /// Run the join-computation step at this node (Fig. 1) and forward.
    fn process_probe(&mut self, ctx: &mut Ctx<Payload>, mut probe: ProbeMsg) {
        let _span = self.tele.span("core.join.probe");
        self.stats.probes_processed += 1;
        let tau = probe.update.tau;
        let sign_base = probe.update.kind;
        // Sim-time age of the update at the moment its probe reaches us —
        // the in-network join latency the paper bounds with τs + τc.
        self.tele
            .record_sim("core.join.probe", ctx.local_time.saturating_sub(tau));
        self.tele
            .bump(Scope::Pred(probe.update.pred.as_str()), "probes_processed");

        let mut emissions: Vec<(Symbol, Tuple, DerivationKey, i8)> = Vec::new();
        {
            let frag_ids = &self.frag_ids;
            let id_of = move |p: Symbol, t: &Tuple| frag_ids.get(&(p, t.clone())).copied();
            let lctx = LocalCtx {
                prog: self.prog.as_ref(),
                db: &self.frags,
                id_of: &id_of,
                tau,
                update_id: probe.update.id,
            };
            let last_node = probe.pos + 1 == probe.walk.len();
            let last_pass = probe.pass + 1 >= probe.total_passes;
            let end_of_walk = last_node && last_pass;

            for workitem in &mut probe.work {
                let rule = &self.prog.analysis.program.rules[workitem.rule_idx as usize];
                let shape = &self.shapes[workitem.rule_idx as usize];
                let pinned = Some(workitem.occ as usize);
                // Multiple-pass restriction: pass k extends only the k-th
                // unbound positive literal (ascending, skipping the pin).
                let restrict = if probe.total_passes > 1 {
                    // Rules with fewer remaining streams than total passes
                    // are done extending: restrict to an impossible index.
                    Some(
                        shape
                            .positives
                            .iter()
                            .filter(|&&i| i != workitem.occ as usize)
                            .nth(probe.pass as usize)
                            .copied()
                            .unwrap_or(usize::MAX),
                    )
                } else {
                    None
                };
                let incoming = std::mem::take(&mut workitem.partials);
                let processed = process_partials(&lctx, rule, shape, incoming, pinned, restrict);
                let needs_full_walk = shape.has_negation_other_than(pinned);
                let sign = match (sign_base, workitem.negated) {
                    (UpdateKind::Insert, false) | (UpdateKind::Delete, true) => 1i8,
                    _ => -1i8,
                };
                let mut keep: Vec<Partial> = Vec::new();
                for p in processed {
                    if p.is_complete(shape) {
                        if needs_full_walk && !end_of_walk {
                            keep.push(p); // keep checking negations
                        } else {
                            let key = DerivationKey::new(rule.id, p.inputs.clone());
                            let head = instantiate(&self.prog, rule, &p);
                            match head {
                                Some(tuple) => emissions.push((rule.head.pred, tuple, key, sign)),
                                None => { /* head eval failed: drop */ }
                            }
                        }
                    } else if !end_of_walk {
                        keep.push(p);
                    }
                }
                workitem.partials = keep;
            }
        }

        for (pred, tuple, key, sign) in emissions {
            self.stats.results_emitted += 1;
            self.tele
                .bump(Scope::Pred(pred.as_str()), "results_emitted");
            self.emit_deriv_delta(ctx, pred, tuple, key, sign, tau);
        }

        // Forward.
        if probe.pos + 1 < probe.walk.len() {
            probe.pos += 1;
            self.deliver_probe(ctx, probe);
        } else if probe.pass + 1 < probe.total_passes {
            // Multiple-pass: U-turn.
            let mut walk = probe.walk.as_ref().clone();
            walk.reverse();
            probe.walk = Arc::new(walk);
            probe.pos = 0;
            probe.pass += 1;
            // Already at the first node of the reversed walk (ourselves).
            self.process_probe(ctx, probe);
        }
        // else: traversal done; undischarged partials discarded
        // ("the partial results generated at the last node are discarded").
    }

    fn emit_deriv_delta(
        &mut self,
        ctx: &mut Ctx<Payload>,
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        tau: SimTime,
    ) {
        let owner = ght::owner_of(&self.net.topo, pred, &tuple);
        if owner == self.id {
            self.handle_deriv_delta(ctx, pred, tuple, key, sign, tau);
        } else {
            let payload = Payload::DerivDelta {
                pred,
                tuple,
                key,
                sign,
                tau,
            };
            self.route(ctx, owner, payload);
        }
    }

    /// Owner-side derivation bookkeeping + holddown arming.
    fn handle_deriv_delta(
        &mut self,
        ctx: &mut Ctx<Payload>,
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        tau: SimTime,
    ) {
        let _span = self.tele.span("core.result.apply");
        self.tele.bump(Scope::Pred(pred.as_str()), "deriv_deltas");
        // Sim-time lag between the originating update and its derivation
        // delta landing at the owner (storage + join + result routing).
        let lag = ctx.local_time.saturating_sub(tau);
        self.tele.record_sim("core.result.apply", lag);
        // Per-hop estimate: the end-to-end lag spread over the network
        // depth. Feeds the adaptive holddown default for predicates with
        // no declared `.holddown`.
        self.hop_lag.observe(lag / self.net.depth());
        if !self.owned.contains_key(&(pred, tuple.clone())) {
            *self.owned_per_pred.entry(pred).or_insert(0) += 1;
        }
        let needs_holddown = {
            let entry = self.owned.entry((pred, tuple.clone())).or_default();
            *entry.counts.entry(key).or_insert(0) += sign as i64;
            entry.counts.retain(|_, &mut c| c != 0);
            let needed = !entry.holddown_armed && entry.live() != entry.propagated_live;
            if needed {
                entry.holddown_armed = true;
            }
            needed
        };
        // Windowed derived streams: owned state expires with the window
        // (silent, Sec. II-B). Re-armed on each delta so the entry outlives
        // its last activity by one window.
        if let Some(&w) = self.prog.windows.get(&pred).copied().as_ref() {
            let tag = self.arm_timer(TimerAction::ExpireOwned(pred, tuple.clone()));
            ctx.set_timer(w + self.cfg.tau_c + 1, tag);
        }
        if needs_holddown {
            let holddown = self
                .prog
                .holddown
                .get(&pred)
                .copied()
                .unwrap_or_else(|| self.default_holddown());
            let tag = self.arm_timer(TimerAction::Holddown(pred, tuple));
            ctx.set_timer(holddown, tag);
        }
        let total: usize = self.owned.values().map(|o| o.counts.len()).sum();
        self.stats.peak_derivations = self.stats.peak_derivations.max(total);
        self.note_pred_stored(pred);
    }

    /// Holddown for predicates with no declared `.holddown`: p95 observed
    /// per-hop result lag Ã network depth (the ROADMAP adaptive-holddown
    /// item, minimal version) â long enough for a canceling delta to cross
    /// the network, short enough to track the deployment's real latency
    /// instead of a hard-coded constant. Clamped to `[10, Ïj]`; 100 until
    /// the first observation. Declared `.holddown` values stay
    /// authoritative (checked before this is consulted).
    fn default_holddown(&self) -> SimTime {
        match self.hop_lag.quantile_upper(0.95) {
            Some(per_hop) => per_hop
                .saturating_mul(self.net.depth())
                .clamp(10, self.cfg.tau_j.max(10)),
            None => 100,
        }
    }

    /// Holddown expired: propagate the tuple's liveness if it still differs
    /// from what the network believes (Sec. IV-C's "wait … before actually
    /// finalizing a derived fact").
    fn fire_holddown(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let now = ctx.local_time;
        let Some(entry) = self.owned.get_mut(&(pred, tuple.clone())) else {
            return;
        };
        entry.holddown_armed = false;
        let live = entry.live();
        if live == entry.propagated_live {
            return; // transition debounced away
        }
        entry.propagated_live = live;
        self.tele.bump(Scope::Pred(pred.as_str()), "holddown_fired");
        let fact = if live {
            let id = TupleId {
                node: self.id,
                ts: now,
                seq: self.seq,
            };
            self.seq += 1;
            entry.id = Some(id);
            FactRecord::insert(pred, tuple.clone(), id)
        } else {
            let Some(id) = entry.id else {
                // Died before its insert was ever propagated (the holddown
                // debounced the whole lifetime away at arming time but the
                // flag raced): nothing in the network to retract.
                self.stats.routing_drops += 1;
                return;
            };
            FactRecord::delete(pred, tuple.clone(), id, now)
        };
        self.log_output(pred, &tuple, fact.kind, now);
        self.initiate_update(ctx, fact);
    }

    fn log_output(&mut self, pred: Symbol, tuple: &Tuple, kind: UpdateKind, ts: SimTime) {
        if self.prog.outputs.contains(&pred) {
            self.output_log.push((pred, tuple.clone(), kind, ts));
        }
    }

    fn feed_center(&mut self, fact: &FactRecord) {
        let Some(engine) = self.center_engine.as_mut() else {
            // A ToCenter payload landed at a non-center node (misrouted
            // under churn): drop it rather than crash the node.
            self.stats.routing_drops += 1;
            return;
        };
        let upd = Update {
            pred: fact.pred,
            tuple: fact.tuple.clone(),
            kind: fact.kind,
            ts: fact.tau,
        };
        let _ = engine.apply(upd);
    }

    fn arm_timer(&mut self, action: TimerAction) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, action);
        tag
    }

    fn route(&mut self, ctx: &mut Ctx<Payload>, dest: NodeId, payload: Payload) {
        debug_assert_ne!(dest, self.id);
        if self.tele.is_enabled() {
            // Per-predicate traffic accounting, one bump per hop (the same
            // currency as the simulator's per-kind tx counters).
            self.tele.bump(
                Scope::Pred(payload.pred().as_str()),
                sent_counter(payload.kind()),
            );
        }
        let Some(hop) = self.net.next_hop(self.id, dest) else {
            // Unreachable destination (partitioned topology): a logged
            // drop, indistinguishable from loss to the protocol above.
            self.stats.routing_drops += 1;
            self.tele
                .bump(Scope::Pred(payload.pred().as_str()), "routing_drops");
            return;
        };
        if hop == dest {
            ctx.send(dest, payload);
        } else {
            ctx.send(
                hop,
                Payload::Routed {
                    dest,
                    inner: Box::new(payload),
                },
            );
        }
    }

    fn handle_payload(&mut self, ctx: &mut Ctx<Payload>, payload: Payload) {
        match payload {
            Payload::Routed { dest, inner } => {
                if dest == self.id {
                    self.handle_payload(ctx, *inner);
                } else {
                    self.route(ctx, dest, *inner);
                }
            }
            Payload::StoreWalk { fact, walk, pos } => {
                self.store_replica(ctx, &fact);
                if pos + 1 < walk.len() {
                    let next = walk[pos + 1];
                    self.route(
                        ctx,
                        next,
                        Payload::StoreWalk {
                            fact,
                            walk,
                            pos: pos + 1,
                        },
                    );
                }
            }
            Payload::FloodStore { fact } => {
                if self.flood_seen.insert((fact.id, fact.kind)) {
                    self.store_replica(ctx, &fact);
                    self.tele
                        .bump(Scope::Pred(fact.pred.as_str()), "flood_broadcasts");
                    ctx.broadcast(Payload::FloodStore { fact });
                }
            }
            Payload::Probe(probe) => {
                if probe.walk[probe.pos] == self.id {
                    self.process_probe(ctx, probe);
                } else {
                    // Mid-route to its walk target.
                    self.deliver_probe(ctx, probe);
                }
            }
            Payload::DerivDelta {
                pred,
                tuple,
                key,
                sign,
                tau,
            } => self.handle_deriv_delta(ctx, pred, tuple, key, sign, tau),
            Payload::ToCenter { fact } => self.feed_center(&fact),
        }
    }
}

/// Telemetry counter name for a routed payload of the given message kind
/// (`&'static` so counter keys never allocate on the hot path).
fn sent_counter(kind: &'static str) -> &'static str {
    match kind {
        "store" => "sent_store",
        "probe" => "sent_probe",
        "result" => "sent_result",
        "centroid" => "sent_centroid",
        _ => "sent_other",
    }
}

/// Evaluate the rule head under a completed partial.
fn instantiate(prog: &DistProgram, rule: &sensorlog_logic::Rule, p: &Partial) -> Option<Tuple> {
    let subst = p.subst();
    let mut terms = Vec::with_capacity(rule.head.args.len());
    for a in &rule.head.args {
        let g = subst.apply(a);
        if !g.is_ground() {
            return None;
        }
        terms.push(prog.reg.eval_term(&g).ok()?);
    }
    Some(Tuple::new(terms))
}

impl App for SensorlogNode {
    type Msg = Payload;

    fn on_message(&mut self, ctx: &mut Ctx<Payload>, _from: NodeId, msg: Payload) {
        self.handle_payload(ctx, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Payload>, tag: u64) {
        match self.timers.remove(&tag) {
            Some(TimerAction::StartJoin(fact)) => self.start_join(ctx, fact),
            Some(TimerAction::Holddown(pred, tuple)) => self.fire_holddown(ctx, pred, tuple),
            Some(TimerAction::ExpireReplica(pred, tuple)) => {
                self.frags.remove(pred, &tuple);
                self.frag_ids.remove(&(pred, tuple));
            }
            Some(TimerAction::ExpireOwned(pred, tuple)) => {
                // Only expire if genuinely past the window (a later delta
                // re-armed a fresher timer otherwise).
                if let (Some(&w), Some(entry)) = (
                    self.prog.windows.get(&pred),
                    self.owned.get(&(pred, tuple.clone())),
                ) {
                    let stale = entry
                        .id
                        .is_none_or(|id| id.ts.saturating_add(w) < ctx.local_time);
                    if stale && !entry.holddown_armed && self.owned.remove(&(pred, tuple)).is_some()
                    {
                        if let Some(c) = self.owned_per_pred.get_mut(&pred) {
                            *c = c.saturating_sub(1);
                        }
                    }
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netinfo_grid_routes_without_tables() {
        let net = NetInfo::new(Topology::square_grid(4));
        // x first, then y.
        let from = NodeId(0); // (0,0)
        let dest = NodeId(15); // (3,3)
        let hop = net.next_hop(from, dest);
        assert_eq!(hop, Some(NodeId(1))); // (1,0)
        let hop2 = net.next_hop(NodeId(3), dest); // (3,0) -> up
        assert_eq!(hop2, Some(NodeId(7))); // (3,1)
    }

    #[test]
    fn netinfo_geometric_uses_bfs_tables() {
        let topo = Topology::random_geometric(20, 4.0, 1.7, 5).unwrap();
        let net = NetInfo::new(topo.clone());
        // Hop chains always terminate at the destination.
        for (a, b) in [(0u32, 19u32), (5, 12)] {
            let (mut cur, dest) = (NodeId(a), NodeId(b));
            let mut hops = 0;
            while cur != dest {
                let nxt = net.next_hop(cur, dest).expect("connected topology");
                assert!(topo.are_neighbors(cur, nxt), "{cur}->{nxt} not a link");
                cur = nxt;
                hops += 1;
                assert!(hops <= topo.len(), "routing loop");
            }
        }
    }

    #[test]
    fn netinfo_disconnected_returns_none_not_panic() {
        // Two 2-node islands far apart: cross-island routes must be None.
        let topo = Topology::from_positions(
            vec![(0.0, 0.0), (1.0, 0.0), (100.0, 0.0), (101.0, 0.0)],
            1.5,
        );
        assert!(!topo.is_connected());
        let net = NetInfo::new(topo);
        assert_eq!(net.next_hop(NodeId(0), NodeId(1)), Some(NodeId(1)));
        assert_eq!(net.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(net.next_hop(NodeId(3), NodeId(1)), None);
        assert_eq!(net.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
    }

    #[test]
    fn rtconfig_defaults_are_sane() {
        let c = RtConfig::default();
        assert!(c.tau_s > 0 && c.tau_j > 0);
        assert_eq!(c.pass_mode, crate::strategy::PassMode::OnePass);
        assert!(matches!(c.strategy, Strategy::Perpendicular { .. }));
    }
}
