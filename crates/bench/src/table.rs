//! Plain-text result tables, the output format of the experiment harness.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "fig4".
    pub id: &'static str,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(widths.iter()) {
                write!(f, " {c:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Format helper: two significant decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("figX", "test table", &["m", "messages"]);
        t.row(vec!["6".into(), "1234".into()]);
        t.row(vec!["16".into(), "9".into()]);
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("     1234 |")); // right-aligned under "messages"
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
